"""Sweep the OS service rates and watch Figure 3 change shape.

The paper's Section 5.1 closes with tuning advice: make context
switching cooperate with the runtime (skip inactive register saves),
reduce concurrent faults to sequential ones through compilation, and
inline the hot critical sections.  This example applies each proposed
improvement to the OS model and re-measures FLO52's completion-time
breakdown on the 4-cluster Cedar, rendering the paper-style stacked
bars.

Run with::

    python examples/os_overhead_study.py
"""

from dataclasses import replace

from repro.apps import flo52
from repro.core import ct_breakdown, render_ct_bars, run_application
from repro.xylem import TimeCategory, XylemParams


def os_fraction(result) -> float:
    b = ct_breakdown(result, 0)
    return (
        b[TimeCategory.SYSTEM] + b[TimeCategory.INTERRUPT] + b[TimeCategory.KSPIN]
    ) / result.ct_ns


def main() -> None:
    base = XylemParams()
    variants = {
        "stock Xylem": base,
        "cheaper ctx (RTL-cooperative switches)": replace(
            base, ctx_cost_ns=base.ctx_cost_ns // 2
        ),
        "sequentialised faults (compiler)": replace(
            base,
            pgflt_concurrent_cost_ns=base.pgflt_sequential_cost_ns,
            pgflt_join_cost_ns=base.pgflt_trap_light_ns,
            pgflt_cpi_fraction=0.1,
        ),
        "inlined critical sections": replace(
            base, crsect_cluster_cost_ns=base.crsect_cluster_cost_ns // 2
        ),
        "all three improvements": replace(
            base,
            ctx_cost_ns=base.ctx_cost_ns // 2,
            pgflt_concurrent_cost_ns=base.pgflt_sequential_cost_ns,
            pgflt_join_cost_ns=base.pgflt_trap_light_ns,
            pgflt_cpi_fraction=0.1,
            crsect_cluster_cost_ns=base.crsect_cluster_cost_ns // 2,
        ),
    }
    print("FLO52 on the 4-cluster Cedar: Section 5.1's proposed OS fixes\n")
    results = {}
    for name, params in variants.items():
        result = run_application(flo52(), 32, scale=0.02, os_params=params)
        results[name] = result
        print(
            f"{name:42s} CT {result.ct_seconds:6.1f} s, "
            f"OS {os_fraction(result):6.2%}"
        )
    print()
    stock = results["stock Xylem"]
    improved = results["all three improvements"]
    print(render_ct_bars({32: stock}, width=56).replace("32p", "stock"))
    print(render_ct_bars({32: improved}, width=56).split("\n")[1].replace(" 32p", "fixed"))


if __name__ == "__main__":
    main()
