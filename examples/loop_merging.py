"""Reproduce the paper's loop-merging optimisation claim.

Section 6: barrier waits reach 7-16 % of completion time on the
4-cluster Cedar, so "it might be worth the effort to try eliminate some
of the barriers ... merge several parallel loops in a row that do not
have dependencies among them"; such manual optimisation contributed to
a 2x improvement for FLO52.

This example runs a FLO52-like series of small, imbalanced SDOALL
loops, applies :func:`repro.runtime.merge_adjacent_loops`, and compares
completion time and barrier-wait share before and after.

Run with::

    python examples/loop_merging.py
"""

from repro.core import render_table, run_phases, user_breakdown
from repro.runtime import (
    LoopConstruct,
    ParallelLoop,
    SerialPhase,
    merge_adjacent_loops,
)


def build_program(loops_in_a_row: int, steps: int = 4):
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL,
        n_outer=5,
        n_inner=14,
        work_ns_per_iter=3_000_000,
        mem_words_per_iter=12_000,
        mem_rate=0.6,
        work_skew=0.5,
        label="sweep",
    )
    step = [loop] * loops_in_a_row + [SerialPhase(work_ns=2_000_000)]
    return step * steps


def main() -> None:
    print("Loop merging on the 4-cluster Cedar (32 processors)\n")
    rows = []
    for loops_in_a_row in (2, 4, 8):
        phases = build_program(loops_in_a_row)
        plain = run_phases(phases, 32, app_name="plain")
        fused = run_phases(merge_adjacent_loops(phases), 32, app_name="fused")
        pb = user_breakdown(plain, 0)
        fb = user_breakdown(fused, 0)
        rows.append(
            [
                loops_in_a_row,
                plain.ct_ns / 1e6,
                fused.ct_ns / 1e6,
                plain.ct_ns / fused.ct_ns,
                pb.fraction(pb.barrier_ns) * 100,
                fb.fraction(fb.barrier_ns) * 100,
            ]
        )
    print(
        render_table(
            [
                "loops/run",
                "plain CT (ms)",
                "fused CT (ms)",
                "speedup",
                "barrier % before",
                "after",
            ],
            rows,
        )
    )
    print(
        "\nEach fused run replaces N multicluster barriers with one, so\n"
        "the barrier-wait share collapses -- the effect behind the paper's\n"
        "FLO52 optimisation story."
    )


if __name__ == "__main__":
    main()
