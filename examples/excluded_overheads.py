"""Quantify the overheads the paper chose NOT to characterize.

Section 3.2 excludes capacity/conflict cache misses and TLB misses from
the study.  This example turns on the optional cluster cache/TLB model
and re-runs a sweep-heavy workload with per-cluster working sets
straddling the Alliant FX/8's 512 KB shared cache, showing how much
completion time the exclusion leaves on the table.

Run with::

    python examples/excluded_overheads.py
"""

from dataclasses import replace

from repro.apps import synthetic_app
from repro.core import render_table, run_phases
from repro.hardware import paper_configuration
from repro.runtime import LoopConstruct


def run_with_ws(ws_bytes: int, model_cache: bool):
    app = synthetic_app(
        construct=LoopConstruct.SDOALL,
        n_steps=3,
        loops_per_step=3,
        n_outer=8,
        n_inner=32,
        iter_time_ns=2_000_000,
        mem_fraction=0.3,
    )
    app.loops_per_step = [
        type(s)(**{**s.__dict__, "cluster_ws_bytes": ws_bytes})
        for s in app.loops_per_step
    ]
    config = paper_configuration(32)
    if model_cache:
        config = replace(config, model_cluster_cache=True)
    return run_phases(app.phases(1.0), 32, config=config)


def main() -> None:
    print("Cluster cache/TLB stalls: the paper's excluded overheads")
    print("(Alliant FX/8 shared cache: 512 KB per cluster)\n")
    rows = []
    for ws_kb in (256, 512, 768, 1024, 2048):
        plain = run_with_ws(ws_kb * 1024, model_cache=False)
        cached = run_with_ws(ws_kb * 1024, model_cache=True)
        delta = (cached.ct_ns - plain.ct_ns) / plain.ct_ns * 100.0
        rows.append([ws_kb, plain.ct_ns / 1e6, cached.ct_ns / 1e6, delta])
    print(
        render_table(
            ["working set (KB)", "paper accounting (ms)", "with cache model (ms)", "delta %"],
            rows,
        )
    )
    print(
        "\nBelow the 512 KB capacity the exclusion is harmless; past it,"
        "\ncyclic sweeps thrash the cluster cache and the uncharacterized"
        "\noverhead grows -- the paper's scoping choice quantified."
    )


if __name__ == "__main__":
    main()
