"""Dedicated vs multiprogrammed execution (beyond the paper's setting).

The paper measures a dedicated single-user machine (Section 3).  Xylem
is a multitasking OS, so this example asks the follow-up question: what
happens to a barrier-heavy parallel application when it shares the
clusters with another process?

Two effects compound:

1. the raw CPU share lost to the competitor (a 25 % share would
   ideally cost a factor 1.33), and
2. **gang skew**: Xylem schedules clusters independently, so the
   competitor's slices hit different clusters at different times, and
   every multicluster barrier waits for whichever cluster is currently
   preempted -- the same amplification that later motivated machine-wide
   co-scheduling in shared parallel systems.

Run with::

    python examples/multiprogramming_study.py
"""

from repro.apps import synthetic_app
from repro.core import render_table
from repro.hardware import CedarMachine, paper_configuration
from repro.hpm import ActivityBoard, CedarHpm
from repro.runtime import CedarFortranRuntime, LoopConstruct
from repro.sim import Simulator
from repro.xylem import BackgroundWorkload, XylemKernel


def run(share: float | None, coscheduled: bool = False) -> float:
    app = synthetic_app(
        construct=LoopConstruct.SDOALL,
        n_steps=3,
        loops_per_step=4,
        n_outer=8,
        n_inner=32,
        iter_time_ns=2_000_000,
        mem_fraction=0.3,
    )
    sim = Simulator()
    config = paper_configuration(32)
    machine = CedarMachine(sim, config)
    kernel = XylemKernel(sim, config)
    runtime = CedarFortranRuntime(
        sim, machine, kernel, hpm=CedarHpm(sim), board=ActivityBoard(sim, config)
    )
    if share is not None:
        BackgroundWorkload(
            kernel, share=share, quantum_ns=25_000_000, coscheduled=coscheduled
        ).start()
    proc = runtime.run_program(app.phases(1.0))
    return sim.run(until=proc) / 1e6  # ms


def main() -> None:
    print("Barrier-heavy SDOALL application on the 4-cluster Cedar\n")
    dedicated = run(None)
    rows = [["dedicated (the paper's setting)", dedicated, 1.0, 1.0]]
    for share in (0.125, 0.25, 0.5):
        ideal = 1.0 / (1.0 - share)
        independent = run(share, coscheduled=False)
        cosched = run(share, coscheduled=True)
        rows.append(
            [f"{share:.0%} share, independent", independent, independent / dedicated, ideal]
        )
        rows.append(
            [f"{share:.0%} share, co-scheduled", cosched, cosched / dedicated, ideal]
        )
    print(render_table(["setting", "CT (ms)", "slowdown", "ideal"], rows))
    print(
        "\nIndependent per-cluster scheduling costs more than the CPU share"
        "\n(gang skew at every barrier); machine-wide co-scheduling tracks"
        "\nthe ideal much more closely."
    )


if __name__ == "__main__":
    main()
