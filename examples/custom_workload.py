"""Build a custom workload and compare the two loop constructs.

Demonstrates the synthetic workload generator and the trade-off the
paper's Section 6 analyses: the hierarchical SDOALL/CDOALL construct
distributes work per cluster (cheap, but suffers barrier waits under
load imbalance), while the flat XDOALL construct self-balances
perfectly but pays a per-iteration test&set on a global-memory lock
that serialises under fine granularity.

Run with::

    python examples/custom_workload.py
"""

from repro.apps import synthetic_app
from repro.core import render_table, run_application, user_breakdown
from repro.runtime import LoopConstruct


def run_construct(construct: LoopConstruct, iter_time_ns: int, work_skew: float):
    app = synthetic_app(
        name=f"SYNTH-{construct.value}",
        construct=construct,
        n_steps=4,
        loops_per_step=4,
        n_outer=9,
        n_inner=48,
        iter_time_ns=iter_time_ns,
        mem_fraction=0.3,
    )
    # Apply skew to the generated loops (rebuild with skewed shapes).
    app.loops_per_step = [
        type(shape)(**{**shape.__dict__, "work_skew": work_skew})
        for shape in app.loops_per_step
    ]
    result = run_application(app, n_processors=32, scale=1.0)
    b = user_breakdown(result, task_id=0)
    return result, b


def main() -> None:
    print("SDOALL/CDOALL vs XDOALL on the 4-cluster Cedar, 32 processors")
    print("(9x48 iterations per loop, 30% memory time, skewed work)\n")
    rows = []
    for granularity_us in (500, 2000, 8000):
        for construct in (LoopConstruct.SDOALL, LoopConstruct.XDOALL):
            result, b = run_construct(construct, granularity_us * 1000, work_skew=0.4)
            rows.append(
                [
                    granularity_us,
                    construct.value,
                    result.ct_ns / 1e9,
                    b.fraction(b.barrier_ns) * 100.0,
                    b.fraction(b.pickup_xdoall_ns + b.pickup_sdoall_ns) * 100.0,
                    b.overhead_fraction * 100.0,
                ]
            )
    print(
        render_table(
            ["iter (us)", "construct", "CT (s)", "barrier %", "pickup %", "total ovhd %"],
            rows,
        )
    )
    print(
        "\nCoarse iterations favour either construct; fine iterations make\n"
        "XDOALL's global-lock pickup dominate -- the effect behind the\n"
        "paper's 'worth the effort to exploit the hierarchical construct'."
    )


if __name__ == "__main__":
    main()
