"""Network/memory contention microbenchmarks on the packet-level model.

Three experiments on the two-stage shuffle-exchange network and the
32-module interleaved global memory:

1. *Uniform streams*: per-CE stream throughput as more CEs stream
   vector requests (the contention the paper's Section 7 characterizes
   at application level).
2. *Hot spot*: the Pfister/Norton effect the paper's clustering
   discussion cites -- a small fraction of traffic to one module
   collapses aggregate bandwidth.
3. *Validation*: the packet-level measurements against the analytic
   model used for application-scale runs.

Run with::

    python examples/contention_study.py
"""

from repro.hardware import CedarConfig, ContentionModel, GlobalMemorySystem
from repro.sim import Simulator


def measure_streams(n_ces: int, n_words: int = 96, hot: bool = False) -> float:
    """Per-CE stream time (ns) with *n_ces* CEs streaming at once."""
    sim = Simulator()
    config = CedarConfig()
    memory = GlobalMemorySystem(sim, config)

    def stream(ce):
        if hot:
            # Every request to module 0.
            for i in range(n_words):
                done = memory.request(ce, address=0)
                yield sim.timeout(config.cycle_ns)
            yield done
        else:
            yield sim.process(memory.vector_access(ce, base_address=ce * 4096, n_words=n_words))

    procs = [sim.process(stream(ce)) for ce in range(n_ces)]
    sim.run(until=sim.all_of(procs))
    return sim.now


def main() -> None:
    config = CedarConfig()
    model = ContentionModel(config)

    print("1. Uniform vector streams (96 words per CE):")
    alone = measure_streams(1)
    print(f"   {'CEs':>4} {'time (us)':>10} {'slowdown':>9} {'analytic':>9}")
    for n in (1, 2, 4, 8, 16, 32):
        t = measure_streams(n)
        analytic = model.vector_time_cycles(96, n, 1.0) / model.vector_time_cycles(96, 1, 1.0)
        print(f"   {n:4d} {t / 1000:10.1f} {t / alone:9.2f} {analytic:9.2f}")

    print("\n2. Hot-spot traffic (all requests to one module):")
    uniform = measure_streams(16)
    hot = measure_streams(16, hot=True)
    print(f"   16 CEs uniform: {uniform / 1000:8.1f} us")
    print(f"   16 CEs hot    : {hot / 1000:8.1f} us  ({hot / uniform:.1f}x slower)")
    print("   (tree saturation: the hot module's queue backs up through the switches)")

    print("\n3. Analytic hot-spot bandwidth collapse (Pfister/Norton):")
    for frac in (0.0, 0.02, 0.05, 0.10, 0.20):
        bw = model.hot_spot_bandwidth(32, rate=0.5, hot_fraction=frac)
        print(f"   hot fraction {frac:4.2f}: aggregate {bw:5.2f} req/cycle")


if __name__ == "__main__":
    main()
