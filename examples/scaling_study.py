"""Scaling study: sweep one application over all five configurations.

Rebuilds that application's column of the paper's Table 1 (completion
time, speedup, concurrency), Table 3 (parallel-loop concurrency) and
Table 4 (contention overhead), printing the simulated values next to
the paper's measurements.

Run with::

    python examples/scaling_study.py [APP] [SCALE]

where APP is one of FLO52, ARC2D, MDG, OCEAN, ADM (default FLO52).
"""

import sys

from repro.apps import PAPER_APPS
from repro.core import contention_overhead, render_table, run_application
from repro.core import reference
from repro.core.speedup import speedup_table


def main() -> None:
    app_name = sys.argv[1].upper() if len(sys.argv) > 1 else "FLO52"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.02
    if app_name not in PAPER_APPS:
        raise SystemExit(f"unknown application {app_name}; pick from {list(PAPER_APPS)}")

    print(f"Sweeping {app_name} over 1/4/8/16/32 processors (scale={scale})...")
    results = {}
    for n_proc in (1, 4, 8, 16, 32):
        results[n_proc] = run_application(PAPER_APPS[app_name](), n_proc, scale=scale)
        print(f"  {n_proc:2d} processors done")

    rows = []
    for row in speedup_table(results):
        paper = reference.TABLE1[app_name][row.n_processors]
        rows.append(
            [row.n_processors, row.ct_seconds, paper[0], row.speedup, paper[1],
             row.concurrency, paper[2]]
        )
    print()
    print(
        render_table(
            ["procs", "CT (s)", "paper", "speedup", "paper", "concurr", "paper"],
            rows,
            title=f"Table 1 column for {app_name}",
        )
    )

    rows = []
    base = results[1]
    for n_proc in (4, 8, 16, 32):
        c = contention_overhead(results[n_proc], base)
        paper = reference.TABLE4[app_name][n_proc]
        rows.append(
            [
                n_proc,
                results[n_proc].seconds(c.tp_actual_ns),
                paper[0],
                results[n_proc].seconds(c.tp_ideal_ns),
                paper[1],
                c.ov_cont_pct,
                paper[2],
            ]
        )
    print()
    print(
        render_table(
            ["procs", "Tp_act", "paper", "Tp_ideal", "paper", "Ov %", "paper"],
            rows,
            title=f"Table 4 rows for {app_name}",
        )
    )


if __name__ == "__main__":
    main()
