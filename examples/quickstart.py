"""Quickstart: run FLO52 on the 4-cluster Cedar and decompose its time.

This reproduces, for one application on one configuration, everything
the paper measures: completion time, the Figure-3 OS breakdown, the
Figure-5 user-time breakdown, and the Table-4 contention estimate.

Run with::

    python examples/quickstart.py
"""

from repro.apps import flo52
from repro.core import (
    contention_overhead,
    ct_breakdown,
    parallel_loop_concurrency,
    run_application,
    user_breakdown,
)
from repro.xylem import TimeCategory


def main() -> None:
    app = flo52()
    print(f"Running {app.name} on the 4-cluster (32-processor) Cedar model...")
    result = run_application(app, n_processors=32, scale=0.02)
    print(f"Completion time (extrapolated to full scale): {result.ct_seconds:.1f} s")
    print(f"(paper measured 73 s on the real machine)\n")

    print("Completion-time breakdown of the main cluster (Figure 3):")
    breakdown = ct_breakdown(result, cluster_id=0)
    for category in TimeCategory:
        pct = breakdown[category] / result.ct_ns * 100.0
        print(f"  {category.value:10s} {pct:6.2f} %")

    print("\nUser-time breakdown of the main task (Figure 5):")
    b = user_breakdown(result, task_id=0)
    for name, ns in b.as_dict().items():
        print(f"  {name:14s} {b.fraction(ns) * 100.0:6.2f} %")
    print(f"  -> parallelization overhead: {b.overhead_fraction * 100.0:.1f} % of CT")

    print("\nGlobal memory / network contention (Table 4 methodology):")
    print("  running the 1-processor baseline...")
    base = run_application(app, n_processors=1, scale=0.02)
    row = contention_overhead(result, base)
    print(f"  T_p_actual = {result.seconds(row.tp_actual_ns):7.1f} s")
    print(f"  T_p_ideal  = {result.seconds(row.tp_ideal_ns):7.1f} s")
    print(f"  Ov_cont    = {row.ov_cont_pct:7.1f} % of CT (paper: 21 %)")

    print("\nPer-task parallel-loop concurrency (Table 3):")
    for task in range(result.config.n_clusters):
        name = "Main" if task == 0 else f"helper{task}"
        print(f"  {name:8s} {parallel_loop_concurrency(result, task):5.2f}")


if __name__ == "__main__":
    main()
