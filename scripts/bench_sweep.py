#!/usr/bin/env python
"""Sweep-throughput benchmark: campaign cells/sec, cold vs warm, by pool size.

Where ``bench_kernel.py`` measures the event kernel, this harness
measures the layer users actually drive: :func:`repro.parallel.executor.
execute_cells` running a small FLO52/OCEAN sweep behind the result
cache, with :class:`~repro.obs.campaign.CampaignTelemetry` attached --
so the committed figures also pin the telemetry-on path.

For each pool size the same four cells run twice against one fresh
cache directory:

* **cold** -- every cell simulated, results written to the cache;
* **warm** -- every cell answered from the cache (hit rate must be 1.0).

Raw wall time is not portable across machines, so every throughput is
also normalised by a pure-Python calibration loop timed in the same
batch (the ``bench_kernel.py`` idiom): ``cells_per_cal = cells /
(wall_s / calibration_s)`` compares across hosts.  Quick and full mode
use the *identical* per-cell workload (same apps, configs, scale, seed)
so the calibrated figure is comparable between CI and the committed
full run; full mode only adds a larger pool size and more repeats.

Pool-size scaling is recorded as a trajectory but **not** gated: it
depends on host core count (CI runners may have one core).  The
``--check`` gate holds the two figures that are robust to core count:

* cold ``cells_per_cal`` at jobs=1 within ``MAX_REGRESSION`` of the
  committed value (simulation + executor + telemetry speed);
* warm/cold speed-up at jobs=1 at least ``WARM_SPEEDUP_FLOOR``
  (the cache must stay much faster than simulating).

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py [--quick]
        [--output BENCH_sweep.json] [--baseline FILE] [--check FILE]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs.campaign import CampaignTelemetry  # noqa: E402
from repro.parallel.cache import ResultCache  # noqa: E402
from repro.parallel.executor import CellSpec, execute_cells  # noqa: E402

SCHEMA = "cedar-repro/bench-sweep/v1"

#: CI gate: fail when cold jobs=1 ``cells_per_cal`` drops below
#: ``(1 - MAX_REGRESSION)`` of the committed figure.
MAX_REGRESSION = 0.35

#: CI gate: warm (all-cache-hit) throughput must beat cold by at least
#: this factor at jobs=1, or the cache has stopped earning its keep.
WARM_SPEEDUP_FLOOR = 3.0

#: The fixed sweep: identical in quick and full mode so calibrated
#: throughput is comparable between CI and the committed baseline.
APPS = ("FLO52", "OCEAN")
CONFIGS = (1, 4)
SCALE = 0.004
SEED = 1994

POOL_SIZES_QUICK = (1, 2)
POOL_SIZES_FULL = (1, 2, 4)
REPEATS_QUICK = 1
REPEATS_FULL = 3


def _calibration_s() -> float:
    """Pure-Python reference loop (the machine-speed yardstick)."""
    begin = perf_counter()
    total = 0
    for i in range(6_000_000):
        total += i & 7
    return perf_counter() - begin


def _specs() -> list[CellSpec]:
    return [
        CellSpec(app=app, n_processors=p, scale=SCALE, seed=SEED)
        for app in APPS
        for p in CONFIGS
    ]


def _one_pass(specs: list[CellSpec], jobs: int, cache: ResultCache) -> dict:
    """Run the sweep once; return wall time, report figures and hashes."""
    telemetry = CampaignTelemetry(progress=False, label=f"bench jobs={jobs}")
    begin = perf_counter()
    results, failures = execute_cells(
        specs, jobs=jobs, cache=cache, retries=0, telemetry=telemetry
    )
    wall = perf_counter() - begin
    if failures:
        raise RuntimeError(f"benchmark sweep failed: {failures[0].message}")
    report = telemetry.report()
    hashes = {
        f"{spec.app}_P{spec.n_processors}": results[spec].schedule_hash
        for spec in specs
    }
    return {
        "wall_s": wall,
        "report": report,
        "hashes": hashes,
        "cache_hits": report["cache"]["hits"],
    }


def _figures(passes: list[dict], n_cells: int, cal: float) -> dict:
    """Aggregate repeated passes: min wall (least-perturbed run) wins."""
    best = min(passes, key=lambda p: p["wall_s"])
    wall = best["wall_s"]
    report = best["report"]
    return {
        "cells": n_cells,
        "wall_s": round(wall, 4),
        "cells_per_s": round(n_cells / wall, 2),
        "cells_per_cal": round(n_cells / (wall / cal), 2),
        "p50_s": report["latency_s"]["p50"],
        "p95_s": report["latency_s"]["p95"],
        "utilization": report["pool"]["utilization"],
        "cache_hits": best["cache_hits"],
    }


def run_sweeps(quick: bool) -> dict:
    specs = _specs()
    pool_sizes = POOL_SIZES_QUICK if quick else POOL_SIZES_FULL
    repeats = REPEATS_QUICK if quick else REPEATS_FULL
    out: dict = {"cells_per_pass": len(specs)}
    reference_hashes: dict | None = None
    cals: list[float] = []
    for jobs in pool_sizes:
        cold_passes: list[dict] = []
        warm_passes: list[dict] = []
        for _ in range(repeats):
            with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
                cache = ResultCache(tmp)
                cals.append(_calibration_s())
                cold = _one_pass(specs, jobs, cache)
                if cold["cache_hits"]:
                    raise RuntimeError("cold pass hit the cache")
                warm = _one_pass(specs, jobs, cache)
                if warm["cache_hits"] != len(specs):
                    raise RuntimeError(
                        f"warm pass missed the cache: "
                        f"{warm['cache_hits']}/{len(specs)} hits"
                    )
                if warm["hashes"] != cold["hashes"]:
                    raise RuntimeError("warm results diverge from cold")
                if reference_hashes is None:
                    reference_hashes = cold["hashes"]
                elif cold["hashes"] != reference_hashes:
                    raise RuntimeError(
                        f"jobs={jobs} results diverge from jobs="
                        f"{pool_sizes[0]}"
                    )
                cold_passes.append(cold)
                warm_passes.append(warm)
        cal = statistics.median(cals)
        cold_fig = _figures(cold_passes, len(specs), cal)
        warm_fig = _figures(warm_passes, len(specs), cal)
        out[f"jobs{jobs}"] = {
            "cold": cold_fig,
            "warm": warm_fig,
            "warm_speedup": round(
                warm_fig["cells_per_cal"] / cold_fig["cells_per_cal"], 2
            ),
        }
    out["schedule_hashes"] = reference_hashes
    return out


def run_all(quick: bool) -> dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "workload": {
            "apps": list(APPS),
            "configs": list(CONFIGS),
            "scale": SCALE,
            "seed": SEED,
        },
        "sweeps": run_sweeps(quick),
    }


def _ratios(current: dict, baseline: dict) -> dict:
    """Speed-up ratios (>1 means the current tree is faster)."""
    ratios = {}
    for key, cur in current.get("sweeps", {}).items():
        if not key.startswith("jobs"):
            continue
        base = baseline.get("sweeps", {}).get(key)
        if not base:
            continue
        for leg in ("cold", "warm"):
            try:
                ratios[f"{key}_{leg}_cells_per_cal"] = round(
                    cur[leg]["cells_per_cal"] / base[leg]["cells_per_cal"], 2
                )
            except (KeyError, TypeError, ZeroDivisionError):
                pass
    return ratios


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--output", type=Path, default=None, help="write JSON here")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="embed FILE's 'current' section as the baseline and report ratios",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help=f"regression gate: fail on >{MAX_REGRESSION:.0%} cold jobs=1 "
        f"throughput drop versus FILE, or warm speed-up "
        f"below {WARM_SPEEDUP_FLOOR:.0f}x",
    )
    args = parser.parse_args()

    report = {"current": run_all(args.quick)}
    if args.baseline is not None:
        recorded = json.loads(args.baseline.read_text())
        baseline = recorded.get("current", recorded.get("baseline", recorded))
        report["baseline"] = baseline
        report["ratios"] = _ratios(report["current"], baseline)

    sweeps = report["current"]["sweeps"]
    for key, figures in sweeps.items():
        if not key.startswith("jobs"):
            continue
        cold, warm = figures["cold"], figures["warm"]
        print(
            f"{key}: cold {cold['cells_per_s']:.2f} cells/s "
            f"(p95 {cold['p95_s']}s, {cold['cells_per_cal']:.2f}/cal-s), "
            f"warm {warm['cells_per_s']:.2f} cells/s "
            f"(x{figures['warm_speedup']} vs cold)"
        )
    for name, value in report.get("ratios", {}).items():
        print(f"ratio {name}: {value}x")

    status = 0
    if args.check is not None:
        committed = json.loads(args.check.read_text())
        reference = committed["current"]["sweeps"]["jobs1"]["cold"]["cells_per_cal"]
        measured = sweeps["jobs1"]["cold"]["cells_per_cal"]
        floor = reference * (1.0 - MAX_REGRESSION)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"gate: cold jobs=1 measured {measured:.2f} cells/cal-s vs "
            f"committed {reference:.2f} (floor {floor:.2f}): {verdict}"
        )
        if measured < floor:
            status = 1
        speedup = sweeps["jobs1"]["warm_speedup"]
        verdict = "ok" if speedup >= WARM_SPEEDUP_FLOOR else "REGRESSION"
        print(
            f"gate: warm speed-up x{speedup} vs floor "
            f"x{WARM_SPEEDUP_FLOOR:.0f}: {verdict}"
        )
        if speedup < WARM_SPEEDUP_FLOOR:
            status = 1

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
