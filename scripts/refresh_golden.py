#!/usr/bin/env python
"""Regenerate the golden-table baseline (``tests/golden/tables_v1.json``).

Run this after an *intentional* model change, review the JSON diff to
confirm every shifted number is expected, and commit the result.  The
sweep goes through :func:`repro.parallel.parallel_sweep`, so a warm
result cache makes a refresh near-instant.

Usage::

    PYTHONPATH=src python scripts/refresh_golden.py [--jobs N] [--cache-dir DIR]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core import reference
from repro.core.golden import golden_payload, save_golden
from repro.parallel import default_cache_dir, parallel_sweep

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "tests" / "golden" / "tables_v1.json"

#: The benchmark point the baseline freezes.
SCALE = 0.02
SEED = 1994


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--output", default=GOLDEN_PATH, type=Path, help="where to write the baseline"
    )
    args = parser.parse_args()

    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    outcome = parallel_sweep(
        reference.APPS,
        scale=SCALE,
        seed=SEED,
        jobs=args.jobs,
        cache_dir=cache_dir,
    )
    if not outcome.ok:
        for failure in outcome.failures:
            print(
                f"FAILED cell {failure.app} P={failure.n_processors}: "
                f"{failure.error_type}: {failure.message}"
            )
        return 1

    payload = golden_payload(outcome.results, scale=SCALE, seed=SEED)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    save_golden(payload, args.output)
    n_rows = sum(len(rows) for rows in payload["tables"].values())
    print(f"wrote {args.output} ({len(payload['tables'])} tables, {n_rows} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
