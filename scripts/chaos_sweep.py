#!/usr/bin/env python
"""Host-level chaos harness: crash a campaign on purpose, prove recovery.

Where ``parallel_smoke.py`` proves the happy path (pool + cache =
byte-identical tables), this harness proves the *unhappy* paths that
``repro.parallel.durable`` exists for (``docs/resilience.md``).  Four
legs, one fixed seeded grid:

1. **reference** -- serial ``parallel_sweep`` (no pool, no cache); its
   Tables 1/3/4 text is the byte-identity yardstick for everything
   below.
2. **clean durable** -- the same grid through ``durable_sweep``
   (journal + pool, no faults): tables must match, and its wall is the
   baseline for the overhead gate.
3. **chaos durable** -- the same grid under a seeded
   :class:`~repro.faults.host.HostChaosPlan` that SIGKILLs one worker
   mid-cell, hangs another (caught by the cell deadline), and injects
   a slow-start straggler.  The campaign must complete by itself
   (deaths retried on a respawned pool, the hang killed and retried),
   the tables must match the reference, and the *recovery overhead* --
   wall minus everything the faults themselves destroyed (lost partial
   attempts, deterministic backoff, injected sleeps) -- must stay
   within ``MAX_RECOVERY_OVERHEAD_PCT`` of the clean wall.
4. **interrupt + corrupt + resume** -- a subprocess runs the campaign
   fresh and is SIGINTed mid-flight: it must exit 130 leaving a valid,
   checkpointed journal.  One completed cell's cache envelope is then
   truncated.  ``resume_sweep`` must finish the campaign re-running
   only what is missing (journal-completed cells come from the cache;
   the corrupted one is quarantined and re-simulated) and the tables
   must again match the reference byte-for-byte.

``--check`` turns the assertions into a CI gate; ``--output`` writes
``BENCH_resilience.json`` (with a pure-Python calibration figure so
numbers travel across hosts); ``--artifacts DIR`` keeps the journal,
chaos plan and recovery report for upload.

Usage::

    PYTHONPATH=src python scripts/chaos_sweep.py [--quick] [--check]
        [--output BENCH_resilience.json] [--artifacts DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.experiments import table1, table3, table4  # noqa: E402
from repro.faults.host import (  # noqa: E402
    HostChaosPlan,
    HostFault,
    corrupt_cache_entry,
    save_host_chaos,
)
from repro.parallel import (  # noqa: E402
    DurablePolicy,
    ResultCache,
    durable_sweep,
    load_journal,
    parallel_sweep,
    resume_sweep,
    save_recovery_report,
)

SCHEMA = "cedar-repro/bench-resilience/v1"

#: CI gate: recovery machinery (journal fsyncs, pool respawns, health
#: polling) may cost at most this fraction of the clean pooled wall.
MAX_RECOVERY_OVERHEAD_PCT = 15.0

#: Secondary sanity gate: even *counting* all destroyed work and dwell,
#: the chaos run must not blow up unboundedly.
MAX_RAW_WALL_FACTOR = 6.0

SEED = 1994
APPS_QUICK = ("FLO52", "OCEAN")
CONFIGS_QUICK = (1, 4)
SCALE_QUICK = 0.006
DEADLINE_QUICK = 2.5

APPS_FULL = ("FLO52", "OCEAN")
CONFIGS_FULL = (1, 4, 8)
SCALE_FULL = 0.008
DEADLINE_FULL = 5.0

#: Injected fault knobs (host seconds).
KILL_DELAY_S = 0.05
SLOW_START_S = 0.5
BACKOFF_BASE_S = 0.1
BACKOFF_CAP_S = 0.4


def _calibration_s() -> float:
    """Pure-Python reference loop (the machine-speed yardstick)."""
    begin = perf_counter()
    total = 0
    for i in range(6_000_000):
        total += i & 7
    return perf_counter() - begin


def _grid(quick: bool):
    if quick:
        return APPS_QUICK, CONFIGS_QUICK, SCALE_QUICK, DEADLINE_QUICK
    return APPS_FULL, CONFIGS_FULL, SCALE_FULL, DEADLINE_FULL


def _policy(deadline: float) -> DurablePolicy:
    # The straggler floor is pinned above the cell deadline so the
    # injected hang is always recovered by the deadline monitor (whose
    # dwell lands in ``lost_work_s`` and is excluded from the overhead
    # gate) rather than racing speculative re-dispatch, which would
    # make the gate timing-dependent.  Speculation's first-result-wins
    # path is exercised deterministically in the test suite instead.
    return DurablePolicy(
        cell_deadline_s=deadline,
        backoff_base_s=BACKOFF_BASE_S,
        backoff_cap_s=BACKOFF_CAP_S,
        straggler_floor_s=4.0 * deadline,
        poll_interval_s=0.02,
    )


def _chaos_plan(apps, configs) -> HostChaosPlan:
    """Kill one short cell, hang one, slow-start one -- all distinct."""
    return HostChaosPlan(
        name="chaos-sweep",
        seed=SEED,
        faults=(
            HostFault(
                kind="worker_kill",
                app=apps[0],
                n_processors=configs[1],
                attempt=1,
                delay_s=KILL_DELAY_S,
            ),
            HostFault(
                kind="worker_hang",
                app=apps[1],
                n_processors=configs[-1],
                attempt=1,
                delay_s=0.0,
            ),
            HostFault(
                kind="slow_start",
                app=apps[1],
                n_processors=configs[0],
                attempt=1,
                delay_s=SLOW_START_S,
            ),
        ),
    )


def _tables_text(results) -> str:
    parts = []
    for build in (table1, table3, table4):
        _, text = build(results)
        parts.append(text)
    return "\n".join(parts)


def _interrupt_subprocess(
    journal: Path, apps, configs, scale: float, deadline: float
) -> int:
    """Run the campaign in a child and SIGINT it after two cells.

    Watches the journal for the second ``done`` record so the signal
    reliably lands mid-campaign (not before work starts, not after it
    all finished) with at least two completed cells on record -- leg 4
    corrupts one completed cell's cache entry and still expects the
    *other* to be served from the cache on resume.  Returns the
    child's exit code (130 expected).
    """
    driver = (
        "import sys\n"
        "from repro.parallel import durable_sweep, DurablePolicy, CampaignInterrupted\n"
        f"policy = DurablePolicy(cell_deadline_s={deadline!r}, "
        f"backoff_base_s={BACKOFF_BASE_S!r}, backoff_cap_s={BACKOFF_CAP_S!r}, "
        "poll_interval_s=0.02)\n"
        "try:\n"
        f"    durable_sweep({list(apps)!r}, {str(journal)!r}, "
        f"configs={list(configs)!r}, scale={scale!r}, seed={SEED!r}, "
        "jobs=2, policy=policy)\n"
        "except CampaignInterrupted as exc:\n"
        "    print(exc, file=sys.stderr)\n"
        "    sys.exit(130)\n"
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    child = subprocess.Popen(
        [sys.executable, "-c", driver],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline_s = time.monotonic() + 120.0
    signalled = False
    while time.monotonic() < deadline_s:
        if child.poll() is not None:
            break
        if not signalled and journal.exists():
            try:
                text = journal.read_text()
            except OSError:
                text = ""
            if text.count('"ev": "done"') + text.count('"ev":"done"') >= 2:
                child.send_signal(signal.SIGINT)
                signalled = True
        time.sleep(0.02)
    try:
        _, err = child.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        child.kill()
        raise
    if err.strip():
        print(f"  child: {err.strip().splitlines()[-1]}")
    return child.returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized grid")
    parser.add_argument(
        "--check", action="store_true", help="gate on the resilience invariants"
    )
    parser.add_argument("--output", metavar="FILE", default=None)
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="keep journal, chaos plan and recovery report here",
    )
    args = parser.parse_args()
    apps, configs, scale, deadline = _grid(args.quick)
    work = Path(tempfile.mkdtemp(prefix="cedar-chaos-"))
    artifacts = Path(args.artifacts) if args.artifacts else None
    if artifacts is not None:
        artifacts.mkdir(parents=True, exist_ok=True)

    calibration = _calibration_s()
    print(
        f"chaos-sweep: {len(apps)}x{len(configs)} cells, scale {scale}, "
        f"deadline {deadline}s, calibration {calibration:.3f}s"
    )

    # Leg 1: serial reference.
    reference = parallel_sweep(apps, configs=configs, scale=scale, seed=SEED, jobs=1)
    ref_tables = _tables_text(reference.results)
    print("  leg 1 (serial reference): done")

    # Leg 2: clean durable pooled run.
    clean = durable_sweep(
        apps,
        work / "clean.journal",
        configs=configs,
        scale=scale,
        seed=SEED,
        jobs=2,
        policy=_policy(deadline),
        handle_signals=False,
    )
    clean_wall = clean.recovery["wall"]["wall_s"]
    clean_ok = _tables_text(clean.results) == ref_tables
    print(f"  leg 2 (clean durable, jobs=2): wall {clean_wall:.2f}s")

    # Leg 3: chaos run to completion -- the overhead-gated leg.
    plan = _chaos_plan(apps, configs)
    if artifacts is not None:
        save_host_chaos(plan, artifacts / "chaos_plan.json")
    chaos = durable_sweep(
        apps,
        work / "chaos.journal",
        configs=configs,
        scale=scale,
        seed=SEED,
        jobs=2,
        policy=_policy(deadline),
        chaos=plan,
        handle_signals=False,
    )
    injected = sum(f.delay_s for f in plan.faults if f.kind == "slow_start")
    report = chaos.recovery
    # Re-derive the overhead figures against the measured clean wall.
    from repro.parallel.durable import RecoveryLedger

    ledger = RecoveryLedger(**{
        key: report["recovery"].get(key, 0)
        for key in (
            "retries", "respawns", "worker_deaths", "deadline_kills",
            "stalled_workers", "stragglers", "speculative_wins",
            "speculative_wasted", "speculative_cancelled", "checkpoints",
        )
    })
    ledger.resumed_cells = report["cells"]["resumed_from_journal"]
    ledger.fault_dwell_s = report["wall"]["fault_dwell_s"]
    ledger.lost_work_s = report["wall"]["lost_work_s"]
    report = ledger.report(
        label="chaos-sweep",
        cells_total=report["cells"]["total"],
        cells_completed=report["cells"]["completed"],
        wall_s=report["wall"]["wall_s"],
        clean_wall_s=clean_wall,
        injected_dwell_s=injected,
    )
    report["cache"] = chaos.recovery["cache"]
    if artifacts is not None:
        save_recovery_report(report, artifacts / "recovery_report.json")
        shutil.copy(work / "chaos.journal", artifacts / "chaos.journal")
    chaos_ok = _tables_text(chaos.results) == ref_tables
    rec = report["recovery"]
    wall = report["wall"]
    print(
        f"  leg 3 (chaos durable): wall {wall['wall_s']:.2f}s, "
        f"{rec['worker_deaths']} death(s), {rec['deadline_kills']} hang(s), "
        f"{rec['respawns']} respawn(s), {rec['retries']} retrie(s); "
        f"recovery overhead {wall['recovery_overhead_pct']:.1f}% "
        f"(raw {wall['overhead_pct']:.1f}%)"
    )

    # Leg 4: interrupt mid-campaign, corrupt the cache, resume.
    int_journal = work / "interrupted.journal"
    code = _interrupt_subprocess(int_journal, apps, configs, scale, deadline)
    state = load_journal(int_journal)
    done_at_interrupt = len(state.done)
    print(
        f"  leg 4 (interrupt): exit {code}, journal "
        f"{done_at_interrupt}/{len(state.specs)} done, "
        f"checkpointed={state.checkpointed}"
    )
    cache = ResultCache(state.cache_dir)
    corrupted = False
    if state.done:
        corrupt_cache_entry(cache, next(iter(state.done)), mode="truncate")
        corrupted = True
    resumed = resume_sweep(int_journal, jobs=2, handle_signals=False)
    resume_ok = _tables_text(resumed.results) == ref_tables
    r_cells = resumed.recovery["cells"]
    r_cache = resumed.recovery["cache"]
    print(
        f"  leg 4 (resume): {r_cells['resumed_from_journal']} from journal, "
        f"{r_cells['completed']}/{r_cells['total']} completed, "
        f"{r_cache['quarantined']} quarantined"
    )

    n_cells = len(apps) * len(configs)
    checks = [
        ("clean durable tables byte-identical to serial", clean_ok),
        ("chaos tables byte-identical to serial", chaos_ok),
        ("chaos campaign completed every cell", len(chaos.failures) == 0),
        ("chaos run saw at least one worker death", rec["worker_deaths"] >= 1),
        ("chaos run recovered the hang", rec["deadline_kills"] >= 1),
        ("chaos run respawned the pool", rec["respawns"] >= 1),
        (
            f"recovery overhead <= {MAX_RECOVERY_OVERHEAD_PCT:.0f}% of clean wall",
            wall["recovery_overhead_pct"] <= MAX_RECOVERY_OVERHEAD_PCT,
        ),
        (
            f"raw chaos wall <= {MAX_RAW_WALL_FACTOR:.0f}x clean wall",
            wall["wall_s"] <= MAX_RAW_WALL_FACTOR * clean_wall,
        ),
        ("interrupted child exited 130", code == 130),
        ("interrupted journal is checkpointed", state.checkpointed),
        (
            "interrupt landed mid-campaign",
            0 < done_at_interrupt < len(state.specs),
        ),
        ("resume tables byte-identical to serial", resume_ok),
        ("resume completed every cell", r_cells["completed"] == n_cells),
        (
            "resume served surviving journal-completed cells from cache",
            r_cells["resumed_from_journal"] == done_at_interrupt - int(corrupted),
        ),
        (
            "corrupted cache entry was quarantined",
            (r_cache["quarantined"] == 1) if corrupted else True,
        ),
    ]
    failed = [name for name, ok in checks if not ok]

    if args.output:
        document = {
            "schema": SCHEMA,
            "quick": args.quick,
            "host": {
                "implementation": platform.python_implementation(),
                "machine": platform.machine(),
                "python": platform.python_version(),
            },
            "calibration_s": round(calibration, 4),
            "grid": {
                "apps": list(apps),
                "configs": list(configs),
                "scale": scale,
                "seed": SEED,
                "cells": n_cells,
            },
            "clean_wall_s": round(clean_wall, 4),
            "chaos": report,
            "interrupt": {
                "exit_code": code,
                "done_at_interrupt": done_at_interrupt,
                "resumed_from_journal": r_cells["resumed_from_journal"],
                "quarantined": r_cache["quarantined"],
                "resume_wall_s": resumed.recovery["wall"]["wall_s"],
            },
            "checks": {name: bool(ok) for name, ok in checks},
        }
        Path(args.output).write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.output}")

    for name in failed:
        print(f"FAILED check: {name}", file=sys.stderr)
    if not failed:
        print("chaos-sweep: all checks passed")
    shutil.rmtree(work, ignore_errors=True)
    return 1 if (failed and args.check) else 0


if __name__ == "__main__":
    raise SystemExit(main())
