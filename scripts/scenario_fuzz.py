#!/usr/bin/env python
"""CI scenario-fuzz driver: seeded scenarios through the full gauntlet.

Generates ``--n`` scenarios from the seeded stream
(:func:`repro.scenario.generate_scenarios`) and takes each through
:func:`repro.scenario.verify_scenario`: compile, two same-seed runs
(byte-identical fingerprints + schedule hashes), and the tie-break
perturbation race sanitizer.  Every ``--parallel-every``-th scenario
additionally round-trips through the pooled executor + result cache.

Any failing scenario document -- the exact JSON that reproduces the
failure -- and its verification report are written into
``--artifacts`` for upload, and the run exits 1.

Usage (the CI ``scenario-fuzz`` job)::

    python scripts/scenario_fuzz.py --n 200 --seed 1994 --artifacts DIR
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.scenario import generate_scenarios, save_scenario, verify_scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200, help="scenarios to verify")
    parser.add_argument("--seed", type=int, default=1994, help="stream seed")
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="where to write failing scenario documents + reports",
    )
    parser.add_argument(
        "--race-seeds",
        type=int,
        default=1,
        metavar="K",
        help="tie-break perturbation runs per scenario (0 disables)",
    )
    parser.add_argument(
        "--parallel-every",
        type=int,
        default=25,
        metavar="M",
        help="every M-th scenario also round-trips executor + cache (0 disables)",
    )
    args = parser.parse_args(argv)

    print(f"scenario-fuzz: {args.n} scenarios from seed {args.seed}")
    t0 = time.monotonic()
    docs = generate_scenarios(args.seed, args.n)
    failures = []
    with tempfile.TemporaryDirectory(prefix="scenario-fuzz-cache-") as cache_root:
        for index, doc in enumerate(docs):
            pooled = args.parallel_every > 0 and index % args.parallel_every == 0
            verification = verify_scenario(
                doc,
                race_seeds=tuple(range(1, args.race_seeds + 1)),
                parallel_jobs=2 if pooled else 0,
                cache_dir=str(Path(cache_root) / doc.name) if pooled else None,
            )
            if not verification.passed:
                failures.append((doc, verification))
                print(verification.format())
            elif (index + 1) % 25 == 0 or index + 1 == args.n:
                elapsed = time.monotonic() - t0
                print(f"  {index + 1}/{args.n} verified ({elapsed:.1f}s)")

    if failures and args.artifacts:
        artifacts = Path(args.artifacts)
        artifacts.mkdir(parents=True, exist_ok=True)
        for doc, verification in failures:
            save_scenario(doc, artifacts / f"{doc.name}.json")
            report = artifacts / f"{doc.name}.report.txt"
            report.write_text(verification.format() + "\n")
        print(f"wrote {len(failures)} failing scenario(s) to {artifacts}")

    elapsed = time.monotonic() - t0
    verdict = "FAIL" if failures else "PASS"
    print(
        f"scenario-fuzz {verdict}: {args.n - len(failures)}/{args.n} "
        f"scenario(s) deterministic + hazard-free in {elapsed:.1f}s"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
