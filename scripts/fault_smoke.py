#!/usr/bin/env python
"""CI smoke test for the fault-injection stack.

Runs the bundled tiny campaign (``examples/campaigns/smoke.json``)
against FLO52 on 4 processors at a small scale, checks that faults were
actually injected and that the degraded run costs more than a healthy
one, and exits non-zero on any violation.  Kept fast (a few seconds) so
it can gate every push.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.apps import PAPER_APPS
from repro.core import run_application
from repro.faults import load_campaign, run_with_campaign
from repro.obs import Observability
from repro.xylem.params import XylemParams

CAMPAIGN = Path(__file__).resolve().parents[1] / "examples" / "campaigns" / "smoke.json"
APP = "FLO52"
P = 4
SCALE = 0.002
SEED = 1994


def main() -> int:
    spec = load_campaign(CAMPAIGN)
    healthy = run_application(
        PAPER_APPS[APP](), P, scale=SCALE, os_params=XylemParams(seed=SEED)
    )
    obs = Observability()
    outcome = run_with_campaign(spec, APP, P, scale=SCALE, seed=SEED, obs=obs)
    ledger = outcome.ledger

    checks = [
        ("faults injected", ledger.injected > 0),
        ("transient fault reverted", ledger.reverted > 0),
        ("nothing skipped", ledger.skipped == 0),
        ("degraded run costs more", outcome.result.ct_ns > healthy.ct_ns),
        ("faults.injected metric emitted", obs.registry.value("faults.injected") > 0),
    ]
    failed = [name for name, ok in checks if not ok]
    print(
        f"fault-smoke: campaign {spec.name!r} on {APP} P={P}: "
        f"{ledger.injected} injected / {ledger.reverted} reverted, "
        f"healthy ct {healthy.ct_ns} ns -> degraded ct {outcome.result.ct_ns} ns"
    )
    for record in ledger.records:
        print(f"  {record.kind:16s} t={record.applied_ns}ns  {record.note}")
    if failed:
        for name in failed:
            print(f"FAILED check: {name}", file=sys.stderr)
        return 1
    print("fault-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
