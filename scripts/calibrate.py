"""Calibration sweep: print key numbers vs paper for chosen apps/configs."""
import sys, time
from repro.apps import PAPER_APPS
from repro.core import run_application, user_breakdown, contention_overhead, parallel_loop_concurrency
from repro.core.speedup import speedup_table
from repro.core import reference
from repro.xylem.categories import OsActivity, TimeCategory

apps = sys.argv[1].split(",") if len(sys.argv) > 1 else list(PAPER_APPS)
configs = [int(x) for x in sys.argv[2].split(",")] if len(sys.argv) > 2 else [1, 4, 8, 16, 32]
scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.02

for app in apps:
    t0 = time.time()
    results = {n: run_application(PAPER_APPS[app](), n, scale=scale) for n in configs}
    print(f"\n=== {app} (wall {time.time()-t0:.1f}s) ===")
    rows = speedup_table(results) if 1 in results else []
    for row in rows:
        p = reference.TABLE1[app][row.n_processors]
        print(f"  {row.n_processors:2d}p CT {row.ct_seconds:7.1f} (paper {p[0]:7.1f})  "
              f"spd {row.speedup:5.2f} ({p[1]:5.2f})  conc {row.concurrency:5.2f} ({p[2]:5.2f})")
    if 1 in results:
        base = results[1]
        for n in configs:
            if n == 1: continue
            r = results[n]
            c = contention_overhead(r, base)
            p = reference.TABLE4[app][n]
            pc = [parallel_loop_concurrency(r, t) for t in range(r.config.n_clusters)]
            print(f"  {n:2d}p Tp_act {r.seconds(c.tp_actual_ns):7.1f} ({p[0]:7.1f}) "
                  f"Tp_idl {r.seconds(c.tp_ideal_ns):7.1f} ({p[1]:7.1f}) Ov {c.ov_cont_pct:5.1f}% ({p[2]:4.1f}%) "
                  f"parc {['%.2f'%x for x in pc]}")
    if 32 in results:
        r = results[32]
        b0 = user_breakdown(r, 0)
        print(f"  32p main: serial {b0.fraction(b0.serial_ns)*100:.1f}% mc {b0.fraction(b0.mc_loop_ns)*100:.1f}% "
              f"sdoit {b0.fraction(b0.iter_sdoall_ns)*100:.1f}% xdoit {b0.fraction(b0.iter_xdoall_ns)*100:.1f}% "
              f"barr {b0.fraction(b0.barrier_ns)*100:.1f}% xpick {b0.fraction(b0.pickup_xdoall_ns)*100:.1f}% "
              f"ovhd {b0.overhead_fraction*100:.1f}%")
        if r.config.n_clusters > 1:
            b1 = user_breakdown(r, 1)
            print(f"  32p hlp1: wait {b1.fraction(b1.helper_wait_ns)*100:.1f}% ovhd {b1.overhead_fraction*100:.1f}%")
        os_tot = sum(r.accounting.activity_total_ns(a) for a in OsActivity)
        print(f"  32p OS total {r.seconds(os_tot):5.2f}s = {r.fraction_of_ct(os_tot)*100:.1f}% CT ; "
              f"kspin {r.fraction_of_ct(sum(r.accounting.category_ns(c, TimeCategory.KSPIN) for c in range(4)))*100:.2f}%")
        for a in OsActivity:
            ns = r.accounting.activity_total_ns(a)
            print(f"     {a.value:15s} {r.seconds(ns):6.2f}s {r.fraction_of_ct(ns)*100:5.2f}%")
