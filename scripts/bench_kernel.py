#!/usr/bin/env python
"""Kernel/model speed benchmark: events per second and cell wall time.

Measures three layers (the same layers the fast-path work targets):

1. **Kernel microbenchmarks** -- pure event-loop workloads (a timeout
   chain, a process fan-out, an any-of race with abandoned waits) whose
   event counts are known analytically, so ``events/sec`` is exact.
2. **Vector memory traffic** -- packet-level ``vector_access`` streams
   through the :class:`~repro.hardware.memory.GlobalMemorySystem`
   (words/sec; the batched-transaction fast path shows up here).
3. **Cold sweep cells** -- ``run_cell`` wall time for FLO52/OCEAN at
   P=8 and P=32 (no cache), the end-to-end quantity users feel.

Raw wall time is not portable across machines, so every figure is also
reported normalised by a pure-Python calibration loop timed in the same
batch (the ``benchmarks/test_obs_overhead.py`` idiom):
``events_per_cal = events / (wall_s / calibration_s)`` is the number of
events processed per *calibration second* and compares across hosts.

Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [--quick]
        [--output BENCH_kernel.json] [--baseline FILE] [--check FILE]

``--baseline FILE`` embeds FILE's ``current`` section as the baseline
and reports speed-up ratios.  ``--check FILE`` is the CI regression
gate: exit non-zero if the current normalised micro events/sec fall
more than ``MAX_REGRESSION`` below FILE's committed value.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.hardware.config import paper_configuration  # noqa: E402
from repro.hardware.memory import GlobalMemorySystem  # noqa: E402
from repro.parallel.executor import CellSpec, run_cell  # noqa: E402
from repro.sim import Simulator  # noqa: E402

SCHEMA = "cedar-repro/bench-kernel/v1"

#: CI gate: fail when normalised micro events/sec drop below
#: ``(1 - MAX_REGRESSION)`` of the committed figure.
MAX_REGRESSION = 0.20

#: Repetitions per microbenchmark; the *minimum* wall time is reported
#: (the run least perturbed by scheduler noise -- the standard
#: microbenchmark practice), with the median calibration as yardstick.
REPEATS = 5
REPEATS_QUICK = 3


def _calibration_s() -> float:
    """Pure-Python reference loop (the machine-speed yardstick)."""
    begin = perf_counter()
    total = 0
    for i in range(6_000_000):
        total += i & 7
    return perf_counter() - begin


# -- kernel microbenchmarks -------------------------------------------------


#: ``yield n`` (direct-delay) is the documented hot-path idiom on the
#: fast kernel; older kernels only understand ``yield sim.timeout(n)``.
#: The fallback keeps this harness runnable against the pre-fast-path
#: tree, which is how the committed baseline was recorded.
DIRECT_DELAY = bool(getattr(Simulator, "SUPPORTS_DIRECT_DELAY", False))


def _bench_chain(iterations: int) -> tuple[int, float]:
    """One process yielding a chain of timeouts.

    Events: 1 Initialize + ``iterations`` timeouts + 1 process end.
    """
    sim = Simulator()

    def chain():
        if DIRECT_DELAY:
            for _ in range(iterations):
                yield 1
        else:
            timeout = sim.timeout
            for _ in range(iterations):
                yield timeout(1)

    sim.process(chain())
    begin = perf_counter()
    sim.run()
    return iterations + 2, perf_counter() - begin


def _bench_fanout(n_processes: int, iterations: int) -> tuple[int, float]:
    """Many concurrent processes, each a short timeout chain."""
    sim = Simulator()

    def worker(start: int):
        yield sim.timeout(start)
        if DIRECT_DELAY:
            for _ in range(iterations):
                yield 3
        else:
            timeout = sim.timeout
            for _ in range(iterations):
                yield timeout(3)

    for start in range(n_processes):
        sim.process(worker(start))
    begin = perf_counter()
    sim.run()
    return n_processes * (iterations + 3), perf_counter() - begin


def _bench_anyof(iterations: int) -> tuple[int, float]:
    """An any-of race each iteration; the losing timeout is abandoned.

    Events per iteration: the two timeouts plus the condition event.
    """
    sim = Simulator()

    def racer():
        for _ in range(iterations):
            yield sim.timeout(1) | sim.timeout(2)

    sim.process(racer())
    begin = perf_counter()
    sim.run()
    return 3 * iterations + 2, perf_counter() - begin


def run_micro(quick: bool) -> dict:
    scale = 1 if not quick else 4
    cases = {
        "chain": lambda: _bench_chain(200_000 // scale),
        "fanout": lambda: _bench_fanout(400 // scale, 400 // scale),
        "anyof": lambda: _bench_anyof(60_000 // scale),
    }
    repeats = REPEATS_QUICK if quick else REPEATS
    out: dict = {}
    total_events = 0
    total_wall = 0.0
    cals: list[float] = []
    for name, bench in cases.items():
        bench()  # warm-up: bytecode caches, allocator arenas, branch history
        walls = []
        events = 0
        for _ in range(repeats):
            cals.append(_calibration_s())
            events, wall = bench()
            walls.append(wall)
        wall = min(walls)
        cal = statistics.median(cals)
        out[name] = {
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_s": round(events / wall, 1),
            "events_per_cal": round(events / (wall / cal), 1),
        }
        total_events += events
        total_wall += wall
    cal = statistics.median(cals)
    out["total"] = {
        "events": total_events,
        "wall_s": round(total_wall, 4),
        "events_per_s": round(total_events / total_wall, 1),
        "events_per_cal": round(total_events / (total_wall / cal), 1),
    }
    return out


# -- packet-level vector traffic --------------------------------------------


def run_vector(quick: bool) -> dict:
    """Concurrent 32-word vector accesses through the packet model."""
    n_ces = 8
    repeats = 4 if quick else 16
    words = 32
    sim = Simulator()
    memory = GlobalMemorySystem(sim, paper_configuration(32))

    def streamer(ce_id: int):
        yield sim.timeout(ce_id)
        for burst in range(repeats):
            yield sim.process(
                memory.vector_access(ce_id, 8 * (ce_id + 64 * burst), words)
            )

    for ce in range(n_ces):
        sim.process(streamer(ce))
    cal = _calibration_s()
    begin = perf_counter()
    sim.run()
    wall = perf_counter() - begin
    total_words = n_ces * repeats * words
    return {
        "words": total_words,
        "completions": memory.stats.completions,
        "sim_ns": sim.now,
        "wall_s": round(wall, 4),
        "words_per_s": round(total_words / wall, 1),
        "words_per_cal": round(total_words / (wall / cal), 1),
    }


# -- cold sweep cells --------------------------------------------------------


def run_cells(quick: bool) -> dict:
    points = [("FLO52", 8), ("OCEAN", 8)]
    if not quick:
        points += [("FLO52", 32), ("OCEAN", 32)]
    scale = 0.01 if quick else 0.02
    out = {}
    for app, n_processors in points:
        cal = _calibration_s()
        spec = CellSpec(app=app, n_processors=n_processors, scale=scale, seed=1994)
        begin = perf_counter()
        result = run_cell(spec)
        wall = perf_counter() - begin
        out[f"{app}_P{n_processors}"] = {
            "scale": scale,
            "wall_s": round(wall, 4),
            "loop_wall_s": round(result.wall_s, 4),
            "wall_over_cal": round(wall / cal, 3),
            "ct_ns": result.ct_ns,
            "schedule_hash": result.schedule_hash,
        }
    return out


# -- assembly ----------------------------------------------------------------


def run_all(quick: bool) -> dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "micro": run_micro(quick),
        "vector": run_vector(quick),
        "cells": run_cells(quick),
    }


def _ratios(current: dict, baseline: dict) -> dict:
    """Speed-up ratios (>1 means the current tree is faster)."""
    ratios = {}
    try:
        ratios["micro_events_per_cal"] = round(
            current["micro"]["total"]["events_per_cal"]
            / baseline["micro"]["total"]["events_per_cal"],
            2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    # The timeout chain is the pure kernel hot path (pop/send/push with
    # no condition machinery) -- the figure the >=3x kernel target is
    # stated against.
    try:
        ratios["micro_hot_events_per_cal"] = round(
            current["micro"]["chain"]["events_per_cal"]
            / baseline["micro"]["chain"]["events_per_cal"],
            2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    try:
        ratios["vector_words_per_cal"] = round(
            current["vector"]["words_per_cal"] / baseline["vector"]["words_per_cal"], 2
        )
    except (KeyError, ZeroDivisionError):
        pass
    for cell, figures in current.get("cells", {}).items():
        base = baseline.get("cells", {}).get(cell)
        if base and figures.get("wall_over_cal"):
            ratios[f"cell_{cell}_wall"] = round(
                base["wall_over_cal"] / figures["wall_over_cal"], 2
            )
    return ratios


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--output", type=Path, default=None, help="write JSON here")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="embed FILE's 'current' section as the baseline and report ratios",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help=f"regression gate: fail on >{MAX_REGRESSION:.0%} normalised "
        "micro events/sec drop versus FILE",
    )
    args = parser.parse_args()

    report = {"current": run_all(args.quick)}
    if args.baseline is not None:
        recorded = json.loads(args.baseline.read_text())
        baseline = recorded.get("current", recorded.get("baseline", recorded))
        report["baseline"] = baseline
        report["ratios"] = _ratios(report["current"], baseline)

    micro = report["current"]["micro"]["total"]
    print(
        f"micro: {micro['events']} events in {micro['wall_s']}s "
        f"({micro['events_per_s']:.0f}/s, {micro['events_per_cal']:.0f}/cal-s)"
    )
    vector = report["current"]["vector"]
    print(
        f"vector: {vector['words']} words in {vector['wall_s']}s "
        f"({vector['words_per_s']:.0f} words/s)"
    )
    for cell, figures in report["current"]["cells"].items():
        print(f"cell {cell}: {figures['wall_s']}s (x{figures['wall_over_cal']} cal)")
    for name, value in report.get("ratios", {}).items():
        print(f"ratio {name}: {value}x")

    status = 0
    if args.check is not None:
        committed = json.loads(args.check.read_text())
        reference = committed["current"]["micro"]["total"]["events_per_cal"]
        measured = micro["events_per_cal"]
        floor = reference * (1.0 - MAX_REGRESSION)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"gate: measured {measured:.0f} events/cal-s vs committed "
            f"{reference:.0f} (floor {floor:.0f}): {verdict}"
        )
        if measured < floor:
            status = 1

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
