#!/usr/bin/env python
"""Kernel/model speed benchmark: events per second and cell wall time.

Measures three layers (the same layers the fast-path work targets):

1. **Kernel microbenchmarks** -- pure event-loop workloads (a timeout
   chain, a process fan-out, an any-of race with abandoned waits) whose
   event counts are known analytically, so ``events/sec`` is exact.
   When the compiled ``_corefast`` loop is built it serves these runs;
   the committed gate figure was recorded pure-Python, so the gate only
   ever tightens.
2. **Vector memory traffic** -- packet-level ``vector_access`` streams
   through the :class:`~repro.hardware.memory.GlobalMemorySystem`
   (words/sec; the batched-transaction fast path shows up here).
3. **Contention cells** -- barrier-heavy (many short spread loops) and
   pickup-heavy (high-P small-chunk XDOALL) full-stack workloads that
   stress the runtime-layer fast paths (``repro.runtime.fastpath``).
   Each cell is timed with the fast paths hot *and* with
   ``CEDAR_REPRO_FASTPATH=off``, and the two completion times must be
   identical -- the bench doubles as an end-to-end exactness check.
4. **Cold sweep cells** -- ``run_cell`` wall time for FLO52/OCEAN at
   P=8 and P=32 (no cache), the end-to-end quantity users feel.  The
   timed run is sink-free (fast paths + compiled loop hot); the
   schedule hash is recorded from a separate exact sink-on run whose
   ``ct_ns`` must match the timed run's.

Contention and sweep cells are timed as the minimum over ``REPEATS``
runs after one untimed warm-up (the microbenchmark idiom): the minimum
of repeated identical runs estimates the noise floor, and the warm-up
keeps lazy imports and allocator growth out of the first sample.  The
cyclic collector is paused for each timed window (the pyperf idiom)
and the debt collected between windows.

Raw wall time is not portable across machines, so every figure is also
reported normalised by a pure-Python calibration loop timed in the same
batch (the ``benchmarks/test_obs_overhead.py`` idiom):
``events_per_cal = events / (wall_s / calibration_s)`` is the number of
events processed per *calibration second* and compares across hosts.

Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [--quick]
        [--output BENCH_kernel.json] [--baseline FILE] [--check FILE]

``--baseline FILE`` embeds FILE's ``current`` section as the baseline
and reports speed-up ratios.  ``--check FILE`` is the CI regression
gate: exit non-zero if the current normalised micro events/sec fall
more than ``MAX_REGRESSION`` below FILE's committed value.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.runner import run_phases  # noqa: E402
from repro.hardware.config import paper_configuration  # noqa: E402
from repro.hardware.memory import GlobalMemorySystem  # noqa: E402
from repro.parallel.executor import CellSpec, run_cell  # noqa: E402
from repro.runtime.loops import LoopConstruct, ParallelLoop  # noqa: E402
from repro.sim import Simulator  # noqa: E402

# v1 -> v2: sweep cells split timed (sink-free) from hashed (exact
# sink-on) runs and grew fastpath-off baselines; new "contention"
# section with barrier-heavy / pickup-heavy cells.
SCHEMA = "cedar-repro/bench-kernel/v2"

#: CI gate: fail when normalised micro events/sec drop below
#: ``(1 - MAX_REGRESSION)`` of the committed figure.
MAX_REGRESSION = 0.20

#: Repetitions per microbenchmark; the *minimum* wall time is reported
#: (the run least perturbed by scheduler noise -- the standard
#: microbenchmark practice), with the median calibration as yardstick.
REPEATS = 5
REPEATS_QUICK = 3

#: Contention/sweep cells repeat more: one run is only tens of
#: milliseconds, so extra draws are cheap, and the minimum needs more
#: samples to dodge preemption windows on a time-shared host.
REPEATS_CELLS = 9
REPEATS_CELLS_QUICK = 3


@contextmanager
def _gc_paused():
    """Cyclic collector paused for a timed window (the pyperf idiom).

    A GC pass landing mid-run adds milliseconds of pure noise to a
    tens-of-milliseconds figure; the debt is collected on exit, outside
    the timed region.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()


def _calibration_s() -> float:
    """Pure-Python reference loop (the machine-speed yardstick)."""
    begin = perf_counter()
    total = 0
    for i in range(6_000_000):
        total += i & 7
    return perf_counter() - begin


def _calibration_median_s(samples: int = 5) -> float:
    """Median of several calibration samples (one sample wobbles ~10%
    on a loaded host, and every normalised figure scales with it)."""
    return statistics.median(_calibration_s() for _ in range(samples))


# -- kernel microbenchmarks -------------------------------------------------


#: ``yield n`` (direct-delay) is the documented hot-path idiom on the
#: fast kernel; older kernels only understand ``yield sim.timeout(n)``.
#: The fallback keeps this harness runnable against the pre-fast-path
#: tree, which is how the committed baseline was recorded.
DIRECT_DELAY = bool(getattr(Simulator, "SUPPORTS_DIRECT_DELAY", False))


def _bench_chain(iterations: int) -> tuple[int, float]:
    """One process yielding a chain of timeouts.

    Events: 1 Initialize + ``iterations`` timeouts + 1 process end.
    """
    sim = Simulator()

    def chain():
        if DIRECT_DELAY:
            for _ in range(iterations):
                yield 1
        else:
            timeout = sim.timeout
            for _ in range(iterations):
                yield timeout(1)

    sim.process(chain())
    begin = perf_counter()
    sim.run()
    return iterations + 2, perf_counter() - begin


def _bench_fanout(n_processes: int, iterations: int) -> tuple[int, float]:
    """Many concurrent processes, each a short timeout chain."""
    sim = Simulator()

    def worker(start: int):
        yield sim.timeout(start)
        if DIRECT_DELAY:
            for _ in range(iterations):
                yield 3
        else:
            timeout = sim.timeout
            for _ in range(iterations):
                yield timeout(3)

    for start in range(n_processes):
        sim.process(worker(start))
    begin = perf_counter()
    sim.run()
    return n_processes * (iterations + 3), perf_counter() - begin


def _bench_anyof(iterations: int) -> tuple[int, float]:
    """An any-of race each iteration; the losing timeout is abandoned.

    Events per iteration: the two timeouts plus the condition event.
    """
    sim = Simulator()

    def racer():
        for _ in range(iterations):
            yield sim.timeout(1) | sim.timeout(2)

    sim.process(racer())
    begin = perf_counter()
    sim.run()
    return 3 * iterations + 2, perf_counter() - begin


def run_micro(quick: bool) -> dict:
    scale = 1 if not quick else 4
    cases = {
        "chain": lambda: _bench_chain(200_000 // scale),
        "fanout": lambda: _bench_fanout(400 // scale, 400 // scale),
        "anyof": lambda: _bench_anyof(60_000 // scale),
    }
    repeats = REPEATS_QUICK if quick else REPEATS
    out: dict = {}
    total_events = 0
    total_wall = 0.0
    cals: list[float] = []
    for name, bench in cases.items():
        bench()  # warm-up: bytecode caches, allocator arenas, branch history
        walls = []
        events = 0
        with _gc_paused():
            for _ in range(repeats):
                cals.append(_calibration_s())
                events, wall = bench()
                walls.append(wall)
        wall = min(walls)
        cal = statistics.median(cals)
        out[name] = {
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_s": round(events / wall, 1),
            "events_per_cal": round(events / (wall / cal), 1),
        }
        total_events += events
        total_wall += wall
    cal = statistics.median(cals)
    out["total"] = {
        "events": total_events,
        "wall_s": round(total_wall, 4),
        "events_per_s": round(total_events / total_wall, 1),
        "events_per_cal": round(total_events / (total_wall / cal), 1),
    }
    return out


# -- packet-level vector traffic --------------------------------------------


def run_vector(quick: bool) -> dict:
    """Concurrent 32-word vector accesses through the packet model."""
    n_ces = 8
    repeats = 4 if quick else 16
    words = 32
    sim = Simulator()
    memory = GlobalMemorySystem(sim, paper_configuration(32))

    def streamer(ce_id: int):
        yield sim.timeout(ce_id)
        for burst in range(repeats):
            yield sim.process(
                memory.vector_access(ce_id, 8 * (ce_id + 64 * burst), words)
            )

    for ce in range(n_ces):
        sim.process(streamer(ce))
    cal = _calibration_s()
    begin = perf_counter()
    sim.run()
    wall = perf_counter() - begin
    total_words = n_ces * repeats * words
    return {
        "words": total_words,
        "completions": memory.stats.completions,
        "sim_ns": sim.now,
        "wall_s": round(wall, 4),
        "words_per_s": round(total_words / wall, 1),
        "words_per_cal": round(total_words / (wall / cal), 1),
    }


# -- contention cells (runtime-layer fast paths) -----------------------------


class _ExactMismatch(RuntimeError):
    """Fast-path and exact-path runs disagreed -- the bench refuses."""


@contextmanager
def _fastpaths_off():
    """Force every layer exact (the unified kill switch) for a block."""
    saved = os.environ.get("CEDAR_REPRO_FASTPATH")
    os.environ["CEDAR_REPRO_FASTPATH"] = "off"
    try:
        yield
    finally:
        if saved is None:
            del os.environ["CEDAR_REPRO_FASTPATH"]
        else:
            os.environ["CEDAR_REPRO_FASTPATH"] = saved


def _barrier_heavy_phases(quick: bool) -> list:
    """Many short skewed spread loops: finish-barrier traffic dominates."""
    n_loops = 12 if quick else 40
    return [
        ParallelLoop(
            construct=LoopConstruct.SDOALL,
            n_outer=16,
            n_inner=2,
            work_ns_per_iter=300,
            work_skew=0.3,
            label=f"bar{i}",
        )
        for i in range(n_loops)
    ]


def _pickup_heavy_phases(quick: bool) -> list:
    """High-P small-chunk XDOALLs: the test&set pickup queue dominates."""
    n_loops = 4 if quick else 10
    return [
        ParallelLoop(
            construct=LoopConstruct.XDOALL,
            n_inner=600,
            work_ns_per_iter=80,
            label=f"pick{i}",
        )
        for i in range(n_loops)
    ]


def run_contention(quick: bool) -> dict:
    """Time the barrier/pickup-heavy cells hot and exact; require equal CT."""
    cases = {
        "barrier_heavy_P32": _barrier_heavy_phases(quick),
        "pickup_heavy_P32": _pickup_heavy_phases(quick),
    }
    out = {}
    repeats = REPEATS_CELLS_QUICK if quick else REPEATS_CELLS
    for name, phases in cases.items():
        cal = _calibration_median_s()
        run_phases(list(phases), 32)  # warm-up
        wall_fast = float("inf")
        with _gc_paused():
            for _ in range(repeats):
                begin = perf_counter()
                fast = run_phases(list(phases), 32)
                wall_fast = min(wall_fast, perf_counter() - begin)
        with _fastpaths_off():
            run_phases(list(phases), 32)  # warm-up on the exact paths too
            wall_exact = float("inf")
            with _gc_paused():
                for _ in range(repeats):
                    begin = perf_counter()
                    exact = run_phases(list(phases), 32)
                    wall_exact = min(wall_exact, perf_counter() - begin)
        if fast.ct_ns != exact.ct_ns:
            raise _ExactMismatch(
                f"{name}: fast ct_ns {fast.ct_ns} != exact ct_ns {exact.ct_ns}"
            )
        stats = fast.runtime.fastpath.stats
        out[name] = {
            "ct_ns": fast.ct_ns,
            "wall_s": round(wall_fast, 4),
            "wall_over_cal": round(wall_fast / cal, 3),
            "fastpath_off_wall_s": round(wall_exact, 4),
            "fastpath_speedup": round(wall_exact / wall_fast, 2),
            "lean_barrier_detaches": stats.lean_barrier_detaches,
            "lean_pickups": stats.lean_pickups,
        }
    return out


# -- cold sweep cells --------------------------------------------------------


def run_cells(quick: bool) -> dict:
    points = [("FLO52", 8), ("OCEAN", 8)]
    if not quick:
        points += [("FLO52", 32), ("OCEAN", 32)]
    scale = 0.01 if quick else 0.02
    out = {}
    for app, n_processors in points:
        cal = _calibration_median_s()
        # Timed run: sink-free, every fast path and the compiled loop
        # (when built) hot -- the configuration sweeps actually run in.
        timed_spec = CellSpec(
            app=app,
            n_processors=n_processors,
            scale=scale,
            seed=1994,
            fingerprint_schedule=False,
        )
        run_cell(timed_spec)  # warm-up: lazy imports, allocator, caches
        repeats = REPEATS_CELLS_QUICK if quick else REPEATS_CELLS
        wall = float("inf")
        with _gc_paused():
            for _ in range(repeats):
                begin = perf_counter()
                result = run_cell(timed_spec)
                wall = min(wall, perf_counter() - begin)
        # Hash run: exact path with the determinism sink attached (the
        # sink forces the Python loops, so recorded hashes are
        # interpreter- and fast-path-independent by construction).
        hash_spec = CellSpec(app=app, n_processors=n_processors, scale=scale, seed=1994)
        hashed = run_cell(hash_spec)
        if hashed.ct_ns != result.ct_ns:
            raise _ExactMismatch(
                f"{app} P{n_processors}: sink-free ct_ns {result.ct_ns} != "
                f"sink-on ct_ns {hashed.ct_ns}"
            )
        # Baseline: the same sink-free cell with every fast path off.
        with _fastpaths_off():
            run_cell(timed_spec)  # warm-up on the exact paths too
            wall_off = float("inf")
            with _gc_paused():
                for _ in range(repeats):
                    begin = perf_counter()
                    off = run_cell(timed_spec)
                    wall_off = min(wall_off, perf_counter() - begin)
        if off.ct_ns != result.ct_ns:
            raise _ExactMismatch(
                f"{app} P{n_processors}: fastpath-off ct_ns {off.ct_ns} != "
                f"fastpath-on ct_ns {result.ct_ns}"
            )
        out[f"{app}_P{n_processors}"] = {
            "scale": scale,
            "wall_s": round(wall, 4),
            "loop_wall_s": round(result.wall_s, 4),
            "wall_over_cal": round(wall / cal, 3),
            "fastpath_off_wall_s": round(wall_off, 4),
            "fastpath_speedup": round(wall_off / wall, 2),
            "ct_ns": result.ct_ns,
            "schedule_hash": hashed.schedule_hash,
            "fastpath_modes": dict(result.fastpath_modes),
        }
    return out


# -- assembly ----------------------------------------------------------------


def run_all(quick: bool) -> dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "micro": run_micro(quick),
        "vector": run_vector(quick),
        "contention": run_contention(quick),
        "cells": run_cells(quick),
    }


def _ratios(current: dict, baseline: dict) -> dict:
    """Speed-up ratios (>1 means the current tree is faster)."""
    ratios = {}
    try:
        ratios["micro_events_per_cal"] = round(
            current["micro"]["total"]["events_per_cal"]
            / baseline["micro"]["total"]["events_per_cal"],
            2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    # The timeout chain is the pure kernel hot path (pop/send/push with
    # no condition machinery) -- the figure the >=3x kernel target is
    # stated against.
    try:
        ratios["micro_hot_events_per_cal"] = round(
            current["micro"]["chain"]["events_per_cal"]
            / baseline["micro"]["chain"]["events_per_cal"],
            2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    try:
        ratios["vector_words_per_cal"] = round(
            current["vector"]["words_per_cal"] / baseline["vector"]["words_per_cal"], 2
        )
    except (KeyError, ZeroDivisionError):
        pass
    for cell, figures in current.get("cells", {}).items():
        base = baseline.get("cells", {}).get(cell)
        if base and figures.get("wall_over_cal"):
            ratios[f"cell_{cell}_wall"] = round(
                base["wall_over_cal"] / figures["wall_over_cal"], 2
            )
    for cell, figures in current.get("contention", {}).items():
        base = baseline.get("contention", {}).get(cell)
        if base and figures.get("wall_over_cal"):
            ratios[f"contention_{cell}_wall"] = round(
                base["wall_over_cal"] / figures["wall_over_cal"], 2
            )
    return ratios


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--output", type=Path, default=None, help="write JSON here")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="embed FILE's 'current' section as the baseline and report ratios",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help=f"regression gate: fail on >{MAX_REGRESSION:.0%} normalised "
        "micro events/sec drop versus FILE",
    )
    args = parser.parse_args()

    report = {"current": run_all(args.quick)}
    if args.baseline is not None:
        recorded = json.loads(args.baseline.read_text())
        baseline = recorded.get("current", recorded.get("baseline", recorded))
        report["baseline"] = baseline
        report["ratios"] = _ratios(report["current"], baseline)

    micro = report["current"]["micro"]["total"]
    print(
        f"micro: {micro['events']} events in {micro['wall_s']}s "
        f"({micro['events_per_s']:.0f}/s, {micro['events_per_cal']:.0f}/cal-s)"
    )
    vector = report["current"]["vector"]
    print(
        f"vector: {vector['words']} words in {vector['wall_s']}s "
        f"({vector['words_per_s']:.0f} words/s)"
    )
    for cell, figures in report["current"].get("contention", {}).items():
        print(
            f"contention {cell}: {figures['wall_s']}s hot / "
            f"{figures['fastpath_off_wall_s']}s exact "
            f"(x{figures['fastpath_speedup']} fast-path speedup)"
        )
    for cell, figures in report["current"]["cells"].items():
        print(
            f"cell {cell}: {figures['wall_s']}s (x{figures['wall_over_cal']} cal, "
            f"x{figures.get('fastpath_speedup', '?')} vs fastpaths off)"
        )
    for name, value in report.get("ratios", {}).items():
        print(f"ratio {name}: {value}x")

    status = 0
    if args.check is not None:
        committed = json.loads(args.check.read_text())
        reference = committed["current"]["micro"]["total"]["events_per_cal"]
        measured = micro["events_per_cal"]
        floor = reference * (1.0 - MAX_REGRESSION)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"gate: measured {measured:.0f} events/cal-s vs committed "
            f"{reference:.0f} (floor {floor:.0f}): {verdict}"
        )
        if measured < floor:
            status = 1

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
