#!/usr/bin/env python
"""CI smoke test for parallel, cached table generation.

Round-trips ``cedar-repro tables`` three ways against a fresh cache
directory:

1. serial (``--jobs 1``, no cache) -- the reference output,
2. cold parallel (``--jobs 4 --cache-dir ...``) -- must be
   byte-identical to serial while populating the cache,
3. warm parallel (same command again) -- must be byte-identical *and*
   at least 5x faster than the cold pass, proving the cache skipped
   the simulations,
4. telemetered parallel (``--log campaign.jsonl``) -- the tables must
   still open the output byte-identically (telemetry appends its
   summary after them, never perturbs them) and the campaign log must
   be a valid ``cedar-repro/campaign-log/v1`` document whose header is
   tagged with the code fingerprint and whose cache-hit events cover
   every cell.

Exits non-zero on any mismatch.  The scale is kept small so the cold
pass stays in CI-friendly territory.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

from repro.obs.campaign import CAMPAIGN_LOG_SCHEMA, load_campaign_log
from repro.obs.hostclock import WallTimer

SCALE = "0.01"
SEED = "1994"
MIN_SPEEDUP = 5.0


def run_tables(extra: list[str]) -> tuple[str, float]:
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "tables",
        "--scale",
        SCALE,
        "--seed",
        SEED,
        *extra,
    ]
    with WallTimer() as wall:
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
    return out.stdout, wall.elapsed_s


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="cedar-cache-") as cache_dir:
        assert not any(Path(cache_dir).iterdir()), "cache dir must start empty"
        serial, serial_s = run_tables([])
        parallel_flags = ["--jobs", "4", "--cache-dir", cache_dir]
        cold, cold_s = run_tables(parallel_flags)
        warm, warm_s = run_tables(parallel_flags)
        log_path = Path(cache_dir) / "campaign.jsonl"
        telemetered, _ = run_tables([*parallel_flags, "--log", str(log_path)])
        header, events = load_campaign_log(log_path)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"parallel-smoke: serial {serial_s:.2f}s, cold --jobs 4 {cold_s:.2f}s, "
        f"warm {warm_s:.2f}s (speedup {speedup:.1f}x)"
    )
    cache_hit_events = sum(1 for e in events if e.get("ev") == "cache_hit")
    checks = [
        ("serial output is non-trivial", "Table 1" in serial),
        ("cold parallel output byte-identical to serial", cold == serial),
        ("warm cached output byte-identical to serial", warm == serial),
        (f"warm rerun >= {MIN_SPEEDUP:.0f}x faster than cold", speedup >= MIN_SPEEDUP),
        ("telemetered tables open byte-identically", telemetered.startswith(serial)),
        ("campaign summary follows the tables", "campaign" in telemetered),
        ("campaign log has the v1 schema", header.get("schema") == CAMPAIGN_LOG_SCHEMA),
        ("campaign log header is fingerprinted", bool(header.get("code_fingerprint"))),
        ("campaign log header carries the seed", header.get("seed") == int(SEED)),
        (
            "every cell answered from cache in the telemetered pass",
            cache_hit_events == header.get("n_cells"),
        ),
    ]
    failed = [name for name, ok in checks if not ok]
    for name in failed:
        print(f"FAILED check: {name}", file=sys.stderr)
    if not failed:
        print("parallel-smoke: all checks passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
