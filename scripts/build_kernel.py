#!/usr/bin/env python3
"""Build the compiled simulation kernel (``repro.sim._corefast``).

Compiles ``src/repro/sim/_corefast.c`` into an extension module placed
next to its source, where ``repro.sim.core`` discovers it at import.
The build is intentionally toolchain-light: one ``cc -O2 -shared
-fPIC`` invocation against the running interpreter's headers -- no
setuptools build isolation, no temporary build trees.

Exit codes:

* 0 -- built (or ``--check``: extension present and importable)
* 1 -- build failed
* 2 -- no C compiler available (callers treat this as "pure-Python
  mode", not an error; CI jobs that *require* the compiled kernel
  check for it explicitly with ``--check``)

The extension is optional by design: without it the kernel runs the
pure-Python ``_run_fast`` loop with identical results (see
``docs/benchmarking.md``).
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE = REPO / "src" / "repro" / "sim" / "_corefast.c"


def ext_path() -> Path:
    """Where the built extension lives (per-interpreter suffix)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return SOURCE.with_name(f"_corefast{suffix}")


def find_compiler() -> str | None:
    """The C compiler to use, or ``None`` if the box has none."""
    for cc in ("cc", "gcc", "clang"):
        if shutil.which(cc):
            return cc
    return None


def build(verbose: bool = False) -> int:
    """Compile the extension; returns a process exit code."""
    cc = find_compiler()
    if cc is None:
        print("build_kernel: no C compiler found; staying pure-Python")
        return 2
    include = sysconfig.get_path("include")
    out = ext_path()
    cmd = [
        cc,
        "-O2",
        "-fPIC",
        "-shared",
        "-fno-strict-aliasing",
        f"-I{include}",
        str(SOURCE),
        "-o",
        str(out),
    ]
    if verbose:
        print("build_kernel:", " ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print("build_kernel: compilation failed", file=sys.stderr)
        sys.stderr.write(proc.stderr)
        return 1
    print(f"build_kernel: built {out.name}")
    return 0


def check() -> int:
    """Verify the compiled loop is installed *and* active."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.sim import core

    if core.compiled_loop_active():
        print(f"build_kernel: compiled loop active (v{core.compiled_loop_version()})")
        return 0
    print("build_kernel: compiled loop NOT active", file=sys.stderr)
    return 1


def clean() -> int:
    """Remove any built extension (all interpreter suffixes)."""
    removed = False
    for path in SOURCE.parent.glob("_corefast*.so"):
        path.unlink()
        print(f"build_kernel: removed {path.name}")
        removed = True
    if not removed:
        print("build_kernel: nothing to clean")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the compiled loop imports and is active (no build)",
    )
    parser.add_argument(
        "--clean", action="store_true", help="remove built extensions"
    )
    parser.add_argument("--verbose", action="store_true", help="echo the cc command")
    args = parser.parse_args(argv)
    if args.clean:
        return clean()
    if args.check:
        return check()
    return build(verbose=args.verbose)


if __name__ == "__main__":
    raise SystemExit(main())
