"""Overhead guard for campaign telemetry on pooled sweeps.

:class:`~repro.obs.campaign.CampaignTelemetry` adds, per cell attempt:
two coordinator-side log writes, one :class:`~repro.obs.campaign.
CellSpan` constructed in the worker, and (when a registry rides along)
one metrics snapshot pickled back with the result.  None of that may
show up in the figures users wait for, so this benchmark asserts:

* a telemetry-on pooled sweep costs at most ``TOLERANCE`` more wall
  time than the identical telemetry-off sweep, and
* the telemetered pooled results are byte-identical to the serial
  reference (same Table 1 text, same schedule hashes) -- observation
  must never perturb the simulation.

Timing uses the ``test_obs_overhead.py`` discipline: interleaved
pairs, batch medians, and the gate passes if any of ``MAX_BATCHES``
batches lands within tolerance (host noise on shared machines reaches
a few percent per batch).
"""

from __future__ import annotations

import statistics
from time import perf_counter

from repro.core.experiments import table1
from repro.obs.campaign import CampaignTelemetry
from repro.parallel import parallel_sweep

#: Allowed telemetry-on wall-time regression per pooled sweep.
TOLERANCE = 0.05

#: Interleaved (off, on) sweep pairs per batch.
PAIRS_PER_BATCH = 3

#: Batches attempted before declaring a regression.
MAX_BATCHES = 3

#: Workload: long enough (~1 s per sweep) to amortise pool start-up.
APPS = ["FLO52"]
CONFIGS = (1, 4)
SCALE = 0.01
SEED = 1994
JOBS = 2


def _sweep_s(telemetry: CampaignTelemetry | None) -> float:
    begin = perf_counter()
    outcome = parallel_sweep(
        APPS,
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=JOBS,
        telemetry=telemetry,
    )
    wall = perf_counter() - begin
    assert outcome.ok
    return wall


def _batch_ratio(tmp_path_factory) -> float:
    """Median telemetry-on / telemetry-off wall ratio of one batch."""
    ratios = []
    for pair in range(PAIRS_PER_BATCH):
        off = _sweep_s(None)
        log = tmp_path_factory.mktemp("campaign-log") / f"pair{pair}.jsonl"
        on = _sweep_s(CampaignTelemetry(log_path=log, progress=False))
        ratios.append(on / off)
    return statistics.median(ratios)


def test_telemetry_on_pooled_sweep_within_tolerance(tmp_path_factory):
    threshold = 1.0 + TOLERANCE
    medians = []
    for _ in range(MAX_BATCHES):
        median = _batch_ratio(tmp_path_factory)
        medians.append(median)
        if median <= threshold:
            return
    raise AssertionError(
        f"telemetry-on pooled sweep costs {min(medians):.3f}x the "
        f"telemetry-off sweep in the best of {MAX_BATCHES} batches "
        f"(allowed {threshold:.3f}x). All medians: "
        + ", ".join(f"{m:.3f}" for m in medians)
    )


def test_telemetered_pooled_tables_byte_identical_to_serial(tmp_path):
    serial = parallel_sweep(APPS, configs=CONFIGS, scale=SCALE, seed=SEED, jobs=1)
    telemetry = CampaignTelemetry(
        log_path=tmp_path / "campaign.jsonl", progress=False
    )
    pooled = parallel_sweep(
        APPS,
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=JOBS,
        telemetry=telemetry,
    )
    assert serial.ok and pooled.ok
    assert table1(pooled.results)[1] == table1(serial.results)[1]
    for app in APPS:
        for n_proc in CONFIGS:
            a = serial.results[app][n_proc]
            b = pooled.results[app][n_proc]
            assert b.ct_ns == a.ct_ns
            assert b.schedule_hash == a.schedule_hash
    # The campaign saw exactly the simulated cells, none cached.
    report = telemetry.report()
    assert report["cells"]["total"] == len(APPS) * len(CONFIGS)
    assert report["cells"]["simulated"] == len(APPS) * len(CONFIGS)
    assert report["cache"]["hits"] == 0
