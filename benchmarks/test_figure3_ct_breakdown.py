"""Benchmark regenerating Figure 3: completion-time breakdowns.

Shape targets from Section 5: OS overhead is 3-4 % of CT on one
processor and grows to 5-21 % on 32; system time is the largest OS
component, interrupts next; kernel-lock spin stays under 1 %.
"""

from repro.apps import ocean
from repro.core import ct_breakdown, run_application
from repro.core.experiments import figure3
from repro.xylem.categories import TimeCategory


def _os_fraction(result, cluster_id=0):
    b = ct_breakdown(result, cluster_id)
    os_ns = (
        b[TimeCategory.SYSTEM] + b[TimeCategory.INTERRUPT] + b[TimeCategory.KSPIN]
    )
    return os_ns / result.ct_ns


def test_figure3_ct_breakdown(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(ocean(), 8, scale=0.01), rounds=1, iterations=1
    )
    rows, text = figure3(sweep)
    print("\n" + text)

    for app, by_config in sweep.items():
        # Breakdown identity: user + system + interrupt + spin == CT.
        for n_proc, result in by_config.items():
            b = ct_breakdown(result, 0)
            assert sum(b.values()) == result.ct_ns
        # OS overhead small on one processor...
        assert _os_fraction(by_config[1]) < 0.08, app
        # ...and a notable but bounded share on the full machine.
        os32 = _os_fraction(by_config[32])
        assert 0.02 < os32 < 0.25, f"{app}@32p OS fraction {os32:.1%}"
        # System time dominates interrupts; spin is negligible.
        b32 = ct_breakdown(by_config[32], 0)
        assert b32[TimeCategory.SYSTEM] > b32[TimeCategory.INTERRUPT] * 0.8
        assert b32[TimeCategory.KSPIN] < 0.01 * by_config[32].ct_ns
        # User time is always the dominant mode.
        assert b32[TimeCategory.USER] > 0.6 * by_config[32].ct_ns
