"""Ablation: flat XDOALL vs hierarchical SDOALL/CDOALL distribution.

Section 6 finds the xdoall distribution overhead reaches ~10 % of CT
because every CE test&sets a global-memory lock per iteration, while
sdoall distribution (one requester per cluster + CC-bus inner dispatch)
costs under 1 %.  The trade-off reverses the other way for *imbalanced*
work, where xdoall's fine self-scheduling wins.  Both effects are
checked here on the same synthetic workload.
"""

from repro.apps import synthetic_app
from repro.core import run_application, user_breakdown
from repro.runtime import LoopConstruct


def run_with(construct: LoopConstruct, iter_time_ns: int, work_skew: float):
    app = synthetic_app(
        construct=construct,
        n_steps=2,
        loops_per_step=3,
        n_outer=8,
        n_inner=64,
        iter_time_ns=iter_time_ns,
        mem_fraction=0.25,
        serial_fraction_of_step=0.03,
    )
    app.loops_per_step = [
        type(s)(**{**s.__dict__, "work_skew": work_skew}) for s in app.loops_per_step
    ]
    result = run_application(app, 32, scale=1.0)
    return result, user_breakdown(result, 0)


def test_fine_grain_favours_sdoall(benchmark):
    """At 300 us iterations the xdoall lock serialises distribution."""
    sdo, sdo_b = benchmark.pedantic(
        lambda: run_with(LoopConstruct.SDOALL, 300_000, 0.0), rounds=1, iterations=1
    )
    xdo, xdo_b = run_with(LoopConstruct.XDOALL, 300_000, 0.0)
    print(
        f"\nfine grain: sdoall CT {sdo.ct_ns/1e6:.1f} ms "
        f"(pickup {sdo_b.fraction(sdo_b.pickup_sdoall_ns):.2%}), "
        f"xdoall CT {xdo.ct_ns/1e6:.1f} ms "
        f"(pickup {xdo_b.fraction(xdo_b.pickup_xdoall_ns):.2%})"
    )
    assert sdo.ct_ns < xdo.ct_ns
    assert xdo_b.fraction(xdo_b.pickup_xdoall_ns) > sdo_b.fraction(
        sdo_b.pickup_sdoall_ns
    )


def test_skewed_work_favours_xdoall(benchmark):
    """With heavily skewed coarse iterations, xdoall self-balances
    while sdoall's chunked clusters idle at the barrier."""
    sdo, sdo_b = benchmark.pedantic(
        lambda: run_with(LoopConstruct.SDOALL, 8_000_000, 0.8),
        rounds=1,
        iterations=1,
    )
    xdo, xdo_b = run_with(LoopConstruct.XDOALL, 8_000_000, 0.8)
    print(
        f"\nskewed: sdoall CT {sdo.ct_ns/1e6:.1f} ms "
        f"(barrier {sdo_b.fraction(sdo_b.barrier_ns):.2%}), "
        f"xdoall CT {xdo.ct_ns/1e6:.1f} ms"
    )
    assert xdo.ct_ns < sdo.ct_ns
    assert sdo_b.fraction(sdo_b.barrier_ns) > 0.01
