"""Ablation: merging adjacent parallel loops (Section 6's proposal).

The paper: "we could identify and merge several parallel loops in a row
that do not have dependencies among them ... transforming a series of
multicluster barriers into a single multicluster barrier" -- part of
the manual optimisation that doubled FLO52's performance.  This bench
applies :func:`merge_adjacent_loops` to a FLO52-like loop series and
measures the barrier-wait reduction on the 4-cluster machine.
"""

from repro.core import run_phases, user_breakdown
from repro.runtime import LoopConstruct, ParallelLoop, SerialPhase, merge_adjacent_loops


def flo52_like_step():
    """A step of small, imbalanced, memory-heavy SDOALL loops."""
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL,
        n_outer=5,
        n_inner=14,
        work_ns_per_iter=3_000_000,
        mem_words_per_iter=12_000,
        mem_rate=0.6,
        work_skew=0.5,
    )
    return [loop] * 6 + [SerialPhase(work_ns=2_000_000)]


def test_ablation_loop_merging(benchmark):
    phases = flo52_like_step() * 4
    plain = benchmark.pedantic(
        lambda: run_phases(phases, 32, app_name="flo52-like"), rounds=1, iterations=1
    )
    fused = run_phases(merge_adjacent_loops(phases), 32, app_name="flo52-fused")

    plain_b = user_breakdown(plain, 0)
    fused_b = user_breakdown(fused, 0)
    print(
        f"\nplain: CT {plain.ct_ns/1e6:7.1f} ms, "
        f"barrier {plain_b.fraction(plain_b.barrier_ns):.1%}"
    )
    print(
        f"fused: CT {fused.ct_ns/1e6:7.1f} ms, "
        f"barrier {fused_b.fraction(fused_b.barrier_ns):.1%}"
    )

    # Merging strictly reduces completion time and barrier-wait share.
    assert fused.ct_ns < plain.ct_ns
    assert fused_b.barrier_ns < plain_b.barrier_ns
    # The win is substantial for this barrier-bound workload (the paper
    # reports ~2x with merging plus other manual optimisations).
    assert fused.ct_ns < plain.ct_ns * 0.95
