"""Ablation: analytic contention model vs packet-level simulation.

Application-scale runs price memory bursts with the closed-form model;
this bench quantifies its agreement with the packet-level network and
reports the speed gap that justifies the substitution.
"""

import time

from repro.hardware import CedarConfig, ContentionModel, GlobalMemorySystem
from repro.sim import Simulator


def packet_time(n_ces: int, n_words: int) -> tuple[float, float]:
    """(mean stream ns, wall seconds) at packet level."""
    start = time.perf_counter()
    sim = Simulator()
    memory = GlobalMemorySystem(sim, CedarConfig())
    times = []

    def stream(ce):
        elapsed = yield sim.process(
            memory.vector_access(ce, base_address=ce * 8192, n_words=n_words)
        )
        times.append(elapsed)

    procs = [sim.process(stream(ce)) for ce in range(n_ces)]
    sim.run(until=sim.all_of(procs))
    return sum(times) / len(times), time.perf_counter() - start


def analytic_time(n_ces: int, n_words: int) -> tuple[float, float]:
    start = time.perf_counter()
    config = CedarConfig()
    model = ContentionModel(config)
    cycles = model.vector_time_cycles(
        n_words,
        requesters=n_ces,
        rate=1.0,
        cluster_requesters=min(n_ces, config.ces_per_cluster),
    )
    return cycles * config.cycle_ns, time.perf_counter() - start


def test_ablation_contention_models(benchmark):
    benchmark.pedantic(lambda: packet_time(16, 96), rounds=1, iterations=1)
    print("\n  CEs | packet ns | analytic ns | ratio | packet wall / analytic wall")
    for n_ces in (1, 2, 4, 8, 16):
        p_ns, p_wall = packet_time(n_ces, 96)
        a_ns, a_wall = analytic_time(n_ces, 96)
        speedup = p_wall / max(a_wall, 1e-9)
        print(
            f"  {n_ces:3d} | {p_ns:9.0f} | {a_ns:11.0f} | "
            f"{a_ns / p_ns:5.2f} | {speedup:8.0f}x"
        )
        # Factor-level agreement everywhere.
        assert 0.3 < a_ns / p_ns < 3.0
    # The analytic model must be orders of magnitude cheaper.
    _, p_wall = packet_time(16, 96)
    _, a_wall = analytic_time(16, 96)
    assert a_wall * 50 < p_wall
