"""Ablation: was clustering a good idea? (Section 6's question.)

The paper argues that with 32 *independent* processors instead of 4
clusters of 8, every loop barrier would synchronise 32 tasks instead of
4 and every processor would hit the global memory for work
distribution, so clustering wins.  We rebuild the same machine as 32
one-CE "clusters" (every CE is its own task: all distribution through
global memory, 32-way barriers) and compare against the real 4x8
organisation on the same workload.
"""

from repro.apps import synthetic_app
from repro.core import run_phases, user_breakdown
from repro.hardware import CedarConfig
from repro.runtime import LoopConstruct, RuntimeParams


def run_organisation(n_clusters: int, ces_per_cluster: int, rt_params=None):
    app = synthetic_app(
        construct=LoopConstruct.SDOALL,
        n_steps=3,
        loops_per_step=4,
        n_outer=max(8, 2 * n_clusters),
        n_inner=32 * 8 // max(8, 2 * n_clusters),
        iter_time_ns=3_000_000,
        mem_fraction=0.3,
        serial_fraction_of_step=0.05,
    )
    config = CedarConfig(n_clusters=n_clusters, ces_per_cluster=ces_per_cluster)
    result = run_phases(
        app.phases(1.0),
        n_processors=32,
        app_name=app.name,
        config=config,
        rt_params=rt_params,
    )
    main = user_breakdown(result, 0)
    return result, main


def test_ablation_clustering(benchmark):
    clustered, clustered_main = benchmark.pedantic(
        lambda: run_organisation(4, 8), rounds=1, iterations=1
    )
    flat, flat_main = run_organisation(32, 1)
    # The paper: "special mechanisms such as ... software combining
    # tree approach would be needed" for a flat machine -- try it.
    combined, combined_main = run_organisation(
        32, 1, rt_params=RuntimeParams(barrier_fanout=2)
    )

    print(
        f"\nclustered 4x8:      CT {clustered.ct_ns / 1e6:.1f} ms, "
        f"main overhead {clustered_main.overhead_fraction:.1%}"
    )
    print(
        f"flat     32x1:      CT {flat.ct_ns / 1e6:.1f} ms, "
        f"main overhead {flat_main.overhead_fraction:.1%}"
    )
    print(
        f"flat     32x1+tree: CT {combined.ct_ns / 1e6:.1f} ms, "
        f"main overhead {combined_main.overhead_fraction:.1%}"
    )

    # Clustering wins on completion time for the same 32 CEs.
    assert clustered.ct_ns < flat.ct_ns
    # The flat organisation pays more parallelization overhead: 32-way
    # barriers and per-CE global-memory work distribution.
    assert flat_main.overhead_fraction > clustered_main.overhead_fraction
    # The combining tree repairs the flat machine's barrier hot spot
    # (it never does worse than the central counter), but clustering
    # remains at least as good: its work distribution avoids global
    # memory entirely.
    assert combined.ct_ns <= flat.ct_ns * 1.01
    assert clustered.ct_ns <= combined.ct_ns * 1.02
