"""Fixtures for the ablation benchmarks (no shared sweep needed)."""
