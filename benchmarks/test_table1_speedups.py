"""Benchmark regenerating Table 1: CTs, speedups, average concurrency.

Asserts the *shape* of the paper's results -- who scales, who
saturates, speedup below concurrency -- not absolute seconds (our
substrate is a simulator, not the authors' testbed).
"""

from repro.apps import flo52
from repro.core import reference, run_application
from repro.core.experiments import table1
from repro.core.speedup import speedup_table


def test_table1_speedups(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(flo52(), 32, scale=0.01), rounds=1, iterations=1
    )
    rows, text = table1(sweep)
    print("\n" + text)

    per_app = {app: speedup_table(by_config) for app, by_config in sweep.items()}

    for app, rows_ in per_app.items():
        speedups = {r.n_processors: r.speedup for r in rows_}
        concurr = {r.n_processors: r.concurrency for r in rows_}
        # Speedup grows monotonically with processors.
        ordered = [speedups[n] for n in (1, 4, 8, 16, 32)]
        assert ordered == sorted(ordered), f"{app} speedup not monotone: {ordered}"
        # The paper's key Section-3 observation: achieved speedups are
        # lower than the average concurrency (active processors spend
        # part of their time on overhead activities).  5% slack covers
        # statfx sampling noise on near-ideal scalers.
        for n in (4, 8, 16, 32):
            assert speedups[n] <= concurr[n] * 1.05, (
                f"{app} at {n} procs: speedup {speedups[n]:.2f} exceeds "
                f"concurrency {concurr[n]:.2f}"
            )

    # Who wins / who saturates at 32 processors.
    s32 = {app: {r.n_processors: r.speedup for r in rows_}[32] for app, rows_ in per_app.items()}
    assert max(s32, key=s32.get) == "MDG", f"MDG should scale best, got {s32}"
    assert min(s32, key=s32.get) in ("ADM", "FLO52"), f"ADM/FLO52 scale worst, got {s32}"
    assert s32["MDG"] > 20.0
    assert s32["ADM"] < 14.0
    # ADM saturates between 16 and 32 processors (paper: 8.52 -> 8.84).
    adm = {r.n_processors: r.speedup for r in per_app["ADM"]}
    assert adm[32] / adm[16] < 1.35

    # Completion times land within a factor of the paper's measurements.
    for app, by_config in sweep.items():
        for n_proc, result in by_config.items():
            paper_ct = reference.TABLE1[app][n_proc][0]
            ratio = result.ct_seconds / paper_ct
            assert 0.5 < ratio < 2.0, (
                f"{app}@{n_proc}p CT {result.ct_seconds:.0f}s vs paper "
                f"{paper_ct:.0f}s (ratio {ratio:.2f})"
            )
