"""Benchmark regenerating Table 3: average parallel-loop concurrency.

Shape targets: MDG's big evenly-divisible loops keep per-cluster
parallel concurrency near 8; OCEAN's and ADM's limited trip counts /
xdoall pickup dead time pull it down on four clusters relative to two;
FLO52's small inner loops sit in between.
"""

from repro.apps import mdg
from repro.core import parallel_loop_concurrency, run_application
from repro.core.experiments import table3


def test_table3_par_concurrency(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(mdg(), 16, scale=0.01), rounds=1, iterations=1
    )
    rows, text = table3(sweep)
    print("\n" + text)

    par = {
        app: {
            n: [
                parallel_loop_concurrency(result, t)
                for t in range(result.config.n_clusters)
            ]
            for n, result in by_config.items()
            if n > 1
        }
        for app, by_config in sweep.items()
    }

    # Physical bounds.
    for app, by_config in par.items():
        for n, values in by_config.items():
            for v in values:
                assert 1.0 <= v <= 8.0 + 1e-9, f"{app}@{n}: par_concurr {v}"

    # MDG stays near the full cluster width everywhere (paper: >= 7.6;
    # the 4-processor configuration's cluster has only 4 CEs).
    for n, values in par["MDG"].items():
        width = sweep["MDG"][n].config.ces_per_cluster
        assert min(values) > 0.88 * width, f"MDG@{n}p par_concurr {values}"

    # OCEAN and ADM lose parallel concurrency from 2 to 4 clusters
    # (paper: ~7.5 down to ~5.6-5.9).  ADM's drop is large (xdoall lock
    # saturation); OCEAN's is directional but smaller than the paper's
    # (see EXPERIMENTS.md).
    for app, min_drop in (("OCEAN", 0.12), ("ADM", 1.0)):
        mean16 = sum(par[app][16]) / len(par[app][16])
        mean32 = sum(par[app][32]) / len(par[app][32])
        assert mean32 < mean16 - min_drop, (
            f"{app}: expected concurrency drop 16->32, got {mean16:.2f} -> {mean32:.2f}"
        )

    # FLO52's small trip counts keep it clearly below MDG at 32 procs.
    flo32 = sum(par["FLO52"][32]) / 4
    mdg32 = sum(par["MDG"][32]) / 4
    assert flo32 < mdg32 - 0.5
