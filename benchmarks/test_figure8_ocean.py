"""Benchmark regenerating Figure 8: user-time breakdown of OCEAN.

OCEAN's flat loops have limited trip counts: on four clusters the CEs
run out of iterations, so speedup flattens while waits grow.
"""

from repro.apps import ocean
from repro.core import run_application

from figure_common import check_user_breakdown_invariants, print_figure


def test_figure8_ocean(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(ocean(), 32, scale=0.01), rounds=1, iterations=1
    )
    by_config = sweep["OCEAN"]
    print_figure("OCEAN", by_config)
    b = check_user_breakdown_invariants("OCEAN", by_config)

    b32 = b[(32, 0)]
    # Mixed constructs present.
    assert b32.iter_sdoall_ns > 0
    assert b32.iter_xdoall_ns > 0
    assert b32.mc_loop_ns > 0
    # Main task overhead noticeable at 32 but below FLO52-like extremes.
    assert 0.02 < b32.overhead_fraction < 0.35
