"""Overhead guard for the observability layer.

The instrumentation added for ``repro.obs`` comes in two tiers:

* always-on ledger counters (memory ledger, runtime stats, network
  high-water marks) -- plain integer adds on paths that already do
  arithmetic, plus one ``is None`` check per kernel event;
* opt-in kernel sinks (profiler, kernel trace) -- only dispatched when
  a sink is registered on the simulator.

This benchmark asserts the first tier costs at most 5 % on the
reference workload (flo52 on 32 processors), against a baseline
recorded on the pre-instrumentation tree.  Raw wall time is not
portable across machines, so the compared quantity is
``run_seconds / calibration_seconds`` with a pure-Python calibration
loop timed immediately before each run, and the *median* ratio of a
batch of pairs is used so bursty host-CPU speed (frequency scaling,
noisy neighbours) cancels.  Host noise on shared machines still
reaches a few percent per batch median, so the gate passes if any of
up to ``MAX_BATCHES`` batches lands within tolerance.

The baseline constant was recorded by running this exact procedure on
a checkout of the pre-instrumentation tree (commit 4ac0092, flo52/32
at scale 0.05: batch medians 2.307 and 2.235 -> baseline 2.27).
"""

from __future__ import annotations

import statistics
from time import perf_counter

from repro.apps import flo52
from repro.core import run_application
from repro.obs import Observability

#: Median (calibration, run) pair ratio on the pre-instrumentation
#: tree, measured with this file's procedure.
BASELINE_RATIO = 2.27

#: Allowed regression for the always-on tier.
TOLERANCE = 0.05

#: Interleaved measurement pairs per batch.
PAIRS_PER_BATCH = 5

#: Batches attempted before declaring a regression.
MAX_BATCHES = 3

#: Workload scale: long enough runs (~0.5 s) to amortise timer noise.
SCALE = 0.05


def _calibration_s() -> float:
    begin = perf_counter()
    total = 0
    for i in range(6_000_000):
        total += i & 7
    return perf_counter() - begin


def _run_s(**kwargs) -> float:
    begin = perf_counter()
    run_application(flo52(), 32, scale=SCALE, **kwargs)
    return perf_counter() - begin


def _batch_median(**kwargs) -> float:
    ratios = []
    for _ in range(PAIRS_PER_BATCH):
        cal = _calibration_s()
        ratios.append(_run_s(**kwargs) / cal)
    return statistics.median(ratios)


def test_no_sink_run_within_5pct_of_baseline():
    threshold = BASELINE_RATIO * (1 + TOLERANCE)
    medians = []
    for _ in range(MAX_BATCHES):
        median = _batch_median()
        medians.append(median)
        if median <= threshold:
            return
    raise AssertionError(
        f"no-sink run costs {min(medians):.3f}x the calibration loop in the "
        f"best of {MAX_BATCHES} batches; baseline was {BASELINE_RATIO:.3f}x "
        f"(+{TOLERANCE:.0%} allowed). All medians: "
        + ", ".join(f"{m:.3f}" for m in medians)
    )


def test_metrics_only_observability_adds_nothing_to_the_loop():
    """A metrics-only Observability registers no sink, so the event
    loop must run exactly the no-sink code path; collection happens
    once, after the run."""
    obs = Observability()
    assert obs.sink is None
    plain = _batch_median()
    observed = _batch_median(obs=Observability())
    # Identical code path; allow generous noise either way.
    assert observed <= plain * 1.15


def test_profiling_sink_overhead_is_bounded():
    """The opt-in profiler may cost real time (a perf_counter pair per
    callback) but must stay within 2x -- it is a profiler, not a
    tracer dumping per-event records."""
    plain = _batch_median()
    profiled = _batch_median(obs=Observability(profile=True))
    assert profiled <= plain * 2.0
