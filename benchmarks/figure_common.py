"""Shared helpers for the Figures 5-9 user-time-breakdown benchmarks."""

from __future__ import annotations

from repro.core import user_breakdown
from repro.core.experiments import figure_user_breakdown

__all__ = ["check_user_breakdown_invariants", "print_figure"]


def print_figure(app: str, by_config) -> None:
    """Render the figure's table to the benchmark log."""
    rows, text = figure_user_breakdown(app, by_config)
    print("\n" + text)


def check_user_breakdown_invariants(app: str, by_config) -> dict:
    """Invariants every application's user-time breakdown satisfies.

    Returns the 32-processor breakdowns for app-specific assertions.
    """
    breakdowns = {}
    for n_proc, result in sorted(by_config.items()):
        for task_id in range(result.config.n_clusters):
            b = user_breakdown(result, task_id)
            breakdowns[(n_proc, task_id)] = b
            # Components are a partition-like decomposition: they never
            # exceed the task's wall time by more than rounding noise.
            total = b.useful_ns + b.overhead_ns
            assert total <= b.wall_ns * 1.02, (
                f"{app}@{n_proc}p task {task_id}: components sum to "
                f"{total / b.wall_ns:.2f}x wall time"
            )
            if task_id == 0:
                # Only helper tasks busy-wait for work.
                assert b.helper_wait_ns == 0.0
            else:
                # Helpers run no serial code or main cluster-only loops.
                assert b.serial_ns == 0.0
                assert b.mc_loop_ns == 0.0

    # Parallelization overhead of the main task grows with clusters
    # (the paper's central Section-6 result).
    main_ovhd = {n: breakdowns[(n, 0)].overhead_fraction for n, t in breakdowns if t == 0}
    assert main_ovhd[32] > main_ovhd[4], (
        f"{app}: main-task overhead should grow with clusters, got {main_ovhd}"
    )
    return breakdowns
