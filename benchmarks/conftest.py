"""Shared fixtures for the benchmark harness.

The full five-application, five-configuration sweep is expensive, so it
runs once per session through :func:`repro.parallel.parallel_sweep`:
cells fan out across worker processes (``CEDAR_REPRO_JOBS``, default:
the machine's core count, capped at 4) and land in the shared
content-addressed result cache (``CEDAR_REPRO_CACHE``, default
``.cedar-cache``) -- so a second benchmark session, or a ``cedar-repro
tables --cache-dir .cedar-cache`` run, skips the simulation entirely.
Every table/figure benchmark reads from the cached sweep; the per-test
``benchmark`` fixture then times one representative simulation so
``pytest-benchmark`` reports a meaningful cost for each experiment.
"""

from __future__ import annotations

import os

import pytest

from repro.core import reference
from repro.parallel import default_cache_dir, parallel_sweep

#: Workload scale used by the benchmark sweep: a compromise between
#: runtime and the statistical weight of rare OS events.
BENCH_SCALE = 0.02

#: Seed of the benchmark sweep (the paper-reproduction default).
BENCH_SEED = 1994


def _bench_jobs() -> int:
    override = os.environ.get("CEDAR_REPRO_JOBS")
    if override:
        return max(1, int(override))
    return min(4, os.cpu_count() or 1)


@pytest.fixture(scope="session")
def sweep():
    """All five applications on all five configurations (cached)."""
    outcome = parallel_sweep(
        reference.APPS,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        jobs=_bench_jobs(),
        cache_dir=default_cache_dir(),
    )
    assert outcome.ok, f"benchmark sweep failed: {outcome.failures}"
    return outcome.results


@pytest.fixture(scope="session")
def sweep32(sweep):
    """The 32-processor runs only, keyed by application."""
    return {app: by_config[32] for app, by_config in sweep.items()}
