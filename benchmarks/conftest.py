"""Shared fixtures for the benchmark harness.

The full five-application, five-configuration sweep is expensive, so it
runs once per session and every table/figure benchmark reads from it.
The per-test ``benchmark`` fixture then times one representative
simulation so ``pytest-benchmark`` reports a meaningful cost for each
experiment.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import sweep_all

#: Workload scale used by the benchmark sweep: a compromise between
#: runtime and the statistical weight of rare OS events.
BENCH_SCALE = 0.02


@pytest.fixture(scope="session")
def sweep():
    """All five applications on all five configurations."""
    return sweep_all(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def sweep32(sweep):
    """The 32-processor runs only, keyed by application."""
    return {app: by_config[32] for app, by_config in sweep.items()}
