"""Benchmark regenerating Figure 9: user-time breakdown of ADM.

ADM is the pure-XDOALL code: the dominating overhead is the iteration
pickup through the global-memory lock, which is what saturates its
speedup between 16 and 32 processors (Section 6's xdoall discussion).
"""

from repro.apps import adm
from repro.core import run_application

from figure_common import check_user_breakdown_invariants, print_figure


def test_figure9_adm(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(adm(), 32, scale=0.01), rounds=1, iterations=1
    )
    by_config = sweep["ADM"]
    print_figure("ADM", by_config)
    b = check_user_breakdown_invariants("ADM", by_config)

    b32 = b[(32, 0)]
    # Pure XDOALL: no sdoall iterations at all.
    assert b32.iter_sdoall_ns == 0.0
    # The xdoall pickup share is the big overhead and grows with CEs
    # (paper: the distribution overhead reaches ~10% of CT).
    pick32 = b32.fraction(b32.pickup_xdoall_ns)
    b8 = b[(8, 0)]
    pick8 = b8.fraction(b8.pickup_xdoall_ns)
    assert pick32 > 0.04, f"ADM@32p pickup share {pick32:.1%}"
    assert pick32 > pick8, f"pickup should grow: {pick8:.1%} -> {pick32:.1%}"
