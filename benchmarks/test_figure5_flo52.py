"""Benchmark regenerating Figure 5: user-time breakdown of FLO52.

FLO52 is the pure-SDOALL code: its parallelization overhead is barrier
wait (imbalanced small loops) plus helper busy-wait; there is no xdoall
pickup component at all.
"""

from repro.apps import flo52
from repro.core import run_application

from figure_common import check_user_breakdown_invariants, print_figure


def test_figure5_flo52(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(flo52(), 32, scale=0.01), rounds=1, iterations=1
    )
    by_config = sweep["FLO52"]
    print_figure("FLO52", by_config)
    b = check_user_breakdown_invariants("FLO52", by_config)

    b32 = b[(32, 0)]
    # No XDOALL anywhere in FLO52.
    assert b32.iter_xdoall_ns == 0.0
    assert b32.pickup_xdoall_ns == 0.0
    # Substantial barrier wait on the 4-cluster machine (paper: 7-16%).
    barrier32 = b32.fraction(b32.barrier_ns)
    assert barrier32 > 0.03, f"barrier wait only {barrier32:.1%}"
    # Barrier wait grows with clusters.
    b16 = b[(16, 0)]
    assert b32.fraction(b32.barrier_ns) >= b16.fraction(b16.barrier_ns) * 0.8
    # Helpers spend a large share of their time waiting for work
    # (serial code + barrier time of the main task; paper: up to 34%).
    h32 = b[(32, 1)]
    wait = h32.fraction(h32.helper_wait_ns)
    assert 0.15 < wait < 0.75, f"helper wait {wait:.1%}"
