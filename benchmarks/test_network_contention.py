"""Packet-level network/memory microbenchmarks (Section 7's mechanism).

Exercises the two-stage shuffle-exchange network and the interleaved
memory directly: per-CE stream time grows with the number of streaming
CEs, and hot-spot traffic collapses throughput (Pfister/Norton, cited
in the paper's clustering discussion).
"""

from repro.hardware import CedarConfig, ContentionModel, GlobalMemorySystem
from repro.sim import Simulator


def stream_all(n_ces: int, n_words: int = 64) -> int:
    sim = Simulator()
    memory = GlobalMemorySystem(sim, CedarConfig())
    procs = [
        sim.process(memory.vector_access(ce, base_address=ce * 4096, n_words=n_words))
        for ce in range(n_ces)
    ]
    sim.run(until=sim.all_of(procs))
    return sim.now


def hot_spot_all(n_ces: int, n_requests: int = 64) -> int:
    sim = Simulator()
    config = CedarConfig()
    memory = GlobalMemorySystem(sim, config)

    def hammer(ce):
        last = None
        for _ in range(n_requests):
            last = memory.request(ce, address=0)  # module 0 for everyone
            yield sim.timeout(4 * config.cycle_ns)
        yield last

    procs = [sim.process(hammer(ce)) for ce in range(n_ces)]
    sim.run(until=sim.all_of(procs))
    return sim.now


def test_stream_contention_grows(benchmark):
    times = {n: stream_all(n) for n in (1, 4, 16)}
    benchmark.pedantic(lambda: stream_all(32), rounds=1, iterations=1)
    times[32] = stream_all(32)
    print("\nper-batch stream completion:", {n: f"{t/1000:.1f}us" for n, t in times.items()})
    assert times[4] >= times[1]
    assert times[16] > times[1]
    assert times[32] > times[16]
    # Far from linear collapse: the interleaved banks and two networks
    # provide real parallelism.
    assert times[32] < times[1] * 32


def test_hot_spot_tree_saturation(benchmark):
    uniform = stream_all(16, n_words=64)
    hot = benchmark.pedantic(lambda: hot_spot_all(16, 64), rounds=1, iterations=1)
    hot = hot_spot_all(16, 64)
    print(f"\nuniform {uniform/1000:.1f}us vs hot-spot {hot/1000:.1f}us")
    # All requests to one 4-cycle module serialise: hot >> uniform.
    assert hot > uniform * 2


def test_analytic_hot_spot_collapse(benchmark):
    model = ContentionModel(CedarConfig())
    bw = benchmark.pedantic(
        lambda: {f: model.hot_spot_bandwidth(32, 0.5, f) for f in (0.0, 0.05, 0.2)},
        rounds=1,
        iterations=1,
    )
    assert bw[0.05] < bw[0.0]
    assert bw[0.2] < bw[0.05]
    # Hardware message combining (the Pfister/Norton remedy) restores
    # the lost bandwidth.
    for f in (0.05, 0.2):
        assert model.hot_spot_bandwidth(32, 0.5, f, combining=True) > bw[f]
