"""Benchmark checking the Section 5-7 narrative bands across all apps.

The abstract's headline numbers: OS overhead 5-21 % of CT on the
4-cluster Cedar (3-4 % on one processor), parallelization overhead
10-25 % for the main task and 15-44 % for helpers, contention 8-21 %,
and all overheads together 30-50 % of completion time for the various
applications.  We assert tolerantly widened bands.
"""

from repro.apps import adm
from repro.core import contention_overhead, ct_breakdown, run_application, user_breakdown
from repro.xylem.categories import TimeCategory


def test_section6_narrative(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(adm(), 4, scale=0.01), rounds=1, iterations=1
    )

    os_fracs, main_ovhds, helper_ovhds, contentions, combined = [], [], [], [], []
    for app, by_config in sweep.items():
        r32 = by_config[32]
        b = ct_breakdown(r32, 0)
        os_frac = (
            b[TimeCategory.SYSTEM] + b[TimeCategory.INTERRUPT] + b[TimeCategory.KSPIN]
        ) / r32.ct_ns
        os_fracs.append(os_frac)
        main = user_breakdown(r32, 0)
        main_ovhds.append(main.overhead_fraction)
        helpers = [user_breakdown(r32, t).overhead_fraction for t in (1, 2, 3)]
        helper_ovhds.append(max(helpers))
        ov = contention_overhead(r32, by_config[1]).ov_cont_pct / 100.0
        contentions.append(ov)
        combined.append(os_frac + main.overhead_fraction + max(0.0, ov))

    # OS overheads: noticeable on every code at 32 procs, bounded.
    assert all(0.02 <= f <= 0.25 for f in os_fracs), os_fracs
    # Main-task parallelization overhead reaches the paper's band for
    # at least some codes and never explodes.
    assert max(main_ovhds) > 0.08, main_ovhds
    assert all(f < 0.40 for f in main_ovhds), main_ovhds
    # Helper overheads exceed main overheads (they include the waits).
    assert max(helper_ovhds) > max(main_ovhds), (helper_ovhds, main_ovhds)
    assert max(helper_ovhds) > 0.15, helper_ovhds
    # Contention lands in a sensible band on the full machine.
    assert all(0.03 < c < 0.35 for c in contentions), contentions
    # All overheads together are a large chunk of completion time
    # (paper: 30-50 %); widened to 20-70 %.
    assert any(0.20 < c < 0.70 for c in combined), combined
