"""Benchmark regenerating Table 2: detailed OS overheads, 4-cluster Cedar.

Shape targets from Section 5: CPIs, context switching, page faults and
cluster critical sections together dominate the OS overhead (>90 % in
the paper); kernel-lock spin is negligible; global syscalls and ASTs
are the smallest categories.
"""

from repro.apps import arc2d
from repro.core import run_application
from repro.core.experiments import table2
from repro.xylem.categories import OsActivity, TimeCategory


def test_table2_os_overheads(benchmark, sweep32):
    benchmark.pedantic(
        lambda: run_application(arc2d(), 32, scale=0.01), rounds=1, iterations=1
    )
    rows, text = table2(sweep32)
    print("\n" + text)

    dominant = {
        OsActivity.CPI,
        OsActivity.CTX,
        OsActivity.PGFLT_CONCURRENT,
        OsActivity.PGFLT_SEQUENTIAL,
        OsActivity.CRSECT_CLUSTER,
    }
    for app, result in sweep32.items():
        totals = {a: result.accounting.activity_total_ns(a) for a in OsActivity}
        os_total = sum(totals.values())
        assert os_total > 0
        # The dominant categories account for the bulk of OS overhead.
        share = sum(totals[a] for a in dominant) / os_total
        assert share > 0.80, f"{app}: dominant categories only {share:.0%}"
        # Individually, each activity is a small part of CT (Table 2:
        # every entry is below 5 % of completion time).
        for activity, ns in totals.items():
            assert result.fraction_of_ct(ns) < 0.08, (
                f"{app}: {activity.value} is {result.fraction_of_ct(ns):.1%} of CT"
            )
        # Global syscalls and ASTs are the smallest categories.
        assert totals[OsActivity.SYSCALL_GLOBAL] < totals[OsActivity.CPI]
        assert totals[OsActivity.AST] < totals[OsActivity.CPI]
        # Kernel lock contention is negligible (< 1 % of CT).
        kspin = sum(
            result.accounting.category_ns(c, TimeCategory.KSPIN)
            for c in range(result.config.n_clusters)
        )
        assert result.fraction_of_ct(kspin) < 0.01, f"{app}: kspin too high"
