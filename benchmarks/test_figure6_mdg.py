"""Benchmark regenerating Figure 6: user-time breakdown of MDG.

MDG is the well-behaved code: big, evenly-dividing loops keep every
overhead component small, which is why it speeds up almost linearly.
"""

from repro.apps import mdg
from repro.core import run_application

from figure_common import check_user_breakdown_invariants, print_figure


def test_figure6_mdg(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(mdg(), 8, scale=0.01), rounds=1, iterations=1
    )
    by_config = sweep["MDG"]
    print_figure("MDG", by_config)
    b = check_user_breakdown_invariants("MDG", by_config)

    b32 = b[(32, 0)]
    # Main-task parallelization overhead stays small.
    assert b32.overhead_fraction < 0.15, f"MDG overhead {b32.overhead_fraction:.1%}"
    # Iteration execution dominates the bar.
    iters = b32.fraction(b32.iter_sdoall_ns + b32.iter_xdoall_ns)
    assert iters > 0.55, f"MDG@32p iteration share {iters:.1%}"
    # Helpers barely wait: almost no serial code to idle through.
    h32 = b[(32, 1)]
    assert h32.fraction(h32.helper_wait_ns) < 0.25
