"""Benchmark regenerating Table 4: global memory / network contention.

Shape targets from Section 7: the contention overhead is substantial on
multiprocessor configurations, generally grows with processor count,
exceeds ~7 % of CT for every code on the full 32-processor Cedar, and
is largest for the memory-heavy FLO52.
"""

from repro.apps import flo52
from repro.core import contention_overhead, run_application
from repro.core.experiments import table4


def test_table4_contention(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(flo52(), 16, scale=0.01), rounds=1, iterations=1
    )
    rows, text = table4(sweep)
    print("\n" + text)

    ov = {}
    for app, by_config in sweep.items():
        base = by_config[1]
        ov[app] = {
            n: contention_overhead(result, base).ov_cont_pct
            for n, result in by_config.items()
            if n > 1
        }

    # Contention is a real, positive overhead on the full machine.
    for app, by_config in ov.items():
        assert by_config[32] > 4.0, f"{app}@32p contention {by_config[32]:.1f}%"
        assert by_config[32] < 35.0, f"{app}@32p contention {by_config[32]:.1f}%"

    # It grows from small to large configurations for the codes the
    # paper shows monotone growth for.
    for app in ("ARC2D", "MDG", "ADM"):
        assert ov[app][32] > ov[app][4], (
            f"{app}: contention should grow 4->32 procs, got {ov[app]}"
        )

    # FLO52 is among the most contention-bound codes at 32 processors
    # (strictly the worst in the paper; the model keeps it within a
    # whisker of the top).
    worst = max(ov[a][32] for a in ov)
    assert ov["FLO52"][32] > 0.85 * worst, (
        f"FLO52 should be near-worst at 32p: {ov}"
    )

    # MDG is nearly contention-free on a few processors (paper: 1.3 %).
    assert ov["MDG"][4] < 6.0
