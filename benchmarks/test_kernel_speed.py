"""Speed guards for the kernel fast paths (PR: fast-path the kernel).

Three claims, each asserted in the cheapest form that would actually
catch a regression:

* **Event pooling works** -- a long direct-delay chain re-arms one
  Timeout carrier in place instead of allocating per tick, and pooled
  carriers are reused across processes.  Pure counter assertions:
  deterministic, no timing.
* **Batched vector transactions collapse the event count** -- one
  batched 64-word stream schedules an order of magnitude fewer kernel
  events than the exact per-packet path it replaces.  Counted with a
  :class:`~repro.analyze.DeterminismSink`, so the figure is exact.
* **The kernel clears a conservative normalised floor** -- the timeout
  chain must process at least ``3x`` the pre-fast-path baseline's
  events per *calibration second* (the ``test_obs_overhead.py``
  yardstick).  The committed figure is ~11x, so the 3x floor only
  trips on a real regression, not host noise; the batch-retry idiom
  absorbs bursty CI hosts.

``scripts/bench_kernel.py`` measures the same three layers in full and
writes ``BENCH_kernel.json``; this file is the fast tier-1 guard.
"""

from __future__ import annotations

from time import perf_counter

from repro.analyze import DeterminismSink
from repro.hardware.config import paper_configuration
from repro.hardware.memory import GlobalMemorySystem
from repro.sim import Simulator

#: Pre-fast-path chain throughput (events per calibration second),
#: recorded with ``scripts/bench_kernel.py`` on the seed tree.
PRE_FASTPATH_CHAIN_EVENTS_PER_CAL = 235_000

#: The PR's kernel target, asserted as a floor.
REQUIRED_SPEEDUP = 3.0

#: Batches attempted before declaring a regression (host-noise armour).
MAX_BATCHES = 3

CHAIN_ITERATIONS = 200_000


def _calibration_s() -> float:
    begin = perf_counter()
    total = 0
    for i in range(6_000_000):
        total += i & 7
    return perf_counter() - begin


def _chain(sim: Simulator, iterations: int):
    for _ in range(iterations):
        yield 1


# -- event pooling -----------------------------------------------------------


def test_direct_delay_chain_rearms_instead_of_allocating():
    sim = Simulator()
    sim.process(_chain(sim, 10_000), name="chain")
    sim.run()
    assert sim.ticks_rearmed >= 9_999
    # At most the initial carrier is ever allocated for the chain.
    assert sim.timeouts_created <= 1


def test_pool_recycles_across_processes():
    sim = Simulator()

    def one_shot(sim):
        yield 5

    def spawner(sim):
        for _ in range(50):
            yield sim.process(one_shot(sim), name="shot")

    sim.process(spawner(sim), name="spawner")
    sim.run()
    # Each one-shot needs a carrier; the pool must feed most of them.
    assert sim.timeouts_reused >= 40
    assert sim.timeouts_created <= 10


# -- batched vector transactions ---------------------------------------------


def _count_vector_events(batched: bool) -> int:
    sink = DeterminismSink()
    sim = Simulator(trace_sink=sink)
    memory = GlobalMemorySystem(sim, paper_configuration(32))
    if not batched:
        memory.fastpath.disable()

    def run(sim):
        elapsed = yield from memory.vector_access(0, 0, 64)
        assert elapsed > 0

    sim.process(run(sim), name="vector")
    sim.run()
    if batched:
        assert memory.fastpath.stats.batched_transactions == 1
    else:
        assert memory.fastpath.stats.exact_transactions == 1
    return sink.events_processed


def test_batched_vector_schedules_far_fewer_events():
    batched = _count_vector_events(batched=True)
    exact = _count_vector_events(batched=False)
    # One milestone event per hop stage vs ~10 events per word.
    assert batched * 5 <= exact, (batched, exact)


# -- normalised throughput floor ---------------------------------------------


def test_chain_throughput_clears_3x_pre_fastpath_floor():
    floor = PRE_FASTPATH_CHAIN_EVENTS_PER_CAL * REQUIRED_SPEEDUP
    measured = []
    for _ in range(MAX_BATCHES):
        cal = _calibration_s()
        sim = Simulator()
        sim.process(_chain(sim, CHAIN_ITERATIONS), name="chain")
        begin = perf_counter()
        sim.run()
        wall = perf_counter() - begin
        events_per_cal = (CHAIN_ITERATIONS + 2) / (wall / cal)
        measured.append(events_per_cal)
        if events_per_cal >= floor:
            return
    raise AssertionError(
        f"chain ran at {max(measured):.0f} events/cal-s in the best of "
        f"{MAX_BATCHES} batches; the fast-path floor is {floor:.0f} "
        f"({REQUIRED_SPEEDUP}x the pre-fast-path {PRE_FASTPATH_CHAIN_EVENTS_PER_CAL})"
    )
