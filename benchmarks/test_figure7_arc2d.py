"""Benchmark regenerating Figure 7: user-time breakdown of ARC2D.

ARC2D mixes both constructs: its xdoall pickup share is visible but
moderate, and the overall overhead sits between FLO52 and MDG.
"""

from repro.apps import arc2d
from repro.core import run_application

from figure_common import check_user_breakdown_invariants, print_figure


def test_figure7_arc2d(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_application(arc2d(), 32, scale=0.01), rounds=1, iterations=1
    )
    by_config = sweep["ARC2D"]
    print_figure("ARC2D", by_config)
    b = check_user_breakdown_invariants("ARC2D", by_config)

    b32 = b[(32, 0)]
    # Both constructs execute iterations.
    assert b32.iter_sdoall_ns > 0
    assert b32.iter_xdoall_ns > 0
    # The xdoall pickup overhead is present and grows with processors.
    b8 = b[(8, 0)]
    assert b32.fraction(b32.pickup_xdoall_ns) >= b8.fraction(b8.pickup_xdoall_ns)
    # Overall main-task overhead within the paper's 10-25% band at 32p
    # (tolerantly widened).
    assert 0.02 < b32.overhead_fraction < 0.35
