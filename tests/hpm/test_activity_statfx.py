"""Unit tests for the activity board and the statfx sampler."""

import pytest

from repro.hardware import paper_configuration
from repro.hpm import ActivityBoard, Statfx
from repro.sim import Simulator


def make_board(n_proc=32):
    sim = Simulator()
    return sim, ActivityBoard(sim, paper_configuration(n_proc))


def test_board_starts_idle():
    _, board = make_board()
    assert board.active_total() == 0
    assert not board.is_active(0)


def test_set_active_and_idle():
    sim, board = make_board()
    board.set_active(3)
    assert board.is_active(3)
    assert board.active_total() == 1
    board.set_idle(3)
    assert not board.is_active(3)


def test_double_set_active_is_idempotent():
    sim, board = make_board()
    board.set_active(0)
    board.set_active(0)
    assert board.active_total() == 1


def test_active_in_cluster_counts_only_that_cluster():
    _, board = make_board(32)
    board.set_active(0)   # cluster 0
    board.set_active(9)   # cluster 1
    board.set_active(10)  # cluster 1
    assert board.active_in_cluster(0) == 1
    assert board.active_in_cluster(1) == 2
    assert board.active_in_cluster(2) == 0


def test_busy_time_accumulates():
    sim, board = make_board()

    def proc(sim):
        board.set_active(0)
        yield sim.timeout(100)
        board.set_idle(0)
        yield sim.timeout(50)
        board.set_active(0)
        yield sim.timeout(25)
        board.set_idle(0)

    sim.process(proc(sim))
    sim.run()
    assert board.busy_ns(0) == 125


def test_busy_time_includes_open_interval():
    sim, board = make_board()

    def proc(sim):
        board.set_active(0)
        yield sim.timeout(60)

    sim.process(proc(sim))
    sim.run()
    assert board.busy_ns(0) == 60


def test_mean_concurrency_exact():
    sim, board = make_board(8)

    def proc(sim):
        board.set_active(0)
        board.set_active(1)
        yield sim.timeout(100)  # 2 active for half the run
        board.set_idle(1)
        yield sim.timeout(100)  # 1 active for the other half

    sim.process(proc(sim))
    sim.run()
    assert board.mean_concurrency() == pytest.approx(1.5)


def test_mean_concurrency_zero_at_start():
    _, board = make_board()
    assert board.mean_concurrency() == 0.0


def test_statfx_sampling_converges_to_mean():
    sim, board = make_board(8)
    statfx = Statfx(sim, board, interval_ns=10)
    statfx.start()

    def proc(sim):
        board.set_active(0)
        board.set_active(1)
        yield sim.timeout(1000)
        board.set_idle(1)
        yield sim.timeout(1000)
        board.set_idle(0)

    sim.process(proc(sim))
    sim.run(until=2001)
    assert statfx.cluster_concurrency(0) == pytest.approx(1.5, rel=0.05)
    assert statfx.total_concurrency() == pytest.approx(1.5, rel=0.05)


def test_statfx_total_sums_clusters():
    sim, board = make_board(32)
    statfx = Statfx(sim, board, interval_ns=10)
    statfx.start()

    def proc(sim):
        board.set_active(0)    # cluster 0
        board.set_active(8)    # cluster 1
        board.set_active(16)   # cluster 2
        yield sim.timeout(500)

    sim.process(proc(sim))
    sim.run(until=501)
    assert statfx.total_concurrency() == pytest.approx(3.0, rel=0.05)


def test_statfx_before_samples_is_zero():
    sim, board = make_board(8)
    statfx = Statfx(sim, board)
    assert statfx.cluster_concurrency(0) == 0.0


def test_statfx_interval_validation():
    sim, board = make_board(8)
    with pytest.raises(ValueError):
        Statfx(sim, board, interval_ns=0)


def test_statfx_start_idempotent():
    sim, board = make_board(8)
    statfx = Statfx(sim, board, interval_ns=10)
    statfx.start()
    first = statfx._process
    statfx.start()
    assert statfx._process is first
