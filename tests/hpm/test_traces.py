"""Unit tests for trace persistence and summaries."""

from repro.hpm import EventType, TraceEvent, load_trace, save_trace, trace_summary


def make_events():
    return [
        TraceEvent(EventType.LOOP_POST, 100, 0, 0, (1, "sdoall", "sweep")),
        TraceEvent(EventType.HELPER_JOIN, 150, 8, 1, (1, "sdoall", "sweep")),
        TraceEvent(EventType.ITER_START, 200, 8, 1, (1, "sdoall", "sweep", 4)),
        TraceEvent(EventType.ITER_END, 400, 8, 1, (1, "sdoall", "sweep", 4)),
    ]


def test_save_load_round_trip(tmp_path):
    events = make_events()
    path = tmp_path / "trace.jsonl"
    count = save_trace(events, path)
    assert count == 4
    loaded = load_trace(path)
    assert loaded == events


def test_round_trip_preserves_tuple_payloads(tmp_path):
    events = make_events()
    path = tmp_path / "trace.jsonl"
    save_trace(events, path)
    loaded = load_trace(path)
    assert loaded[0].payload == (1, "sdoall", "sweep")
    assert isinstance(loaded[0].payload, tuple)


def test_round_trip_none_payload(tmp_path):
    events = [TraceEvent(EventType.PROGRAM_START, 0, 0)]
    path = tmp_path / "t.jsonl"
    save_trace(events, path)
    [event] = load_trace(path)
    assert event.payload is None
    assert event.task_id == -1


def test_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert save_trace([], path) == 0
    assert load_trace(path) == []


def test_summary_counts():
    summary = trace_summary(make_events())
    assert summary["events"] == 4
    assert summary["span_ns"] == 300
    assert summary["by_type"]["ITER_START"] == 1
    assert summary["by_processor"][8] == 3


def test_summary_empty():
    summary = trace_summary([])
    assert summary["events"] == 0
    assert summary["span_ns"] == 0


def test_round_trip_from_real_run(tmp_path):
    from repro.apps import synthetic_app
    from repro.core import run_application

    app = synthetic_app(n_steps=1, loops_per_step=1, n_outer=4, n_inner=8)
    result = run_application(app, 8, scale=1.0)
    path = tmp_path / "run.jsonl"
    save_trace(result.events, path)
    assert load_trace(path) == result.events
