"""Unit tests for the cedarhpm trace monitor and event vocabulary."""

import pytest

from repro.hpm import OS_EVENTS, RTL_EVENTS, CedarHpm, EventType, TraceEvent
from repro.sim import Simulator


def test_event_vocabulary_partition():
    """Every event is either an RTL or an OS event, never both."""
    assert RTL_EVENTS | OS_EVENTS == frozenset(EventType)
    assert not (RTL_EVENTS & OS_EVENTS)
    assert EventType.LOOP_POST in RTL_EVENTS
    assert EventType.SYSCALL_ENTER in OS_EVENTS


def test_record_quantises_to_50ns():
    sim = Simulator()
    hpm = CedarHpm(sim)

    def proc(sim):
        yield sim.timeout(1234)
        hpm.record(EventType.LOOP_POST, processor_id=3)

    sim.process(proc(sim))
    sim.run()
    [event] = hpm.offload()
    assert event.timestamp_ns == 1200
    assert event.processor_id == 3
    assert event.event_type == EventType.LOOP_POST


def test_record_costs_no_simulated_time():
    sim = Simulator()
    hpm = CedarHpm(sim)
    hpm.record(EventType.ITER_START, 0)
    assert sim.now == 0


def test_resolution_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CedarHpm(sim, resolution_ns=0)


def test_buffer_capacity_drops_overflow():
    sim = Simulator()
    hpm = CedarHpm(sim, buffer_capacity=2)
    assert hpm.record(EventType.ITER_START, 0) is not None
    assert hpm.record(EventType.ITER_END, 0) is not None
    assert hpm.record(EventType.ITER_START, 1) is None
    assert len(hpm) == 2
    assert hpm.dropped == 1


def test_events_of_filters_types():
    sim = Simulator()
    hpm = CedarHpm(sim)
    hpm.record(EventType.ITER_START, 0)
    hpm.record(EventType.ITER_END, 0)
    hpm.record(EventType.ITER_START, 1)
    starts = list(hpm.events_of(EventType.ITER_START))
    assert len(starts) == 2
    assert all(e.event_type == EventType.ITER_START for e in starts)


def test_events_on_filters_processor():
    sim = Simulator()
    hpm = CedarHpm(sim)
    hpm.record(EventType.ITER_START, 0)
    hpm.record(EventType.ITER_START, 5)
    assert len(list(hpm.events_on(5))) == 1


def test_events_for_task_filters_task():
    sim = Simulator()
    hpm = CedarHpm(sim)
    hpm.record(EventType.LOOP_POST, 0, task_id=0)
    hpm.record(EventType.HELPER_JOIN, 8, task_id=1)
    assert len(list(hpm.events_for_task(1))) == 1


def test_subscribe_sees_events():
    sim = Simulator()
    hpm = CedarHpm(sim)
    seen = []
    hpm.subscribe(seen.append)
    hpm.record(EventType.BARRIER_ENTER, 2)
    assert len(seen) == 1
    assert seen[0].event_type == EventType.BARRIER_ENTER


def test_clear_resets_buffer():
    sim = Simulator()
    hpm = CedarHpm(sim, buffer_capacity=1)
    hpm.record(EventType.ITER_START, 0)
    hpm.record(EventType.ITER_START, 0)  # dropped
    hpm.clear()
    assert len(hpm) == 0
    assert hpm.dropped == 0


def test_trace_event_equality():
    a = TraceEvent(EventType.ITER_START, 100, 0, 1, None)
    b = TraceEvent(EventType.ITER_START, 100, 0, 1, None)
    c = TraceEvent(EventType.ITER_END, 100, 0, 1, None)
    assert a == b
    assert a != c
    assert a.__eq__(42) is NotImplemented
