"""Unit tests for the Cedar machine configuration."""

import pytest

from repro.hardware import PAPER_PROCESSOR_COUNTS, CedarConfig, paper_configuration


def test_default_is_full_cedar():
    config = CedarConfig()
    assert config.n_clusters == 4
    assert config.ces_per_cluster == 8
    assert config.n_processors == 32
    assert config.n_memory_modules == 32


def test_paper_configurations_cluster_layout():
    """1/4/8 procs use one cluster; 16 two; 32 four (Table 1 footnote)."""
    expected = {1: (1, 1), 4: (1, 4), 8: (1, 8), 16: (2, 8), 32: (4, 8)}
    for n_proc, (n_clusters, ces) in expected.items():
        config = paper_configuration(n_proc)
        assert config.n_clusters == n_clusters
        assert config.ces_per_cluster == ces
        assert config.n_processors == n_proc


def test_paper_configuration_rejects_unknown_count():
    with pytest.raises(ValueError):
        paper_configuration(12)


def test_all_paper_configs_share_memory_and_network():
    """Same network and global memory across configs (Section 3.2)."""
    latencies = set()
    for n in PAPER_PROCESSOR_COUNTS:
        config = paper_configuration(n)
        assert config.n_memory_modules == 32
        latencies.add(config.min_memory_round_trip_cycles)
    assert len(latencies) == 1


def test_with_processors_rejects_partial_clusters():
    with pytest.raises(ValueError):
        CedarConfig().with_processors(12)


def test_with_processors_rejects_nonpositive():
    with pytest.raises(ValueError):
        CedarConfig().with_processors(0)


def test_module_interleaving_is_double_word():
    config = CedarConfig()
    assert config.module_for_address(0) == 0
    assert config.module_for_address(7) == 0
    assert config.module_for_address(8) == 1
    assert config.module_for_address(8 * 32) == 0


def test_cycle_time_conversions_round_trip():
    config = CedarConfig()
    assert config.cycles_to_ns(1) == 170
    assert config.ns_to_cycles(340) == 2.0
    assert config.seconds_to_ns(1.5) == 1_500_000_000


def test_network_stage_count_is_two_for_cedar():
    config = CedarConfig()
    assert config._network_stages() == 2


def test_min_round_trip_composition():
    config = CedarConfig()
    expected = 2 * config.gi_cycles + 2 * 2 * config.link_cycles + config.memory_service_cycles
    assert config.min_memory_round_trip_cycles == expected


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        CedarConfig(n_clusters=0)
    with pytest.raises(ValueError):
        CedarConfig(ces_per_cluster=0)
    with pytest.raises(ValueError):
        CedarConfig(n_memory_modules=-1)
    with pytest.raises(ValueError):
        CedarConfig(switch_radix=1)
    with pytest.raises(ValueError):
        CedarConfig(cycle_ns=0)


def test_config_is_frozen():
    config = CedarConfig()
    with pytest.raises(Exception):
        config.n_clusters = 2  # type: ignore[misc]
