"""Unit and property tests for the analytic contention model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import CedarConfig, ContentionModel, LoadTracker
from repro.sim import Simulator


@pytest.fixture
def model():
    return ContentionModel(CedarConfig())


def test_no_requesters_means_min_latency(model):
    est = model.estimate(0, 0.5)
    assert est.round_trip_cycles == model.config.min_memory_round_trip_cycles
    assert est.bottleneck_utilisation == 0.0


def test_zero_rate_means_min_latency(model):
    est = model.estimate(8, 0.0)
    assert est.round_trip_cycles == model.config.min_memory_round_trip_cycles


def test_single_requester_low_rate_near_min(model):
    est = model.estimate(1, 0.05)
    assert est.round_trip_cycles < model.config.min_memory_round_trip_cycles * 1.2
    assert not est.throttled


def test_latency_grows_with_requesters(model):
    previous = 0.0
    for k in (1, 4, 8, 16, 32):
        est = model.estimate(k, 0.3)
        assert est.round_trip_cycles >= previous
        previous = est.round_trip_cycles


def test_saturation_throttles_throughput(model):
    """32 CEs at full rate exceed bank bandwidth: 32 > 32/4 = 8 req/cyc."""
    est = model.estimate(32, 1.0)
    assert est.throttled
    assert est.achieved_rate < 1.0
    # Aggregate achieved rate cannot exceed bank capacity m/s = 8.
    assert est.achieved_rate * 32 <= 8.0 / ContentionModel.MAX_UTILISATION + 1e-6


def test_unsaturated_traffic_not_throttled(model):
    est = model.estimate(4, 0.2)
    assert not est.throttled


def test_vector_time_monotone_in_words(model):
    t8 = model.vector_time_cycles(8, 4, 0.3)
    t64 = model.vector_time_cycles(64, 4, 0.3)
    assert t64 > t8


def test_vector_time_rejects_nonpositive(model):
    with pytest.raises(ValueError):
        model.vector_time_cycles(0, 4, 0.3)


def test_slowdown_at_one_requester_is_unity(model):
    assert model.slowdown(64, 1, 0.3) == pytest.approx(1.0)


def test_slowdown_grows_with_requesters(model):
    s8 = model.slowdown(64, 8, 0.5)
    s32 = model.slowdown(64, 32, 0.5)
    assert s32 > s8 > 1.0


def test_hot_spot_collapses_bandwidth(model):
    """Pfister/Norton: a small hot fraction caps total bandwidth near
    the single hot bank's capacity."""
    uniform = model.hot_spot_bandwidth(32, 0.5, hot_fraction=0.0)
    hot = model.hot_spot_bandwidth(32, 0.5, hot_fraction=0.10)
    assert hot < uniform
    # With 10% hot traffic the hot bank (capacity 1/4 req/cyc) caps
    # total bandwidth around (1/4)/0.10 = 2.5 req/cyc.
    assert hot <= 2.5 / ContentionModel.MAX_UTILISATION + 1e-6


def test_estimate_validates_arguments(model):
    with pytest.raises(ValueError):
        model.estimate(-1, 0.5)
    with pytest.raises(ValueError):
        model.estimate(1, -0.1)
    with pytest.raises(ValueError):
        model.estimate(1, 0.5, hot_fraction=1.5)


@given(
    k=st.integers(min_value=1, max_value=32),
    rate=st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=200, deadline=None)
def test_estimate_invariants(k, rate):
    """Achieved <= offered; latency >= min; utilisation capped."""
    model = ContentionModel(CedarConfig())
    est = model.estimate(k, rate)
    assert est.achieved_rate <= rate + 1e-12
    assert est.round_trip_cycles >= model.config.min_memory_round_trip_cycles
    assert est.bottleneck_utilisation <= ContentionModel.MAX_UTILISATION + 1e-9


@given(
    k1=st.integers(min_value=1, max_value=31),
    rate=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_latency_monotone_in_load(k1, rate):
    """Below saturation latency grows with load; once throttled the
    achieved per-CE rate decreases instead."""
    model = ContentionModel(CedarConfig())
    a = model.estimate(k1, rate)
    b = model.estimate(k1 + 1, rate)
    if not a.throttled and not b.throttled:
        assert b.round_trip_cycles >= a.round_trip_cycles - 1e-9
    else:
        assert b.achieved_rate <= a.achieved_rate + 1e-9


def test_load_tracker_counts():
    sim = Simulator()
    tracker = LoadTracker(sim)
    assert tracker.active == 0
    tracker.enter()
    tracker.enter()
    assert tracker.active == 2
    tracker.exit()
    assert tracker.active == 1


def test_load_tracker_underflow_rejected():
    sim = Simulator()
    tracker = LoadTracker(sim)
    with pytest.raises(ValueError):
        tracker.exit()


def test_load_tracker_time_weighted_mean():
    sim = Simulator()
    tracker = LoadTracker(sim)

    def proc(sim):
        tracker.enter()  # 1 active during [0, 100)
        yield sim.timeout(100)
        tracker.enter()  # 2 active during [100, 200)
        yield sim.timeout(100)
        tracker.exit()
        tracker.exit()

    sim.process(proc(sim))
    sim.run()
    assert tracker.time_weighted_mean() == pytest.approx(1.5)


def test_load_tracker_mean_zero_at_time_zero():
    sim = Simulator()
    tracker = LoadTracker(sim)
    assert tracker.time_weighted_mean() == 0.0
