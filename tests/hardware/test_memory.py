"""Unit tests for the packet-level global memory system."""

import pytest

from repro.hardware import CedarConfig, GlobalMemorySystem
from repro.sim import Simulator


def make_memory(**config_kwargs):
    sim = Simulator()
    config = CedarConfig(**config_kwargs)
    return sim, GlobalMemorySystem(sim, config)


def test_single_request_min_latency():
    sim, gm = make_memory()
    done = gm.request(ce_id=0, address=0)
    sim.run(until=done)
    assert sim.now == gm.min_round_trip_ns
    assert gm.stats.completions == 1


def test_min_round_trip_matches_config():
    sim, gm = make_memory()
    assert gm.min_round_trip_ns == gm.config.cycles_to_ns(
        gm.config.min_memory_round_trip_cycles
    )


def test_requests_to_same_module_serialise():
    sim, gm = make_memory()
    d1 = gm.request(0, address=0)
    d2 = gm.request(1, address=8 * 32)  # same module 0
    sim.run(until=sim.all_of([d1, d2]))
    assert sim.now > gm.min_round_trip_ns


def test_requests_to_different_modules_from_different_groups_overlap():
    sim, gm = make_memory()
    d1 = gm.request(0, address=0)        # module 0
    d2 = gm.request(8, address=9 * 8)    # module 9, different stage-0 switch
    sim.run(until=sim.all_of([d1, d2]))
    assert sim.now == gm.min_round_trip_ns


def test_vector_access_pipelines():
    """A 16-word stream takes far less than 16 serial round trips."""
    sim, gm = make_memory()
    proc = sim.process(gm.vector_access(0, base_address=0, n_words=16))
    elapsed = sim.run(until=proc)
    assert elapsed < 16 * gm.min_round_trip_ns
    assert elapsed >= gm.min_round_trip_ns
    assert gm.stats.completions == 16


def test_vector_access_rejects_nonpositive():
    sim, gm = make_memory()
    with pytest.raises(ValueError):
        list(gm.vector_access(0, 0, 0))


def test_mean_round_trip_tracked():
    sim, gm = make_memory()
    done = gm.request(0, 0)
    sim.run(until=done)
    assert gm.stats.mean_round_trip_ns == gm.min_round_trip_ns


def test_contention_grows_with_streaming_ces():
    """More streaming CEs -> longer per-CE stream time (the paper's
    contention mechanism)."""

    def stream_time(n_ces):
        sim, gm = make_memory()
        procs = [
            sim.process(gm.vector_access(ce, base_address=ce * 1024, n_words=32))
            for ce in range(n_ces)
        ]
        sim.run(until=sim.all_of(procs))
        return sim.now

    alone = stream_time(1)
    crowd = stream_time(16)
    assert crowd > alone * 1.5


def test_module_for_address_delegates_to_config():
    sim, gm = make_memory()
    assert gm.module_for_address(16) == gm.config.module_for_address(16)
