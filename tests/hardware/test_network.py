"""Unit and property tests for the packet-level delta network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.network import DeltaNetwork, Packet
from repro.sim import Simulator


def make_network(n_in=32, n_out=32, **kwargs):
    sim = Simulator()
    net = DeltaNetwork(sim, n_inputs=n_in, n_outputs=n_out, **kwargs)
    return sim, net


def test_cedar_network_has_two_stages():
    _, net = make_network()
    assert net.n_stages == 2


def test_single_crossbar_when_small():
    _, net = make_network(n_in=8, n_out=8)
    assert net.n_stages == 1


def test_route_reaches_destination():
    _, net = make_network()
    # Final hop key must identify the destination uniquely.
    for dest in range(32):
        hops = net.route(0, dest)
        stage, switch, port = hops[-1]
        assert switch * net._fanouts[-1] + port == dest


def test_route_unique_path_per_pair():
    _, net = make_network()
    assert net.route(5, 17) == net.route(5, 17)


def test_route_stage0_switch_groups_inputs():
    _, net = make_network()
    assert net.route(0, 0)[0][1] == 0
    assert net.route(7, 0)[0][1] == 0
    assert net.route(8, 0)[0][1] == 1
    assert net.route(31, 0)[0][1] == 3


def test_route_rejects_out_of_range():
    _, net = make_network()
    with pytest.raises(ValueError):
        net.route(-1, 0)
    with pytest.raises(ValueError):
        net.route(0, 32)


@given(source=st.integers(0, 31), dest=st.integers(0, 31))
@settings(max_examples=200, deadline=None)
def test_route_properties(source, dest):
    """Every (source, dest) pair has a valid 2-hop digit route."""
    _, net = make_network()
    hops = net.route(source, dest)
    assert len(hops) == 2
    for k, (stage, switch, port) in enumerate(hops):
        assert stage == k
        assert 0 <= port < net._fanouts[k]
    # Same stage-0 switch for inputs in the same group of 8.
    assert hops[0][1] == source // 8
    # Delivered output index equals dest.
    stage, switch, port = hops[-1]
    assert switch * net._fanouts[-1] + port == dest


@given(dests=st.lists(st.integers(0, 31), min_size=1, max_size=16))
@settings(max_examples=50, deadline=None)
def test_distinct_sources_to_distinct_dests_no_shared_final_hop(dests):
    """Packets to different outputs never share the final output port."""
    _, net = make_network()
    finals = [net.route(0, d)[-1] for d in set(dests)]
    assert len(set(finals)) == len(set(dests))


def test_uncontended_traversal_latency():
    sim, net = make_network()
    packet = Packet(source=0, dest=31)
    proc = sim.process(net.traverse(packet))
    sim.run(until=proc)
    assert packet.latency_ns == net.min_latency_ns()
    assert net.stats.packets_delivered == 1


def test_contended_port_serialises_packets():
    """Two packets to the same destination share ports and serialise."""
    sim, net = make_network()
    p1 = Packet(source=0, dest=5)
    p2 = Packet(source=1, dest=5)
    procs = [sim.process(net.traverse(p)) for p in (p1, p2)]
    sim.run(until=sim.all_of(procs))
    latencies = sorted([p1.latency_ns, p2.latency_ns])
    assert latencies[0] == net.min_latency_ns()
    assert latencies[1] > net.min_latency_ns()


def test_disjoint_paths_do_not_interfere():
    """Packets from different switch groups to different outputs fly free."""
    sim, net = make_network()
    p1 = Packet(source=0, dest=0)
    p2 = Packet(source=8, dest=31)
    procs = [sim.process(net.traverse(p)) for p in (p1, p2)]
    sim.run(until=sim.all_of(procs))
    assert p1.latency_ns == net.min_latency_ns()
    assert p2.latency_ns == net.min_latency_ns()


def test_stats_accumulate():
    # Destinations 0, 4, 8, 12 use distinct stage-0 ports (dest // 4)
    # and distinct stage-1 switches, so the four paths are disjoint.
    sim, net = make_network()
    packets = [Packet(source=i, dest=4 * i) for i in range(4)]
    procs = [sim.process(net.traverse(p)) for p in packets]
    sim.run(until=sim.all_of(procs))
    assert net.stats.packets_injected == 4
    assert net.stats.packets_delivered == 4
    assert net.stats.mean_latency_ns == net.min_latency_ns()


def test_hot_spot_queueing_grows_latency():
    """Many senders to one destination queue up (tree saturation seed)."""
    sim, net = make_network()
    packets = [Packet(source=i, dest=0) for i in range(16)]
    procs = [sim.process(net.traverse(p)) for p in packets]
    sim.run(until=sim.all_of(procs))
    worst = max(p.latency_ns for p in packets)
    # 16 packets through one final port of 2 cycles each: the last one
    # waits for most of the others.
    assert worst >= 10 * net.link_cycles * net.cycle_ns


def test_invalid_construction_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        DeltaNetwork(sim, n_inputs=0, n_outputs=8)
    with pytest.raises(ValueError):
        DeltaNetwork(sim, n_inputs=8, n_outputs=8, radix=1)


def test_packet_latency_before_delivery_raises():
    packet = Packet(source=0, dest=1)
    with pytest.raises(ValueError):
        _ = packet.latency_ns


@given(
    perm_seed=st.integers(0, 2**31),
)
@settings(max_examples=20, deadline=None)
def test_identity_like_permutations_complete(perm_seed):
    """A random permutation of 32 packets is delivered exactly once
    each, regardless of path conflicts."""
    import random

    rng = random.Random(perm_seed)
    dests = list(range(32))
    rng.shuffle(dests)
    sim, net = make_network()
    packets = [Packet(source=i, dest=dests[i]) for i in range(32)]
    procs = [sim.process(net.traverse(p)) for p in packets]
    sim.run(until=sim.all_of(procs))
    assert net.stats.packets_delivered == 32
    assert sorted(p.dest for p in packets) == list(range(32))
    for p in packets:
        assert p.latency_ns >= net.min_latency_ns()
