"""Unit and property tests for the cluster cache / TLB models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import (
    CacheConfig,
    ClusterCacheModel,
    SetAssociativeCache,
    StreamingMissModel,
)


def small_config(**kwargs):
    defaults = dict(capacity_bytes=1024, line_bytes=32, associativity=4)
    defaults.update(kwargs)
    return CacheConfig(**defaults)


def test_config_defaults_are_fx8():
    config = CacheConfig()
    assert config.capacity_bytes == 512 * 1024
    assert config.n_lines == 16384
    assert config.n_sets == 4096


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(capacity_bytes=0)
    with pytest.raises(ValueError):
        CacheConfig(capacity_bytes=100, line_bytes=32)  # not whole lines
    with pytest.raises(ValueError):
        CacheConfig(associativity=0)
    with pytest.raises(ValueError):
        CacheConfig(capacity_bytes=96, line_bytes=32, associativity=2)


def test_cold_miss_then_hit():
    cache = SetAssociativeCache(small_config())
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.access(31)  # same line
    assert not cache.access(32)  # next line
    assert cache.hits == 2
    assert cache.misses == 2


def test_lru_eviction_within_set():
    # 1 KB, 32 B lines, 4-way: 8 sets; addresses 256 bytes apart share
    # a set.
    cache = SetAssociativeCache(small_config())
    stride = 256
    for i in range(5):  # fill 4 ways then evict the oldest
        cache.access(i * stride)
    assert not cache.access(0)  # evicted: miss again
    assert cache.access(4 * stride)  # still resident


def test_working_set_within_capacity_all_hits_on_reuse():
    cache = SetAssociativeCache(small_config())
    cache.access_range(0, 1024, stride=32)
    cache.reset_stats()
    misses = cache.access_range(0, 1024, stride=32)
    assert misses == 0
    assert cache.miss_rate == 0.0


def test_cyclic_sweep_beyond_capacity_thrashes():
    """True LRU on a cyclic sweep > capacity misses every line."""
    cache = SetAssociativeCache(small_config())
    cache.access_range(0, 2048, stride=32)  # 2x capacity, cold
    cache.reset_stats()
    misses = cache.access_range(0, 2048, stride=32)
    assert misses == 2048 // 32  # all lines miss again


def test_miss_rate_zero_when_untouched():
    assert SetAssociativeCache(small_config()).miss_rate == 0.0


def test_streaming_model_matches_exact_cache_extremes():
    config = small_config()
    model = StreamingMissModel(config)
    assert model.sweep_miss_rate(512) == 0.0       # fits
    assert model.sweep_miss_rate(4096) == 1.0      # 4x capacity
    assert 0.0 < model.sweep_miss_rate(1536) < 1.0  # ramp


@given(ws=st.integers(min_value=0, max_value=10_000_000))
@settings(max_examples=100, deadline=None)
def test_streaming_miss_rate_bounded_and_monotone(ws):
    model = StreamingMissModel()
    rate = model.sweep_miss_rate(ws)
    assert 0.0 <= rate <= 1.0
    assert model.sweep_miss_rate(ws + 4096) >= rate - 1e-12


def test_sweep_stall_scales_with_bytes():
    model = StreamingMissModel(small_config())
    small = model.sweep_stall_cycles(1024, ws_bytes=4096)
    large = model.sweep_stall_cycles(4096, ws_bytes=4096)
    assert large == pytest.approx(4 * small)


def test_tlb_stalls_only_beyond_reach():
    model = StreamingMissModel()
    reach = model.config.tlb_entries * model.config.tlb_page_bytes
    assert model.tlb_stall_cycles(10_000, ws_bytes=reach) == 0.0
    assert model.tlb_stall_cycles(10_000, ws_bytes=2 * reach) > 0.0


def test_cluster_model_accumulates():
    model = ClusterCacheModel(small_config())
    a = model.chunk_stall_cycles(2048, ws_bytes=4096)
    b = model.chunk_stall_cycles(2048, ws_bytes=4096)
    assert model.stall_cycles_total == pytest.approx(a + b)


def test_machine_cache_stalls_disabled_by_default():
    from repro.hardware import CedarMachine, paper_configuration
    from repro.sim import Simulator

    machine = CedarMachine(Simulator(), paper_configuration(32))
    assert machine.cluster_caches is None
    assert machine.cache_stall_ns(0, 100_000, 10**7) == 0


def test_machine_cache_stalls_when_enabled():
    from dataclasses import replace

    from repro.hardware import CedarMachine, paper_configuration
    from repro.sim import Simulator

    config = replace(paper_configuration(32), model_cluster_cache=True)
    machine = CedarMachine(Simulator(), config)
    assert machine.cluster_caches is not None
    stall = machine.cache_stall_ns(0, bytes_accessed=1_000_000, ws_bytes=2 * 1024 * 1024)
    assert stall > 0


def test_end_to_end_cache_modelling_slows_sweeps():
    """A loop sweeping 2 MB per cluster runs slower with the cache
    modelled -- the overhead the paper chose not to characterize."""
    from dataclasses import replace

    from repro.apps import LoopShape, synthetic_app
    from repro.core import run_phases
    from repro.hardware import paper_configuration
    from repro.runtime import LoopConstruct

    app = synthetic_app(
        construct=LoopConstruct.SDOALL, n_steps=2, loops_per_step=2,
        n_outer=8, n_inner=32, iter_time_ns=1_000_000,
    )
    app.loops_per_step = [
        type(s)(**{**s.__dict__, "cluster_ws_bytes": 2 * 1024 * 1024})
        for s in app.loops_per_step
    ]
    phases = app.phases(1.0)
    plain = run_phases(phases, 32, config=paper_configuration(32))
    cached = run_phases(
        phases, 32, config=replace(paper_configuration(32), model_cluster_cache=True)
    )
    assert cached.ct_ns > plain.ct_ns
