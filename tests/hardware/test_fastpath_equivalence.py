"""Property test: the batched vector fast path matches the exact path.

With no faults and no saturation the arithmetic plan in
:mod:`repro.hardware.fastpath` must reproduce the per-packet machine's
observable timing: the transaction's completion time and every bank's
cumulative busy time.  Tie order at same-instant arrivals may differ
between the two implementations, but at single-server centres with
equal service times neither quantity depends on it.

Hypothesis drives random vector lengths, strides (hence bank maps),
and source CEs through both paths on fresh machines and compares.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import CedarConfig, GlobalMemorySystem
from repro.sim import Simulator


def run_vector(
    ce_id: int, base_address: int, n_words: int, stride_bytes: int, batched: bool
):
    """One vector access on a fresh machine; returns (elapsed, busy, stats)."""
    sim = Simulator()
    config = CedarConfig()
    memory = GlobalMemorySystem(sim, config)
    if not batched:
        memory.fastpath.disable()
    result = {}

    def driver():
        result["elapsed"] = yield sim.process(
            memory.vector_access(ce_id, base_address, n_words, stride_bytes)
        )

    sim.run(until=sim.process(driver()))
    return result["elapsed"], memory


@settings(max_examples=60, deadline=None)
@given(
    ce_id=st.integers(min_value=0, max_value=31),
    base_address=st.integers(min_value=0, max_value=4096),
    n_words=st.integers(min_value=1, max_value=64),
    stride_exp=st.integers(min_value=0, max_value=5),
)
def test_batched_matches_exact(ce_id, base_address, n_words, stride_exp):
    stride_bytes = 8 << stride_exp  # 8..256: cycles through bank maps
    fast_elapsed, fast_mem = run_vector(
        ce_id, base_address, n_words, stride_bytes, batched=True
    )
    exact_elapsed, exact_mem = run_vector(
        ce_id, base_address, n_words, stride_bytes, batched=False
    )
    assert fast_mem.fastpath.stats.batched_transactions == 1, (
        "a lone unfaulted stream must take the batched path"
    )
    assert fast_elapsed == exact_elapsed
    assert fast_mem.bank_busy_ns == exact_mem.bank_busy_ns
    assert fast_mem.bank_requests == exact_mem.bank_requests
    assert fast_mem.stats.requests == exact_mem.stats.requests
    assert fast_mem.stats.completions == exact_mem.stats.completions


@settings(max_examples=20, deadline=None)
@given(
    ce_id=st.integers(min_value=0, max_value=31),
    address=st.integers(min_value=0, max_value=65536),
)
def test_scalar_request_matches_exact(ce_id, address):
    """Single requests ride the valued-Timeout fast path, same timing."""
    results = []
    for batched in (True, False):
        sim = Simulator()
        memory = GlobalMemorySystem(sim, CedarConfig())
        if not batched:
            memory.fastpath.disable()
        got = {}

        def driver():
            packet = yield memory.request(ce_id, address)
            got["done_ns"] = sim.now
            got["dest"] = packet.dest
        sim.run(until=sim.process(driver()))
        results.append((got["done_ns"], got["dest"], memory.stats.completions))
    assert results[0] == results[1]


def test_fallback_counters_and_sticky_disable():
    """Degradation and disable() route to exact and count the reason."""
    sim = Simulator()
    memory = GlobalMemorySystem(sim, CedarConfig())
    memory.set_bank_service_multiplier(3, 2.0)
    assert memory.fastpath.plan(0, 0, 8, 8) is None
    assert memory.fastpath.stats.fallback_fault == 1
    memory.set_bank_service_multiplier(3, 1.0)
    assert memory.fastpath.plan(0, 0, 8, 8) is not None
    memory.fastpath.disable()
    assert memory.fastpath.plan(0, 0, 8, 8) is None
    assert memory.fastpath.stats.fallback_fault == 2
    assert memory.fastpath.stats.batched_words == 8
    assert memory.fastpath.stats.exact_words == 16
