"""Unit tests for the assembled CedarMachine and cluster models."""

import pytest

from repro.hardware import CedarConfig, CedarMachine, Cluster, paper_configuration
from repro.sim import Simulator


def make_machine(n_proc=32):
    sim = Simulator()
    machine = CedarMachine(sim, paper_configuration(n_proc))
    return sim, machine


def test_machine_builds_clusters():
    _, machine = make_machine(32)
    assert len(machine.clusters) == 4
    assert machine.n_processors == 32
    assert len(machine.all_ces()) == 32


def test_ce_lookup_by_global_id():
    _, machine = make_machine(32)
    ce = machine.ce(19)
    assert ce.ce_id == 19
    assert ce.cluster_id == 2
    assert ce.local_id == 3


def test_ce_ids_are_dense_and_ordered():
    _, machine = make_machine(16)
    ids = [ce.ce_id for ce in machine.all_ces()]
    assert ids == list(range(16))


def test_cluster_rejects_bad_id():
    sim = Simulator()
    config = CedarConfig()
    with pytest.raises(ValueError):
        Cluster(sim, config, 7)


def test_ccbus_costs_are_small_and_counted():
    _, machine = make_machine(8)
    bus = machine.clusters[0].ccbus
    d = bus.dispatch_ns()
    s = bus.synchronise_ns()
    assert 0 < d < 5_000  # well under 5 microseconds
    assert 0 < s < 5_000
    assert bus.dispatches == 1
    assert bus.synchronisations == 1


def test_memory_burst_registers_load():
    sim, machine = make_machine(32)
    observed = []

    def burster(sim, machine):
        yield sim.process(machine.memory_burst(n_words=64, rate=0.5))

    def spy(sim, machine):
        yield sim.timeout(1)
        observed.append(machine.load.active)

    sim.process(burster(sim, machine))
    sim.process(spy(sim, machine))
    sim.run()
    assert observed == [1]
    assert machine.load.active == 0


def test_concurrent_bursts_slower_than_solo():
    def total_time(n_ces):
        sim, machine = make_machine(32)
        procs = [
            sim.process(machine.memory_burst(n_words=256, rate=0.8))
            for _ in range(n_ces)
        ]
        sim.run(until=sim.all_of(procs))
        return sim.now

    solo = total_time(1)
    crowd = total_time(24)
    assert crowd > solo


def test_ideal_burst_matches_single_requester():
    sim, machine = make_machine(32)
    proc = sim.process(machine.memory_burst(n_words=128, rate=0.5))
    sim.run(until=proc)
    assert sim.now == machine.ideal_burst_ns(128, 0.5)


def test_global_round_trip_grows_with_load():
    sim, machine = make_machine(32)
    quiet = machine.global_round_trip_ns()
    for _ in range(24):
        machine.load.enter()
    busy = machine.global_round_trip_ns()
    assert busy >= quiet


def test_packet_level_memory_lazy():
    sim = Simulator()
    machine = CedarMachine(sim, paper_configuration(8))
    assert machine._memory is None
    _ = machine.memory
    assert machine._memory is not None


def test_packet_level_memory_eager():
    sim = Simulator()
    machine = CedarMachine(sim, paper_configuration(8), packet_level_memory=True)
    assert machine._memory is not None
