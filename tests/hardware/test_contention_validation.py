"""Validation of the analytic contention model against the packet-level
network simulator.

Application-scale runs use the analytic model for speed; these tests
check it against packet-level measurements in the regimes the
applications exercise: single streams, few streams, many streams.
The analytic model also contains the cluster-channel centre the packet
model does not represent, so agreement is checked loosely (factor-level)
at high load and tightly at low load.
"""

import pytest

from repro.hardware import CedarConfig, ContentionModel, GlobalMemorySystem
from repro.sim import Simulator


def packet_level_stream_time(n_ces: int, n_words: int) -> float:
    """Mean per-CE stream completion time (ns) at packet level.

    The exact per-packet path is the reference these validations are
    stated against; the batched fast path is validated against *it*
    separately (``test_fastpath_equivalence.py``), so it is pinned off
    here to keep the reference measurements pure.
    """
    sim = Simulator()
    config = CedarConfig()
    memory = GlobalMemorySystem(sim, config)
    memory.fastpath.disable()
    times = []

    def stream(ce):
        elapsed = yield sim.process(
            memory.vector_access(ce, base_address=ce * 8192, n_words=n_words)
        )
        times.append(elapsed)

    procs = [sim.process(stream(ce)) for ce in range(n_ces)]
    sim.run(until=sim.all_of(procs))
    return sum(times) / len(times)


def analytic_stream_time(n_ces: int, n_words: int) -> float:
    config = CedarConfig()
    model = ContentionModel(config)
    cluster = min(n_ces, config.ces_per_cluster)
    cycles = model.vector_time_cycles(
        n_words, requesters=n_ces, rate=1.0, cluster_requesters=cluster
    )
    return cycles * config.cycle_ns


def test_single_stream_agreement():
    """With one CE both models are dominated by issue rate + latency."""
    packet = packet_level_stream_time(1, 64)
    analytic = analytic_stream_time(1, 64)
    assert analytic == pytest.approx(packet, rel=0.35)


def test_light_load_agreement():
    packet = packet_level_stream_time(4, 64)
    analytic = analytic_stream_time(4, 64)
    assert analytic == pytest.approx(packet, rel=0.6)


def test_heavy_load_same_direction():
    """Both models agree that 16 streams are much slower than 1."""
    packet_ratio = packet_level_stream_time(16, 64) / packet_level_stream_time(1, 64)
    analytic_ratio = analytic_stream_time(16, 64) / analytic_stream_time(1, 64)
    assert packet_ratio > 1.3
    assert analytic_ratio > 1.3
    # Within a factor of ~2.5 of each other.
    assert 0.4 < analytic_ratio / packet_ratio < 2.5


def test_analytic_is_monotone_like_packet_level():
    packet = [packet_level_stream_time(n, 48) for n in (1, 4, 8, 16)]
    analytic = [analytic_stream_time(n, 48) for n in (1, 4, 8, 16)]
    assert packet == sorted(packet)
    assert analytic == sorted(analytic)
