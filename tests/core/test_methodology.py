"""Tests of the paper's methodology on small end-to-end runs.

Uses the synthetic workload generator at tiny scales so each test runs
in well under a second while still exercising the full stack.
"""

import pytest

from repro.apps import synthetic_app
from repro.core import (
    contention_overhead,
    ct_breakdown,
    loop_regions,
    parallel_fraction,
    parallel_loop_concurrency,
    run_application,
    t1_split_ns,
    tp_actual_ns,
    total_parallel_loop_concurrency,
    user_breakdown,
)
from repro.core.speedup import speedup_table
from repro.runtime import LoopConstruct
from repro.xylem.categories import TimeCategory


@pytest.fixture(scope="module")
def small_app():
    return synthetic_app(
        n_steps=2,
        loops_per_step=2,
        n_outer=8,
        n_inner=16,
        iter_time_ns=2_000_000,
        mem_fraction=0.3,
    )


@pytest.fixture(scope="module")
def results(small_app):
    return {
        n: run_application(small_app, n, scale=1.0) for n in (1, 8, 32)
    }


def test_ct_breakdown_partitions_wall_time(results):
    for result in results.values():
        for cluster in range(result.config.n_clusters):
            breakdown = ct_breakdown(result, cluster)
            assert sum(breakdown.values()) == result.ct_ns
            assert all(v >= 0 for v in breakdown.values())


def test_user_breakdown_components_bounded(results):
    result = results[32]
    for task in range(4):
        b = user_breakdown(result, task)
        for value in b.as_dict().values():
            assert 0 <= value <= result.ct_ns * 1.01


def test_main_task_has_serial_helpers_do_not(results):
    result = results[32]
    assert user_breakdown(result, 0).serial_ns > 0
    for task in (1, 2, 3):
        b = user_breakdown(result, task)
        assert b.serial_ns == 0
        assert b.helper_wait_ns > 0


def test_loop_regions_within_run(results):
    result = results[32]
    for task in range(4):
        for start, end in loop_regions(result, task):
            assert 0 <= start < end <= result.ct_ns


def test_main_has_one_region_per_spread_loop(results):
    result = results[32]
    # 2 steps x 2 loops = 4 spread loops.
    assert len(loop_regions(result, 0)) == 4


def test_parallel_fraction_in_unit_range(results):
    for result in results.values():
        for task in range(result.config.n_clusters):
            assert 0.0 <= parallel_fraction(result, task) <= 1.0


def test_parallel_loop_concurrency_bounds(results):
    for n, result in results.items():
        for task in range(result.config.n_clusters):
            par = parallel_loop_concurrency(result, task)
            assert 1.0 <= par <= result.config.ces_per_cluster


def test_total_concurrency_sums_clusters(results):
    result = results[32]
    total = total_parallel_loop_concurrency(result)
    parts = [parallel_loop_concurrency(result, t) for t in range(4)]
    assert total == pytest.approx(sum(parts))


def test_tp_actual_close_to_ct_when_loop_dominated(results):
    """The synthetic app is almost all loops, so Tp ~ CT at 1 proc."""
    base = results[1]
    assert tp_actual_ns(base) > 0.8 * base.ct_ns


def test_t1_split_requires_single_processor(results):
    with pytest.raises(ValueError):
        t1_split_ns(results[32])


def test_t1_split_no_mc_loops(results):
    t1_mc, t1_sx = t1_split_ns(results[1])
    assert t1_mc == 0.0
    assert t1_sx > 0


def test_contention_overhead_row(results):
    row = contention_overhead(results[32], results[1])
    assert row.tp_ideal_ns > 0
    assert row.tp_actual_ns > 0
    assert -10.0 < row.ov_cont_pct < 60.0


def test_contention_overhead_rejects_mismatches(results, small_app):
    other = run_application(
        synthetic_app(name="OTHER", n_steps=1, loops_per_step=1), 1, scale=1.0
    )
    with pytest.raises(ValueError):
        contention_overhead(results[32], other)


def test_contention_overhead_rejects_scale_mismatch(small_app, results):
    base_half = run_application(small_app, 1, scale=0.5)
    with pytest.raises(ValueError):
        contention_overhead(results[32], base_half)


def test_speedup_table_baseline_required(results):
    with pytest.raises(ValueError):
        speedup_table({32: results[32]})


def test_speedup_table_rows(results):
    rows = speedup_table(results)
    assert [r.n_processors for r in rows] == [1, 8, 32]
    assert rows[0].speedup == pytest.approx(1.0)
    assert rows[2].speedup > rows[1].speedup > 1.0


def test_mc_loops_measured_when_present():
    app = synthetic_app(
        n_steps=1,
        loops_per_step=1,
        construct=LoopConstruct.CLUSTER_ONLY,
        n_outer=1,
        n_inner=16,
        iter_time_ns=1_000_000,
    )
    r1 = run_application(app, 1, scale=1.0)
    t1_mc, t1_sx = t1_split_ns(r1)
    assert t1_mc > 0
    assert t1_sx == 0


def test_os_overhead_nonzero_but_small(results):
    result = results[32]
    breakdown = ct_breakdown(result, 0)
    os_ns = (
        breakdown[TimeCategory.SYSTEM]
        + breakdown[TimeCategory.INTERRUPT]
        + breakdown[TimeCategory.KSPIN]
    )
    assert 0 < os_ns < 0.5 * result.ct_ns
