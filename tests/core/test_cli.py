"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_bad_processor_count():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "FLO52", "12"])


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "NOPE", "8"])


def test_run_command(capsys):
    main(["run", "flo52", "8", "--scale", "0.01"])
    out = capsys.readouterr().out
    assert "FLO52 on 8 processors" in out
    assert "completion time" in out
    assert "contention overhead" in out
    assert "par_concurr" in out


def test_run_command_single_processor_skips_contention(capsys):
    main(["run", "adm", "1", "--scale", "0.01"])
    out = capsys.readouterr().out
    assert "contention overhead" not in out


def test_trace_command(tmp_path, capsys):
    out_file = tmp_path / "t.jsonl"
    main(["trace", "mdg", "8", "-o", str(out_file), "--scale", "0.01"])
    out = capsys.readouterr().out
    assert "wrote" in out
    assert out_file.exists()
    from repro.hpm import load_trace

    events = load_trace(out_file)
    assert events


def test_sweep_command(capsys):
    main(["sweep", "flo52", "--scale", "0.01"])
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Table 4" in out
