"""Tests for figure rendering and the closed-form predictor."""

import pytest

from repro.apps import PAPER_APPS, flo52, synthetic_app
from repro.core import run_application
from repro.core.figures import render_ct_bars, render_user_bars, stacked_bar
from repro.core.model import predict_completion_time


def test_stacked_bar_full():
    bar = stacked_bar([("a", 0.5), ("b", 0.5)], width=10)
    assert bar == "aaaaabbbbb"


def test_stacked_bar_partial_padded():
    bar = stacked_bar([("a", 0.25)], width=8)
    assert bar == "aa      "
    assert len(bar) == 8


def test_stacked_bar_clips_overflow():
    bar = stacked_bar([("a", 0.9), ("b", 0.9)], width=10)
    assert len(bar) == 10
    assert bar.count("a") == 9
    assert bar.count("b") == 1


def test_stacked_bar_clamps_bad_fractions():
    bar = stacked_bar([("a", -1.0), ("b", 2.0)], width=4)
    assert bar == "bbbb"


def test_stacked_bar_width_validation():
    with pytest.raises(ValueError):
        stacked_bar([("a", 1.0)], width=0)


@pytest.fixture(scope="module")
def small_results():
    app = synthetic_app(n_steps=1, loops_per_step=2, n_outer=8, n_inner=16,
                        iter_time_ns=1_000_000)
    return {n: run_application(app, n, scale=1.0) for n in (1, 32)}


def test_render_ct_bars(small_results):
    text = render_ct_bars(small_results)
    lines = text.split("\n")
    assert len(lines) == 3  # header + 2 configs
    assert "1p" in lines[1]
    assert " 32p" in lines[2]
    # Bars are uniform width.
    assert len(lines[1]) == len(lines[2])
    # User time dominates.
    assert lines[2].count(".") > 30


def test_render_user_bars(small_results):
    text = render_user_bars(small_results[32])
    lines = text.split("\n")
    assert len(lines) == 5  # header + main + 3 helpers
    assert lines[1].startswith("Main")
    # Helpers show wait glyphs; main does not.
    assert "W" in lines[2]
    assert "W" not in lines[1].replace("Main", "")


def test_predictor_decomposition_positive():
    prediction = predict_completion_time(flo52(), 32)
    assert prediction.serial_s > 0
    assert prediction.parallel_s > 0
    assert prediction.contention_s >= 0
    assert prediction.total_s == pytest.approx(
        prediction.serial_s
        + prediction.parallel_s
        + prediction.contention_s
        + prediction.os_s
    )


def test_predictor_monotone_in_processors():
    for name, builder in PAPER_APPS.items():
        app = builder()
        totals = [predict_completion_time(app, n).total_s for n in (1, 8, 32)]
        assert totals[0] > totals[1] > totals[2], (name, totals)


@pytest.mark.parametrize("app_name", list(PAPER_APPS))
@pytest.mark.parametrize("n_proc", [1, 8, 32])
def test_predictor_tracks_simulation(app_name, n_proc):
    """The closed form lands within ~35% of the full simulation."""
    app = PAPER_APPS[app_name]()
    predicted = predict_completion_time(app, n_proc).total_s
    simulated = run_application(app, n_proc, scale=0.01).ct_seconds
    assert predicted == pytest.approx(simulated, rel=0.35), (
        f"{app_name}@{n_proc}p: predicted {predicted:.0f}s vs "
        f"simulated {simulated:.0f}s"
    )
