"""Unit tests for trace interval reconstruction."""

import pytest

from repro.core.trace_analysis import (
    Interval,
    IntervalKind,
    extract_intervals,
    intervals_of,
)
from repro.hpm.events import EventType, TraceEvent


def ev(event_type, t, ce=0, task=0, payload=None):
    return TraceEvent(event_type, t, ce, task, payload)


def test_simple_pairing():
    events = [
        ev(EventType.SERIAL_START, 100),
        ev(EventType.SERIAL_END, 250),
    ]
    [interval] = extract_intervals(events)
    assert interval.kind is IntervalKind.SERIAL
    assert interval.start_ns == 100
    assert interval.end_ns == 250
    assert interval.duration_ns == 150


def test_pairing_is_per_processor():
    events = [
        ev(EventType.ITER_START, 10, ce=0),
        ev(EventType.ITER_START, 20, ce=1),
        ev(EventType.ITER_END, 30, ce=1),
        ev(EventType.ITER_END, 50, ce=0),
    ]
    intervals = extract_intervals(events)
    by_ce = {iv.processor_id: iv for iv in intervals}
    assert by_ce[0].duration_ns == 40
    assert by_ce[1].duration_ns == 10


def test_nested_same_kind_pairs_lifo():
    events = [
        ev(EventType.INTERRUPT_ENTER, 10),
        ev(EventType.INTERRUPT_ENTER, 20),
        ev(EventType.INTERRUPT_EXIT, 30),
        ev(EventType.INTERRUPT_EXIT, 50),
    ]
    intervals = extract_intervals(events)
    durations = sorted(iv.duration_ns for iv in intervals)
    assert durations == [10, 40]


def test_unmatched_close_raises():
    with pytest.raises(ValueError):
        extract_intervals([ev(EventType.ITER_END, 10)])


def test_unclosed_interval_dropped_without_end():
    intervals = extract_intervals([ev(EventType.ITER_START, 10)])
    assert intervals == []


def test_unclosed_interval_closed_at_end_ns():
    [interval] = extract_intervals([ev(EventType.ITER_START, 10)], end_ns=100)
    assert interval.end_ns == 100


def test_point_events_ignored():
    events = [
        ev(EventType.LOOP_POST, 10),
        ev(EventType.HELPER_JOIN, 20),
        ev(EventType.LOOP_DETACH, 30),
    ]
    assert extract_intervals(events) == []


def test_intervals_sorted_by_start():
    events = [
        ev(EventType.ITER_START, 50, ce=0),
        ev(EventType.ITER_END, 60, ce=0),
        ev(EventType.ITER_START, 10, ce=1),
        ev(EventType.ITER_END, 20, ce=1),
    ]
    intervals = extract_intervals(events)
    assert [iv.start_ns for iv in intervals] == [10, 50]


def test_payload_accessors():
    events = [
        ev(EventType.PICKUP_ENTER, 10, payload=(3, "xdoall", "loop-a", 1)),
        ev(EventType.PICKUP_EXIT, 15),
    ]
    [interval] = extract_intervals(events)
    assert interval.construct == "xdoall"
    assert interval.loop_seq == 3


def test_payload_accessors_without_payload():
    interval = Interval(IntervalKind.SERIAL, 0, 0, 0, 10, payload=None)
    assert interval.construct is None
    assert interval.loop_seq is None


def test_intervals_of_filters():
    intervals = [
        Interval(IntervalKind.PICKUP, 0, 0, 0, 10, payload=(1, "xdoall")),
        Interval(IntervalKind.PICKUP, 0, 1, 0, 10, payload=(1, "sdoall")),
        Interval(IntervalKind.BARRIER, 0, 0, 0, 10),
    ]
    assert len(intervals_of(intervals, IntervalKind.PICKUP)) == 2
    assert len(intervals_of(intervals, IntervalKind.PICKUP, task_id=0)) == 1
    assert len(intervals_of(intervals, IntervalKind.PICKUP, construct="xdoall")) == 1
    assert len(intervals_of(intervals, IntervalKind.BARRIER)) == 1
