"""Calibration regression tests: the 4-cluster runs stay in-band.

These are deliberately looser than the benchmark assertions (which run
at a larger workload scale); their job is to catch parameter drift that
would silently break the reproduction, directly in the unit-test suite.
"""

import pytest

from repro.apps import PAPER_APPS
from repro.core import contention_overhead, ct_breakdown, run_application
from repro.core import reference
from repro.xylem.categories import OsActivity, TimeCategory

SCALE = 0.01


@pytest.fixture(scope="module")
def runs32():
    return {
        app: run_application(PAPER_APPS[app](), 32, scale=SCALE)
        for app in ("FLO52", "MDG")
    }


@pytest.fixture(scope="module")
def runs1():
    return {
        app: run_application(PAPER_APPS[app](), 1, scale=SCALE)
        for app in ("FLO52", "MDG")
    }


def test_completion_times_in_band(runs32):
    for app, result in runs32.items():
        paper_ct = reference.TABLE1[app][32][0]
        assert result.ct_seconds == pytest.approx(paper_ct, rel=0.35), app


def test_os_overhead_band(runs32):
    """OS overhead on the full machine: a noticeable, bounded share."""
    for app, result in runs32.items():
        total = sum(
            result.accounting.activity_total_ns(a) for a in OsActivity
        )
        fraction = result.fraction_of_ct(total)
        assert 0.03 < fraction < 0.30, f"{app}: OS {fraction:.1%}"


def test_kspin_negligible(runs32):
    for app, result in runs32.items():
        kspin = sum(
            result.accounting.category_ns(c, TimeCategory.KSPIN)
            for c in range(4)
        )
        assert result.fraction_of_ct(kspin) < 0.01, app


def test_dominant_os_categories(runs32):
    """CPI + ctx + faults + cluster crsects carry the OS overhead."""
    dominant = (
        OsActivity.CPI,
        OsActivity.CTX,
        OsActivity.PGFLT_CONCURRENT,
        OsActivity.PGFLT_SEQUENTIAL,
        OsActivity.CRSECT_CLUSTER,
    )
    for app, result in runs32.items():
        total = sum(result.accounting.activity_total_ns(a) for a in OsActivity)
        share = sum(result.accounting.activity_total_ns(a) for a in dominant)
        assert share > 0.8 * total, app


def test_contention_positive_at_full_machine(runs32, runs1):
    for app in runs32:
        row = contention_overhead(runs32[app], runs1[app])
        assert row.ov_cont_pct > 2.0, app


def test_q_identity_holds(runs32):
    for app, result in runs32.items():
        for cluster in range(4):
            breakdown = ct_breakdown(result, cluster)
            assert sum(breakdown.values()) == result.ct_ns
