"""Unit tests for the table/figure experiment harness itself."""

import pytest

from repro.core.experiments import (
    figure3,
    figure_user_breakdown,
    sweep_application,
    table1,
    table2,
    table3,
    table4,
)
from repro.core import reference


@pytest.fixture(scope="module")
def tiny_sweep():
    """FLO52 on 1 and 32 processors at a tiny scale."""
    return {"FLO52": sweep_application("FLO52", configs=(1, 32), scale=0.01)}


def test_sweep_application_builds_all_configs(tiny_sweep):
    by_config = tiny_sweep["FLO52"]
    assert set(by_config) == {1, 32}
    assert by_config[32].app_name == "FLO52"


def test_table1_rows_and_text(tiny_sweep):
    rows, text = table1(tiny_sweep)
    assert len(rows) == 2
    app, n_proc, ct, paper_ct, speedup, paper_s, conc, paper_c = rows[0]
    assert app == "FLO52" and n_proc == 1
    assert paper_ct == reference.TABLE1["FLO52"][1][0]
    assert "Table 1" in text
    # Paper columns are interleaved with simulated ones.
    assert "paper" in text


def test_table2_rows(tiny_sweep):
    rows, text = table2({"FLO52": tiny_sweep["FLO52"][32]})
    assert len(rows) == 9  # one per OsActivity
    assert all(row[0] == "FLO52" for row in rows)
    assert "cpi" in text


def test_table3_skips_single_processor(tiny_sweep):
    rows, text = table3(tiny_sweep)
    assert all(row[1] != 1 for row in rows)
    # 32 procs -> 4 tasks.
    assert len(rows) == 4
    assert rows[0][2] == "Main"


def test_table4_includes_baseline_row(tiny_sweep):
    rows, text = table4(tiny_sweep)
    assert len(rows) == 2
    baseline = rows[0]
    assert baseline[1] == 1
    assert baseline[4] is None  # no ideal for the 1-proc row
    full = rows[1]
    assert full[1] == 32
    assert full[6] is not None  # Ov_cont present


def test_figure3_rows(tiny_sweep):
    rows, text = figure3(tiny_sweep)
    assert len(rows) == 2
    for row in rows:
        user, system, interrupt, kspin = row[2:]
        assert 0 <= user <= 100
        assert user + system + interrupt + kspin == pytest.approx(100.0)


def test_figure_user_breakdown_rows(tiny_sweep):
    rows, text = figure_user_breakdown("FLO52", tiny_sweep["FLO52"])
    # 1 task at 1 proc + 4 tasks at 32 procs.
    assert len(rows) == 5
    assert "FLO52" in text
    for row in rows:
        for pct in row[2:]:
            assert -1e-9 <= pct <= 100.0 + 1e-9
