"""Unit tests for table rendering and the transcribed paper data."""

from repro.core import reference
from repro.core.report import format_value, render_table


def test_format_value_variants():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(0.0) == "0"
    assert format_value(3.14159) == "3.14"
    assert format_value(3.14159, precision=1) == "3.1"
    assert format_value(12345.6) == "12,346"
    assert format_value("abc") == "abc"
    assert format_value(7) == "7"


def test_render_table_alignment():
    text = render_table(["a", "bb"], [[1, 2.5], [10, 33.25]], title="T")
    lines = text.split("\n")
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    # All rows have the same width.
    assert len({len(line) for line in lines[1:]}) == 1


def test_render_table_handles_none():
    text = render_table(["x"], [[None]])
    assert "-" in text.split("\n")[-1]


def test_reference_tables_cover_all_apps():
    assert set(reference.TABLE1) == set(reference.APPS)
    assert set(reference.TABLE4) == set(reference.APPS)
    assert set(reference.TABLE3) == set(reference.APPS)
    # Table 2 covers the three apps the paper details.
    assert set(reference.TABLE2) == {"FLO52", "ARC2D", "MDG"}


def test_reference_table1_configs_complete():
    for app, by_config in reference.TABLE1.items():
        assert set(by_config) == set(reference.CONFIGS)
        # CT decreases with processors.
        cts = [by_config[n][0] for n in reference.CONFIGS]
        assert cts == sorted(cts, reverse=True)


def test_reference_speedups_below_concurrency():
    """Transcription sanity: the paper's own key observation holds."""
    for app, by_config in reference.TABLE1.items():
        for n, (ct, speedup, concurrency) in by_config.items():
            assert speedup <= concurrency + 1e-9


def test_reference_table4_internal_consistency():
    """Ov_cont ~ (Tp_actual - Tp_ideal) / CT within rounding."""
    for app, by_config in reference.TABLE4.items():
        for n, (tp_act, tp_ideal, ov) in by_config.items():
            if tp_ideal is None:
                continue
            ct = reference.TABLE1[app][n][0]
            computed = (tp_act - tp_ideal) / ct * 100.0
            assert abs(computed - ov) < 3.0, (app, n, computed, ov)


def test_reference_table2_percentages_consistent():
    """Seconds/CT matches the printed percentage within rounding."""
    for app, activities in reference.TABLE2.items():
        ct = reference.TABLE1[app][32][0]
        for activity, (seconds, pct) in activities.items():
            assert abs(seconds / ct * 100.0 - pct) < 0.5, (app, activity)


def test_reference_table3_values_physical():
    for app, by_config in reference.TABLE3.items():
        for n, tasks in by_config.items():
            for task, value in tasks.items():
                assert 1.0 <= value <= 8.0
