"""Tests for the barrier organisations: central counter vs combining tree."""

import pytest

from repro.hardware import CedarConfig, CedarMachine, paper_configuration
from repro.hpm import ActivityBoard, CedarHpm, EventType
from repro.runtime import (
    CedarFortranRuntime,
    LoopConstruct,
    ParallelLoop,
    RuntimeParams,
)
from repro.sim import Simulator
from repro.xylem import XylemKernel, XylemParams

QUIET_OS = XylemParams(
    ctx_interval_ns=10**15,
    ast_interval_ns=10**15,
    sched_interval_ns=10**15,
)


def run_loop(config, rt_params=None, n_loops=3):
    sim = Simulator()
    machine = CedarMachine(sim, config)
    hpm = CedarHpm(sim)
    board = ActivityBoard(sim, config)
    kernel = XylemKernel(sim, config, QUIET_OS, hpm=hpm)
    runtime = CedarFortranRuntime(
        sim, machine, kernel, hpm=hpm, board=board, params=rt_params
    )
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL,
        n_outer=2 * config.n_clusters,
        n_inner=max(8, 64 // config.n_clusters),
        work_ns_per_iter=100_000,
    )
    proc = runtime.run_program([loop] * n_loops)
    ct = sim.run(until=proc)
    return ct, hpm


def test_runtime_params_validate_fanout():
    with pytest.raises(ValueError):
        RuntimeParams(barrier_fanout=1)
    RuntimeParams(barrier_fanout=2)  # ok
    RuntimeParams(barrier_fanout=None)  # ok


def test_both_organisations_complete_all_loops():
    config = paper_configuration(32)
    for params in (None, RuntimeParams(barrier_fanout=2)):
        ct, hpm = run_loop(config, params)
        detaches = list(hpm.events_of(EventType.LOOP_DETACH))
        barriers = list(hpm.events_of(EventType.BARRIER_EXIT))
        assert len(detaches) == 3 * 3  # 3 helpers x 3 loops
        assert len(barriers) == 3


def _barrier_makespan(n_tasks: int, fanout: int | None) -> int:
    """Makespan of *n_tasks* simultaneous detaches (worst case: a
    statically-balanced loop where every task hits the barrier at
    once)."""
    from repro.runtime.library import _LoopState
    from repro.runtime.loops import ParallelLoop
    from repro.xylem.task import ClusterTask, TaskKind

    config = CedarConfig(n_clusters=max(n_tasks + 1, 2), ces_per_cluster=1)
    sim = Simulator()
    machine = CedarMachine(sim, config)
    kernel = XylemKernel(sim, config, QUIET_OS)
    runtime = CedarFortranRuntime(
        sim, machine, kernel, params=RuntimeParams(barrier_fanout=fanout)
    )
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL, n_inner=1, work_ns_per_iter=1
    )
    state = _LoopState(sim, loop, seq=0, n_helpers=n_tasks)
    tasks = [
        ClusterTask(task_id=i + 1, cluster_id=i + 1, kind=TaskKind.HELPER)
        for i in range(n_tasks)
    ]
    procs = [
        sim.process(runtime._detach_barrier(state, task)) for task in tasks
    ]
    sim.run(until=sim.all_of(procs))
    return sim.now


def test_flat_barrier_serialises_many_tasks():
    """31 simultaneous detaches: the central counter's lock serialises
    them (hot spot); a combining tree finishes in logarithmic depth."""
    central = _barrier_makespan(31, fanout=None)
    tree = _barrier_makespan(31, fanout=2)
    assert tree < central / 2, f"central {central} ns vs tree {tree} ns"


def test_flat_barrier_scales_linearly_tree_logarithmically():
    central4, central31 = _barrier_makespan(4, None), _barrier_makespan(31, None)
    tree4, tree31 = _barrier_makespan(4, 2), _barrier_makespan(31, 2)
    # Central counter: ~linear in task count.
    assert central31 > 5 * central4
    # Tree: grows far slower than the task count.
    assert tree31 < 4 * tree4


def test_organisation_is_irrelevant_for_few_tasks():
    """With only 3 helpers (4 clusters) the two organisations are
    within a whisker of each other."""
    config = paper_configuration(32)
    central_ct, _ = run_loop(config, RuntimeParams(barrier_fanout=None))
    tree_ct, _ = run_loop(config, RuntimeParams(barrier_fanout=2))
    assert tree_ct == pytest.approx(central_ct, rel=0.05)


def test_combining_tree_single_helper():
    """Degenerate tree: one helper still detaches correctly."""
    config = paper_configuration(16)
    ct, hpm = run_loop(config, RuntimeParams(barrier_fanout=4), n_loops=1)
    assert len(list(hpm.events_of(EventType.LOOP_DETACH))) == 1


def test_analytic_combining_restores_bandwidth():
    from repro.hardware import ContentionModel

    model = ContentionModel(CedarConfig())
    plain = model.hot_spot_bandwidth(32, 0.5, hot_fraction=0.1)
    combined = model.hot_spot_bandwidth(32, 0.5, hot_fraction=0.1, combining=True)
    uniform = model.hot_spot_bandwidth(32, 0.5, hot_fraction=0.0)
    assert combined > plain
    assert combined == pytest.approx(uniform, rel=0.25)
