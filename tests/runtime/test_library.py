"""Integration-grade unit tests for the runtime library protocol."""

import pytest

from repro.hardware import CedarMachine, paper_configuration
from repro.hpm import ActivityBoard, CedarHpm, EventType
from repro.runtime import (
    CedarFortranRuntime,
    LoopConstruct,
    ParallelLoop,
    SerialPhase,
)
from repro.sim import Simulator
from repro.xylem import XylemKernel, XylemParams


QUIET_OS = XylemParams(
    ctx_interval_ns=10**15,  # effectively no daemons
    ast_interval_ns=10**15,
    sched_interval_ns=10**15,
)


def make_runtime(n_proc=32, os_params=QUIET_OS):
    sim = Simulator()
    config = paper_configuration(n_proc)
    machine = CedarMachine(sim, config)
    hpm = CedarHpm(sim)
    board = ActivityBoard(sim, config)
    kernel = XylemKernel(sim, config, os_params, hpm=hpm)
    runtime = CedarFortranRuntime(sim, machine, kernel, hpm=hpm, board=board)
    return sim, runtime


def run(sim, runtime, phases):
    proc = runtime.run_program(phases)
    return sim.run(until=proc)


def event_types(runtime):
    return [e.event_type for e in runtime.hpm.offload()]


def test_empty_program_completes():
    sim, runtime = make_runtime(8)
    ct = run(sim, runtime, [])
    assert ct >= 0
    types = event_types(runtime)
    assert EventType.PROGRAM_START in types
    assert EventType.PROGRAM_END in types


def test_serial_phase_executes_for_its_duration():
    sim, runtime = make_runtime(8)
    ct = run(sim, runtime, [SerialPhase(work_ns=1_000_000)])
    assert ct >= 1_000_000


def test_serial_records_events():
    sim, runtime = make_runtime(8)
    run(sim, runtime, [SerialPhase(work_ns=1000, label="init")])
    types = event_types(runtime)
    assert EventType.SERIAL_START in types
    assert EventType.SERIAL_END in types


def test_serial_syscalls_accounted():
    from repro.xylem import OsActivity

    sim, runtime = make_runtime(8)
    run(sim, runtime, [SerialPhase(work_ns=0, syscalls=3)])
    accounting = runtime.kernel.accounting
    assert accounting.activity_count(0, OsActivity.SYSCALL_CLUSTER) == 3


def test_sdoall_executes_all_iterations():
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL,
        n_outer=8,
        n_inner=32,
        work_ns_per_iter=10_000,
    )
    run(sim, runtime, [loop])
    events = runtime.hpm.offload()
    iter_starts = [e for e in events if e.event_type == EventType.ITER_START]
    executed = sum(e.payload[3] for e in iter_starts)
    assert executed == loop.total_iterations


def test_xdoall_executes_all_iterations():
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(
        construct=LoopConstruct.XDOALL,
        n_inner=100,
        work_ns_per_iter=10_000,
    )
    run(sim, runtime, [loop])
    events = runtime.hpm.offload()
    iter_starts = [e for e in events if e.event_type == EventType.ITER_START]
    assert len(iter_starts) == 100


def test_xdoall_iterations_unique():
    """No iteration is executed twice despite 32 competing CEs."""
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(construct=LoopConstruct.XDOALL, n_inner=64, work_ns_per_iter=5000)
    run(sim, runtime, [loop])
    # PICKUP events: one successful pickup per iteration plus one
    # "no more work" pickup per CE.
    pickups = [
        e for e in runtime.hpm.offload() if e.event_type == EventType.PICKUP_EXIT
    ]
    assert len(pickups) == 64 + 32


def test_helpers_join_spread_loops():
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL, n_outer=8, n_inner=32, work_ns_per_iter=10_000
    )
    run(sim, runtime, [loop])
    joins = [e for e in runtime.hpm.offload() if e.event_type == EventType.HELPER_JOIN]
    detaches = [e for e in runtime.hpm.offload() if e.event_type == EventType.LOOP_DETACH]
    assert len(joins) == 3
    assert len(detaches) == 3


def test_barrier_waits_for_all_helpers():
    """BARRIER_EXIT comes after the last helper's LOOP_DETACH."""
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL, n_outer=7, n_inner=16, work_ns_per_iter=50_000
    )
    run(sim, runtime, [loop])
    events = runtime.hpm.offload()
    barrier_exit = max(
        e.timestamp_ns for e in events if e.event_type == EventType.BARRIER_EXIT
    )
    last_detach = max(
        e.timestamp_ns for e in events if e.event_type == EventType.LOOP_DETACH
    )
    assert barrier_exit >= last_detach


def test_cluster_only_loop_uses_main_cluster_only():
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(
        construct=LoopConstruct.CLUSTER_ONLY, n_inner=32, work_ns_per_iter=10_000
    )
    run(sim, runtime, [loop])
    events = runtime.hpm.offload()
    iter_ces = {e.processor_id for e in events if e.event_type == EventType.ITER_START}
    assert iter_ces  # executed
    assert all(ce < 8 for ce in iter_ces)  # only cluster 0 CEs
    types = [e.event_type for e in events]
    assert EventType.MC_LOOP_START in types
    assert EventType.MC_LOOP_END in types
    # No helpers involved: no joins.
    assert EventType.HELPER_JOIN not in types


def test_cdoacross_serialises_residue():
    """CDOACROSS with a serial fraction takes longer than pure CDOALL."""

    def ct_for(serial_fraction):
        sim, runtime = make_runtime(8)
        loop = ParallelLoop(
            construct=LoopConstruct.CDOACROSS,
            n_inner=64,
            work_ns_per_iter=100_000,
            serial_fraction=serial_fraction,
        )
        return run(sim, runtime, [loop])

    assert ct_for(0.5) > ct_for(0.0)


def test_multi_cluster_faster_than_single_cluster_for_parallel_work():
    def ct_for(n_proc):
        sim, runtime = make_runtime(n_proc)
        loop = ParallelLoop(
            construct=LoopConstruct.SDOALL,
            n_outer=16,
            n_inner=64,
            work_ns_per_iter=200_000,
        )
        return run(sim, runtime, [loop])

    assert ct_for(32) < ct_for(8) < ct_for(1)


def test_program_with_mixed_phases_completes():
    sim, runtime = make_runtime(16)
    phases = [
        SerialPhase(work_ns=500_000),
        ParallelLoop(
            construct=LoopConstruct.SDOALL, n_outer=4, n_inner=32, work_ns_per_iter=20_000
        ),
        SerialPhase(work_ns=200_000),
        ParallelLoop(construct=LoopConstruct.XDOALL, n_inner=64, work_ns_per_iter=20_000),
        ParallelLoop(
            construct=LoopConstruct.CLUSTER_ONLY, n_inner=16, work_ns_per_iter=20_000
        ),
    ]
    ct = run(sim, runtime, phases)
    assert ct > 700_000
    # Two spread loops -> two barriers on the main task.
    barriers = [
        e for e in runtime.hpm.offload() if e.event_type == EventType.BARRIER_ENTER
    ]
    assert len(barriers) == 2


def test_helper_wait_periods_bracket_loops():
    """Helpers alternate WAIT_WORK_ENTER/EXIT around each spread loop."""
    sim, runtime = make_runtime(16)
    phases = [
        ParallelLoop(
            construct=LoopConstruct.SDOALL, n_outer=4, n_inner=16, work_ns_per_iter=10_000
        ),
        ParallelLoop(construct=LoopConstruct.XDOALL, n_inner=32, work_ns_per_iter=10_000),
    ]
    run(sim, runtime, phases)
    helper_events = [
        e
        for e in runtime.hpm.offload()
        if e.processor_id == 8
        and e.event_type in (EventType.WAIT_WORK_ENTER, EventType.WAIT_WORK_EXIT)
    ]
    # enter/exit alternate, starting with enter: 3 waits (before loop 1,
    # before loop 2, before program end) -> 6 events.
    assert [e.event_type for e in helper_events] == [
        EventType.WAIT_WORK_ENTER,
        EventType.WAIT_WORK_EXIT,
    ] * 3


def test_loop_pages_fault_once():
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL,
        n_outer=4,
        n_inner=32,
        work_ns_per_iter=10_000,
        page_base=0,
        iters_per_page=8,
    )
    run(sim, runtime, [loop, loop])  # second execution touches warm pages
    vm = runtime.kernel.vm
    assert vm.resident_pages == loop.n_pages
    assert vm.stats.sequential + vm.stats.concurrent == loop.n_pages


def test_parallel_page_sweep_produces_concurrent_faults():
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(
        construct=LoopConstruct.XDOALL,
        n_inner=128,
        work_ns_per_iter=2_000,
        page_base=0,
        iters_per_page=16,
    )
    run(sim, runtime, [loop])
    assert runtime.kernel.vm.stats.concurrent > 0


def test_activity_board_sees_concurrency():
    sim, runtime = make_runtime(32)
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL,
        n_outer=8,
        n_inner=64,
        work_ns_per_iter=100_000,
    )
    run(sim, runtime, [loop])
    mean = runtime.board.mean_concurrency()
    assert mean > 4.0  # well beyond the 4 spinning lead CEs


def test_lead_ces_stay_active_during_serial():
    """During serial code, concurrency is 1 per cluster (Section 7)."""
    sim, runtime = make_runtime(32)

    observed = []

    def on_event(event):
        if event.event_type == EventType.SERIAL_START:
            observed.append(runtime.board.active_total())

    runtime.hpm.subscribe(on_event)
    run(sim, runtime, [SerialPhase(work_ns=1_000_000)])
    assert observed == [4]


def test_single_processor_run_executes_loops_serially():
    sim, runtime = make_runtime(1)
    loop = ParallelLoop(
        construct=LoopConstruct.SDOALL, n_outer=4, n_inner=8, work_ns_per_iter=10_000
    )
    ct = run(sim, runtime, [loop])
    assert ct >= loop.total_work_ns


def test_cdoacross_dependence_distance_limits_width():
    """A distance-2 CDOACROSS can use at most 2 CEs."""

    def ct_for(distance):
        sim, runtime = make_runtime(8)
        loop = ParallelLoop(
            construct=LoopConstruct.CDOACROSS,
            n_inner=64,
            work_ns_per_iter=100_000,
            dependence_distance=distance,
        )
        return run(sim, runtime, [loop])

    unconstrained = ct_for(0)
    narrow = ct_for(2)
    wide = ct_for(8)
    assert narrow > unconstrained * 2
    assert wide == unconstrained


def test_dependence_distance_validation():
    import pytest as _pytest

    with _pytest.raises(ValueError):
        ParallelLoop(
            construct=LoopConstruct.SDOALL,
            n_inner=8,
            work_ns_per_iter=1,
            dependence_distance=2,
        )
    with _pytest.raises(ValueError):
        ParallelLoop(
            construct=LoopConstruct.CDOACROSS,
            n_inner=8,
            work_ns_per_iter=1,
            dependence_distance=-1,
        )
