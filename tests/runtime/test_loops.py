"""Unit tests for loop and phase descriptors."""

import pytest

from repro.runtime import LoopConstruct, ParallelLoop, SerialPhase


def make_loop(**kwargs):
    defaults = dict(
        construct=LoopConstruct.SDOALL,
        n_inner=64,
        work_ns_per_iter=1000,
    )
    defaults.update(kwargs)
    return ParallelLoop(**defaults)


def test_loop_totals():
    loop = make_loop(n_outer=4, n_inner=16, work_ns_per_iter=10)
    assert loop.total_iterations == 64
    assert loop.total_work_ns == 640


def test_cluster_only_flag():
    assert make_loop(construct=LoopConstruct.CLUSTER_ONLY).is_main_cluster_only
    assert make_loop(construct=LoopConstruct.CDOACROSS).is_main_cluster_only
    assert not make_loop(construct=LoopConstruct.SDOALL).is_main_cluster_only
    assert not make_loop(construct=LoopConstruct.XDOALL).is_main_cluster_only


def test_cluster_only_rejects_outer_iterations():
    with pytest.raises(ValueError):
        make_loop(construct=LoopConstruct.CLUSTER_ONLY, n_outer=2)


def test_loop_validation():
    with pytest.raises(ValueError):
        make_loop(n_inner=0)
    with pytest.raises(ValueError):
        make_loop(n_outer=0)
    with pytest.raises(ValueError):
        make_loop(work_ns_per_iter=-1)
    with pytest.raises(ValueError):
        make_loop(mem_words_per_iter=-1)
    with pytest.raises(ValueError):
        make_loop(mem_rate=0.0)
    with pytest.raises(ValueError):
        make_loop(mem_rate=1.5)
    with pytest.raises(ValueError):
        make_loop(iters_per_page=0)
    with pytest.raises(ValueError):
        make_loop(serial_fraction=1.1)


def test_page_mapping_groups_iterations():
    loop = make_loop(n_inner=16, page_base=100, iters_per_page=4)
    assert loop.page_for_iteration(0, 0) == 100
    assert loop.page_for_iteration(0, 3) == 100
    assert loop.page_for_iteration(0, 4) == 101
    assert loop.n_pages == 4


def test_page_mapping_across_outer_iterations():
    loop = make_loop(n_outer=2, n_inner=8, page_base=0, iters_per_page=8)
    assert loop.page_for_iteration(0, 7) == 0
    assert loop.page_for_iteration(1, 0) == 1


def test_no_paging_when_disabled():
    loop = make_loop(page_base=-1)
    assert loop.page_for_iteration(0, 0) is None
    assert loop.n_pages == 0


def test_serial_phase_defaults_valid():
    phase = SerialPhase(work_ns=1000)
    assert phase.mem_words == 0
    assert phase.syscalls == 0


def test_serial_phase_validation():
    with pytest.raises(ValueError):
        SerialPhase(work_ns=-1)
    with pytest.raises(ValueError):
        SerialPhase(work_ns=0, mem_words=-1)
    with pytest.raises(ValueError):
        SerialPhase(work_ns=0, n_pages=-1)
    with pytest.raises(ValueError):
        SerialPhase(work_ns=0, syscalls=-1)
    with pytest.raises(ValueError):
        SerialPhase(work_ns=0, mem_rate=0.0)
