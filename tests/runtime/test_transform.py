"""Unit tests for the loop-merging transformation."""

import pytest

from repro.runtime import (
    LoopConstruct,
    ParallelLoop,
    SerialPhase,
    merge_adjacent_loops,
    mergeable,
)


def sdoall(n_outer=4, n_inner=16, work=1000, words=0, rate=0.5, label=""):
    return ParallelLoop(
        construct=LoopConstruct.SDOALL,
        n_outer=n_outer,
        n_inner=n_inner,
        work_ns_per_iter=work,
        mem_words_per_iter=words,
        mem_rate=rate,
        label=label,
    )


def xdoall(n_inner=64, work=1000, words=0, label=""):
    return ParallelLoop(
        construct=LoopConstruct.XDOALL,
        n_inner=n_inner,
        work_ns_per_iter=work,
        mem_words_per_iter=words,
        label=label,
    )


def test_mergeable_same_shape():
    assert mergeable(sdoall(), sdoall())
    assert mergeable(xdoall(), xdoall(n_inner=32))


def test_not_mergeable_across_constructs():
    assert not mergeable(sdoall(), xdoall())


def test_not_mergeable_different_inner():
    assert not mergeable(sdoall(n_inner=16), sdoall(n_inner=24))


def test_not_mergeable_cluster_only():
    mc = ParallelLoop(
        construct=LoopConstruct.CLUSTER_ONLY, n_inner=8, work_ns_per_iter=100
    )
    assert not mergeable(mc, mc)


def test_not_mergeable_different_rate():
    assert not mergeable(sdoall(rate=0.5), sdoall(rate=0.6))


def test_merge_sdoall_concatenates_outer():
    merged = merge_adjacent_loops([sdoall(n_outer=4, label="a"), sdoall(n_outer=6, label="b")])
    [loop] = merged
    assert loop.n_outer == 10
    assert loop.n_inner == 16
    assert loop.label == "a+b"


def test_merge_preserves_total_work():
    a = sdoall(n_outer=4, work=1000)
    b = sdoall(n_outer=4, work=3000)
    [loop] = merge_adjacent_loops([a, b])
    assert loop.n_outer * loop.n_inner * loop.work_ns_per_iter == (
        a.total_work_ns + b.total_work_ns
    )


def test_merge_xdoall_concatenates_iterations():
    [loop] = merge_adjacent_loops([xdoall(n_inner=64), xdoall(n_inner=32)])
    assert loop.n_inner == 96


def test_serial_phase_blocks_merging():
    phases = [sdoall(), SerialPhase(work_ns=100), sdoall()]
    merged = merge_adjacent_loops(phases)
    assert len(merged) == 3


def test_merge_runs_of_three():
    merged = merge_adjacent_loops([sdoall(), sdoall(), sdoall()])
    [loop] = merged
    assert loop.n_outer == 12


def test_input_list_unmodified():
    phases = [sdoall(), sdoall()]
    merge_adjacent_loops(phases)
    assert len(phases) == 2


def test_merged_program_reduces_barriers():
    """End to end: the merged program executes fewer finish barriers."""
    from repro.core import run_phases
    from repro.hpm.events import EventType

    phases = [sdoall(n_outer=8, n_inner=16, work=200_000) for _ in range(6)]
    plain = run_phases(phases, 32)
    fused = run_phases(merge_adjacent_loops(phases), 32)
    barriers_plain = sum(
        1 for e in plain.events if e.event_type == EventType.BARRIER_ENTER
    )
    barriers_fused = sum(
        1 for e in fused.events if e.event_type == EventType.BARRIER_ENTER
    )
    assert barriers_plain == 6
    assert barriers_fused == 1
    assert fused.ct_ns <= plain.ct_ns
