"""Property tests: the runtime/OS fast paths match the exact paths.

The batched engines (:mod:`repro.runtime.fastpath`,
:mod:`repro.xylem.fastpath`, the push-mode statfx sampler and the
compiled dispatch loop) exist purely for host speed: on a sink-free,
unperturbed, fault-free run they must reproduce the exact paths'
observable results bit for bit -- completion time, every
``RuntimeStats`` counter, the per-category Xylem time accounting, the
statfx concurrency integrals and the page-fault statistics.

Hypothesis drives random phase lists (spread loops, XDOALLs,
cluster-only loops, serial sections, paging patterns) through a full
stack twice -- once with every fast path armed, once with everything
forced exact via ``CEDAR_REPRO_FASTPATH=off`` -- and compares.
"""

from __future__ import annotations

import os
from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import run_phases
from repro.runtime.loops import LoopConstruct, ParallelLoop, SerialPhase
from repro.sim import Simulator
from repro.sim import core as sim_core
from repro.xylem.categories import OsActivity

# -- workload strategies ----------------------------------------------------

_serial_phases = st.builds(
    SerialPhase,
    work_ns=st.integers(min_value=0, max_value=200_000),
    page_base=st.just(-1),
)

_serial_paged = st.builds(
    SerialPhase,
    work_ns=st.integers(min_value=1_000, max_value=50_000),
    page_base=st.just(5000),
    n_pages=st.integers(min_value=1, max_value=6),
)


def _loop(construct: LoopConstruct, **overrides):
    defaults = dict(
        n_inner=st.integers(min_value=1, max_value=24),
        work_ns_per_iter=st.integers(min_value=50, max_value=5_000),
        work_skew=st.sampled_from([0.0, 0.2]),
    )
    defaults.update(overrides)
    return st.builds(ParallelLoop, construct=st.just(construct), **defaults)


_loops = st.one_of(
    _loop(
        LoopConstruct.SDOALL,
        n_outer=st.integers(min_value=1, max_value=6),
        n_inner=st.integers(min_value=1, max_value=12),
        page_base=st.sampled_from([-1, 0]),
        iters_per_page=st.sampled_from([4, 8]),
    ),
    _loop(
        LoopConstruct.XDOALL,
        n_inner=st.integers(min_value=1, max_value=40),
        page_base=st.sampled_from([-1, 1000]),
        iters_per_page=st.sampled_from([4, 8]),
    ),
    _loop(LoopConstruct.CLUSTER_ONLY),
    _loop(
        LoopConstruct.CDOACROSS,
        n_inner=st.integers(min_value=1, max_value=12),
        serial_fraction=st.sampled_from([0.0, 0.3]),
        dependence_distance=st.sampled_from([0, 2]),
    ),
)

_phase_lists = st.lists(
    st.one_of(_serial_phases, _serial_paged, _loops), min_size=1, max_size=3
)


# -- the A/B harness --------------------------------------------------------


def _run(phases, n_processors: int, exact: bool):
    """One full-stack run; *exact* kills every fast path via the env."""
    env = {"CEDAR_REPRO_FASTPATH": "off"} if exact else {}
    with mock.patch.dict(os.environ, env, clear=False):
        if not exact:
            os.environ.pop("CEDAR_REPRO_FASTPATH", None)
        return run_phases(list(phases), n_processors, statfx_interval_ns=50_000)


def _fingerprint(result) -> dict:
    """Everything the two modes must agree on."""
    st_ = result.runtime.stats
    sfx = result.statfx
    acct = result.accounting
    n_clusters = result.config.n_clusters
    return {
        "ct_ns": result.ct_ns,
        "runtime": {
            name: getattr(st_, name)
            for name in (
                "loops_posted",
                "helper_joins",
                "sdoall_pickups",
                "xdoall_pickups",
                "barriers",
                "serial_sections",
                "mc_loops",
                "detaches",
            )
        },
        "accounting": {
            activity.name: [
                acct.activity_ns(c, activity) for c in range(n_clusters)
            ]
            for activity in OsActivity
        },
        "faults": (
            result.fault_stats.sequential,
            result.fault_stats.concurrent,
            result.fault_stats.joined,
        ),
        "statfx": {
            "samples": sfx.samples,
            "total": sfx.total_concurrency(),
            "per_cluster": [
                sfx.cluster_concurrency(c) for c in range(n_clusters)
            ],
        },
    }


@settings(max_examples=40, deadline=None)
@given(phases=_phase_lists, n_processors=st.sampled_from([8, 32]))
def test_batched_matches_exact(phases, n_processors):
    fast = _run(phases, n_processors, exact=False)
    slow = _run(phases, n_processors, exact=True)
    assert fast.fastpath_modes["runtime"] == "batched"
    assert fast.fastpath_modes["statfx"] == "push"
    assert slow.fastpath_modes["runtime"] == "exact"
    assert slow.fastpath_modes["statfx"] == "exact"
    assert _fingerprint(fast) == _fingerprint(slow)


@settings(max_examples=15, deadline=None)
@given(phases=_phase_lists)
def test_compiled_loop_matches_pure(phases):
    """With the extension built, compiled and pure runs agree exactly."""
    if not sim_core.compiled_loop_active():
        return  # pure-Python environment: nothing to compare
    compiled = _run(phases, 8, exact=False)
    with mock.patch.dict(os.environ, {"CEDAR_REPRO_COMPILED": "0"}):
        pure = _run(phases, 8, exact=False)
    assert compiled.fastpath_modes["loop"] == "compiled"
    assert pure.fastpath_modes["loop"] == "pure"
    assert compiled.kernel_stats["pool.compiled_steps"] > 0
    assert pure.kernel_stats["pool.compiled_steps"] == 0
    fp_c, fp_p = _fingerprint(compiled), _fingerprint(pure)
    assert fp_c == fp_p
    # The Timeout pool behaves identically too.
    for key in ("pool.timeouts_created", "pool.timeouts_reused", "pool.ticks_rearmed"):
        assert compiled.kernel_stats[key] == pure.kernel_stats[key]


# -- fallback arming --------------------------------------------------------


def _barrier_workload():
    return [
        ParallelLoop(
            construct=LoopConstruct.SDOALL,
            n_outer=4,
            n_inner=8,
            work_ns_per_iter=1_000,
            work_skew=0.2,
        )
    ]


def test_env_kill_switch_forces_exact(monkeypatch):
    monkeypatch.setenv("CEDAR_REPRO_FASTPATH", "off")
    result = run_phases(_barrier_workload(), 32)
    assert result.fastpath_modes == {
        "memory": "exact",
        "runtime": "exact",
        "xylem": "exact",
        "statfx": "exact",
        "loop": "pure",
    }
    stats = result.runtime.fastpath.stats
    assert stats.lean_pickups == 0
    assert stats.lean_barrier_detaches == 0
    assert stats.exact_pickups > 0


def test_tie_perturbation_forces_exact():
    result = run_phases(_barrier_workload(), 32, tie_break_seed=7)
    assert result.fastpath_modes["runtime"] == "exact"
    assert result.fastpath_modes["xylem"] == "exact"
    assert result.fastpath_modes["statfx"] == "exact"
    assert result.fastpath_modes["loop"] == "pure"


def test_trace_sink_forces_exact():
    from repro.analyze.sanitize import DeterminismSink
    from repro.obs import Observability

    obs = Observability(extra_sinks=[DeterminismSink(order_capacity=0)])
    result = run_phases(_barrier_workload(), 32, obs=obs)
    assert result.fastpath_modes["runtime"] == "exact"
    assert result.fastpath_modes["statfx"] == "exact"
    assert result.fastpath_modes["loop"] == "pure"


def test_fault_campaign_sticky_disables_every_layer():
    from repro.faults import CampaignSpec, FaultEvent, FaultInjector

    spec = CampaignSpec(
        name="fp-disarm",
        faults=[FaultEvent(kind="lock_inflate", at_ns=1_000, factor=2.0)],
    )

    modes = {}

    def hook(sim, machine, kernel, runtime):
        FaultInjector(sim, machine, kernel, runtime, spec).arm()
        modes["runtime"] = runtime.fastpath.mode
        modes["xylem"] = kernel.fastpath.mode

    result = run_phases(_barrier_workload(), 32, pre_run_hook=hook)
    assert modes == {"runtime": "exact", "xylem": "exact"}
    assert result.runtime.fastpath.stats.lean_pickups == 0
    assert result.kernel.fastpath.stats.fused_spawns == 0


def test_runtime_engine_arming_rules(monkeypatch):
    from repro.runtime.fastpath import RuntimeFastPath
    from repro.xylem.fastpath import XylemFastPath

    sim = Simulator()
    assert RuntimeFastPath(sim).on
    assert XylemFastPath(sim).on
    sim2 = Simulator()
    sim2.perturb_tie_breaks(3)
    assert not RuntimeFastPath(sim2).on
    assert not XylemFastPath(sim2).on
    monkeypatch.setenv("CEDAR_REPRO_FASTPATH", "exact")
    sim3 = Simulator()
    assert not RuntimeFastPath(sim3).on
    engine = RuntimeFastPath(sim3)
    assert engine.mode == "exact"
    monkeypatch.delenv("CEDAR_REPRO_FASTPATH")
    engine.enable()
    assert engine.on
    engine.disable()
    assert not engine.on
    engine.enable()
    assert engine.on
