"""Kernel seams behind the perturbation sanitizer: eid scrambling and
the end-of-tick tail bands."""

from __future__ import annotations

import pytest

from repro.sim import SimulationError, Simulator


def _record(sim, log, tag, delay=0):
    def proc():
        yield sim.timeout(delay)
        log.append(tag)

    sim.process(proc(), name=tag)


# -- perturb_tie_breaks ------------------------------------------------------


def _tied_order(seed):
    sim = Simulator()
    if seed is not None:
        sim.perturb_tie_breaks(seed)
    log = []
    for tag in "abcdefgh":
        _record(sim, log, tag, delay=10)
    sim.run()
    return log


def test_natural_tie_break_is_insertion_order():
    assert _tied_order(None) == list("abcdefgh")


def test_perturbation_permutes_ties_reproducibly():
    first = _tied_order(3)
    assert sorted(first) == list("abcdefgh")  # a permutation, nothing lost
    assert first != list("abcdefgh")  # ...that actually permutes
    assert _tied_order(3) == first  # ...reproducibly


def test_different_seeds_give_different_permutations():
    permutations = {tuple(_tied_order(seed)) for seed in range(1, 6)}
    assert len(permutations) > 1


def test_perturbation_preserves_cross_time_order():
    sim = Simulator()
    sim.perturb_tie_breaks(7)
    log = []
    _record(sim, log, "late", delay=20)
    _record(sim, log, "early", delay=10)
    sim.run()
    assert log == ["early", "late"]


def test_perturbation_must_precede_scheduling():
    sim = Simulator()
    sim.timeout(5)
    with pytest.raises(SimulationError):
        sim.perturb_tie_breaks(1)


# -- tail bands --------------------------------------------------------------


def test_tail_event_runs_after_all_same_tick_events():
    sim = Simulator()
    log = []

    def observer():
        yield sim.timeout(10)
        yield sim.tail_event()
        log.append("tail")

    sim.process(observer(), name="observer")
    for tag in ("a", "b"):
        _record(sim, log, tag, delay=10)
    sim.run()
    assert log == ["a", "b", "tail"]


def test_tail_event_outruns_perturbation():
    """Tail entries lose every tie even under eid scrambling."""
    for seed in range(1, 6):
        sim = Simulator()
        sim.perturb_tie_breaks(seed)
        log = []

        def observer():
            yield sim.timeout(10)
            yield sim.tail_event()
            log.append("tail")

        sim.process(observer(), name="observer")
        for tag in "abcd":
            _record(sim, log, tag, delay=10)
        sim.run()
        assert log[-1] == "tail"
        assert sorted(log[:-1]) == list("abcd")


def test_observe_band_runs_after_commit_band():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(10)
        # Observe scheduled *before* the commit: band, not insertion
        # order, decides.
        yield sim.tail_event(observe=True)
        log.append("observe")

    sim.process(proc(), name="p")

    def committer():
        yield sim.timeout(10)
        sim.call_at_tail(lambda event: log.append("commit"))

    sim.process(committer(), name="c")
    sim.run()
    assert log == ["commit", "observe"]


def test_call_at_tail_sees_all_same_tick_mutations():
    sim = Simulator()
    counter = {"n": 0}
    seen = []

    def bump(tag, delay):
        def proc():
            yield sim.timeout(delay)
            counter["n"] += 1

        sim.process(proc(), name=tag)

    def arm():
        yield sim.timeout(10)
        sim.call_at_tail(lambda event: seen.append(counter["n"]))

    sim.process(arm(), name="arm")
    for index in range(3):
        bump(f"bump{index}", 10)
    sim.run()
    assert seen == [3]


def test_tail_events_of_one_tick_run_in_scheduling_order():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(5)
        sim.call_at_tail(lambda event: log.append("first"))
        sim.call_at_tail(lambda event: log.append("second"))

    sim.process(proc(), name="p")
    sim.run()
    assert log == ["first", "second"]
