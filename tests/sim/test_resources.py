"""Unit tests for simulation resources (Resource, PriorityResource, Store, Gate)."""

import pytest

from repro.sim import Gate, PriorityResource, Resource, Simulator, Store


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_release_grants_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered
    assert res.count == 1


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, res, tag, hold):
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(hold)
        res.release(req)

    for tag in range(4):
        sim.process(user(sim, res, tag, hold=10))
    sim.run()
    assert order == [0, 1, 2, 3]
    assert sim.now == 40


def test_resource_release_queued_request_withdraws_it():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # withdraw while queued
    assert res.queue_length == 0
    res.release(r1)
    assert res.count == 0


def test_resource_release_unknown_request_is_noop():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    other = Resource(sim, capacity=1).request()
    res.release(other)  # not ours: must not disturb state
    assert res.count == 1
    res.release(r1)


def test_request_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def user(sim, res, tag):
        with res.request() as req:
            yield req
            log.append(tag)
            yield sim.timeout(5)

    sim.process(user(sim, res, "a"))
    sim.process(user(sim, res, "b"))
    sim.run()
    assert log == ["a", "b"]
    assert res.count == 0


def test_resource_acquire_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    times = []

    def user(sim, res):
        req = yield from res.acquire()
        yield sim.timeout(7)
        res.release(req)
        times.append(sim.now)

    sim.process(user(sim, res))
    sim.process(user(sim, res))
    sim.run()
    assert times == [7, 14]


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def user(sim, res, tag, priority):
        req = res.request(priority=priority)
        yield req
        order.append(tag)
        yield sim.timeout(1)
        res.release(req)

    def spawn(sim):
        # Occupy the resource, then queue contenders with priorities.
        req = res.request(priority=0)
        yield req
        sim.process(user(sim, res, "low", 5))
        sim.process(user(sim, res, "high", 1))
        sim.process(user(sim, res, "mid", 3))
        yield sim.timeout(10)
        res.release(req)

    sim.process(spawn(sim))
    sim.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    holder = res.request(priority=0)
    reqs = [res.request(priority=1) for _ in range(3)]
    res.release(holder)
    assert reqs[0].triggered
    assert not reqs[1].triggered


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    assert got.triggered
    assert got.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim, store):
        item = yield store.get()
        received.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(5)
        store.put("item")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert received == [(5, "item")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for i in range(3):
        store.put(i)
    assert [store.get().value for _ in range(3)] == [0, 1, 2]


def test_store_bounded_put_blocks():
    sim = Simulator()
    store = Store(sim, capacity=1)
    p1 = store.put("a")
    p2 = store.put("b")
    assert p1.triggered
    assert not p2.triggered
    got = store.get()
    assert got.value == "a"
    assert p2.triggered
    assert store.get().value == "b"


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == [1, 2]


def test_gate_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim)
    log = []

    def waiter(sim, gate, tag):
        yield gate.wait()
        log.append((tag, sim.now))

    def opener(sim, gate):
        yield sim.timeout(8)
        gate.open()

    sim.process(waiter(sim, gate, "a"))
    sim.process(waiter(sim, gate, "b"))
    sim.process(opener(sim, gate))
    sim.run()
    assert log == [("a", 8), ("b", 8)]


def test_gate_open_passes_value_and_reuse():
    sim = Simulator()
    gate = Gate(sim)
    log = []

    def waiter(sim, gate):
        value = yield gate.wait()
        log.append(value)
        gate.close()
        value = yield gate.wait()
        log.append(value)

    def opener(sim, gate):
        yield sim.timeout(1)
        gate.open("first")
        yield sim.timeout(1)
        gate.open("second")

    sim.process(waiter(sim, gate))
    sim.process(opener(sim, gate))
    sim.run()
    assert log == ["first", "second"]


def test_gate_initially_open_does_not_block():
    sim = Simulator()
    gate = Gate(sim, open_=True)
    assert gate.is_open
    event = gate.wait()
    assert event.triggered
