"""Failure-path coverage for the simulation kernel's error types.

Covers :class:`Interrupt` delivery into a waiting process, ``fail()``
on an un-defused event propagating out of :meth:`Simulator.run`, and
:class:`EmptySchedule` behaviour.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.sim.errors import (
    EmptySchedule,
    Interrupt,
    SimulationError,
    StopSimulation,
)

# -- Interrupt delivery ------------------------------------------------------


def test_interrupt_delivered_into_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(1000)
            log.append("finished")
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, sim.now))

    def interrupter(sim, victim):
        yield sim.timeout(10)
        victim.interrupt(cause="wakeup")

    victim = sim.process(sleeper(sim), name="sleeper")
    sim.process(interrupter(sim, victim), name="interrupter")
    sim.run()
    assert log == [("interrupted", "wakeup", 10)]


def test_interrupt_cause_defaults_to_none():
    assert Interrupt().cause is None
    assert Interrupt("why").cause == "why"


def test_interrupted_process_can_resume_waiting():
    """After handling the Interrupt a process keeps running normally."""
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(1000)
        except Interrupt:
            pass
        yield sim.timeout(5)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(10)
        victim.interrupt()

    victim = sim.process(sleeper(sim), name="sleeper")
    sim.process(interrupter(sim, victim), name="interrupter")
    sim.run()
    assert log == [15]


def test_interrupting_terminated_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError, match="terminated"):
        proc.interrupt()


def test_process_cannot_interrupt_itself():
    sim = Simulator()
    caught = []

    def selfish(sim):
        me = sim.active_process
        try:
            me.interrupt()
        except SimulationError as exc:
            caught.append(str(exc))
        yield sim.timeout(1)

    sim.process(selfish(sim))
    sim.run()
    assert caught and "not allowed to interrupt itself" in caught[0]


# -- fail() propagation ------------------------------------------------------


def test_undefused_failed_event_crashes_run():
    """fail() with nobody waiting propagates out of Simulator.run()."""
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("nobody handled me"))
    with pytest.raises(RuntimeError, match="nobody handled me"):
        sim.run()


def test_defused_failed_event_does_not_crash_run():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("handled"))
    event.defuse()
    sim.run()  # no raise


def test_failed_event_reraises_inside_waiting_process():
    sim = Simulator()
    caught = []

    def waiter(sim, event):
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    event = sim.event()
    sim.process(waiter(sim, event), name="waiter")

    def failer(sim, event):
        yield sim.timeout(3)
        event.fail(RuntimeError("boom"))

    sim.process(failer(sim, event), name="failer")
    sim.run()
    assert caught == ["boom"]


def test_crashing_process_propagates_if_unwaited():
    sim = Simulator()

    def crasher(sim):
        yield sim.timeout(1)
        raise ValueError("process crashed")

    sim.process(crasher(sim))
    with pytest.raises(ValueError, match="process crashed"):
        sim.run()


def test_fail_requires_an_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_double_trigger_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError, match="already been triggered"):
        event.succeed(2)
    with pytest.raises(SimulationError, match="already been triggered"):
        event.fail(RuntimeError("late"))


# -- EmptySchedule -----------------------------------------------------------


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_run_returns_none_when_schedule_drains():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(2)

    sim.process(quick(sim))
    assert sim.run() is None
    assert sim.now == 2


def test_run_until_event_that_never_triggers_raises():
    sim = Simulator()
    never = sim.event()

    def quick(sim):
        yield sim.timeout(2)

    sim.process(quick(sim))
    with pytest.raises(SimulationError, match="until-event has not triggered"):
        sim.run(until=never)


def test_empty_schedule_is_a_simulation_error():
    assert issubclass(EmptySchedule, SimulationError)


def test_stop_simulation_carries_value():
    stop = StopSimulation("payload")
    assert stop.value == "payload"
