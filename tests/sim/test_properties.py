"""Property-based tests of the discrete-event kernel's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_clock_is_monotone_under_arbitrary_timeouts(delays):
    """However timeouts interleave, observed time never goes backwards
    and ends at the maximum delay."""
    sim = Simulator()
    observed = []

    def waiter(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@given(delays=st.lists(st.integers(1, 100), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_sequential_waits_sum(delays):
    """A chain of timeouts takes exactly the sum of its delays."""
    sim = Simulator()

    def chain():
        for delay in delays:
            yield sim.timeout(delay)

    proc = sim.process(chain())
    sim.run(until=proc)
    assert sim.now == sum(delays)


@given(
    capacity=st.integers(1, 8),
    holds=st.lists(st.integers(1, 50), min_size=1, max_size=25),
)
@settings(max_examples=100, deadline=None)
def test_resource_never_overcommits(capacity, holds):
    """At no instant do more than `capacity` users hold the resource,
    and every requester is eventually served."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    served = []
    max_seen = [0]

    def user(tag, hold):
        request = resource.request()
        yield request
        max_seen[0] = max(max_seen[0], resource.count)
        assert resource.count <= capacity
        yield sim.timeout(hold)
        resource.release(request)
        served.append(tag)

    for tag, hold in enumerate(holds):
        sim.process(user(tag, hold))
    sim.run()
    assert sorted(served) == list(range(len(holds)))
    assert max_seen[0] <= capacity
    assert resource.count == 0


@given(
    capacity=st.integers(1, 8),
    holds=st.lists(st.integers(1, 20), min_size=2, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_unit_resource_serialises_total_time(capacity, holds):
    """With capacity 1, total elapsed time equals the sum of holds."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def user(hold):
        request = resource.request()
        yield request
        yield sim.timeout(hold)
        resource.release(request)

    procs = [sim.process(user(h)) for h in holds]
    sim.run(until=sim.all_of(procs))
    assert sim.now == sum(holds)


@given(items=st.lists(st.integers(), min_size=0, max_size=30))
@settings(max_examples=100, deadline=None)
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
            yield sim.timeout(1)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items


@given(
    n_processes=st.integers(1, 10),
    n_rounds=st.integers(1, 5),
)
@settings(max_examples=50, deadline=None)
def test_all_of_barrier_synchronises(n_processes, n_rounds):
    """Repeated all_of joins: every round ends at the slowest member."""
    sim = Simulator()
    log = []

    def worker(tag, round_no):
        yield sim.timeout((tag + 1) * 10)
        return tag

    def coordinator():
        for round_no in range(n_rounds):
            procs = [sim.process(worker(t, round_no)) for t in range(n_processes)]
            yield sim.all_of(procs)
            log.append(sim.now)

    proc = sim.process(coordinator())
    sim.run(until=proc)
    assert log == [n_processes * 10 * (r + 1) for r in range(n_rounds)]


@given(seed_delays=st.lists(st.integers(0, 50), min_size=1, max_size=15))
@settings(max_examples=50, deadline=None)
def test_determinism(seed_delays):
    """Two identical simulations produce identical event orders."""

    def run_once():
        sim = Simulator()
        order = []

        def waiter(tag, delay):
            yield sim.timeout(delay)
            order.append((tag, sim.now))

        for tag, delay in enumerate(seed_delays):
            sim.process(waiter(tag, delay))
        sim.run()
        return order

    assert run_once() == run_once()
