"""Behavioural coverage of the kernel's fast paths.

The direct-delay yield protocol (``yield n`` for ``sim.timeout(n)``),
the recycled per-process Timeout carrier, the Timeout free-list pool,
and the ``timeouts_created`` / ``timeouts_reused`` / ``ticks_rearmed``
counters -- on both the sink-free and the traced event loops.
"""

from __future__ import annotations

import pytest

from repro.analyze import DeterminismSink
from repro.sim import Simulator
from repro.sim.errors import Interrupt


def test_direct_delay_advances_time_and_returns_none():
    sim = Simulator()
    log = []

    def proc(sim):
        got = yield 7
        log.append((sim.now, got))
        got = yield 0  # zero-delay yields are legal, like timeout(0)
        log.append((sim.now, got))

    sim.process(proc(sim), name="p")
    sim.run()
    assert log == [(7, None), (7, None)]
    assert sim.SUPPORTS_DIRECT_DELAY is True


def test_direct_delay_matches_timeout_schedule():
    """``yield n`` and ``yield sim.timeout(n)`` produce one schedule."""
    def body(sim, direct):
        for delay in (3, 5, 2):
            if direct:
                yield delay
            else:
                yield sim.timeout(delay)

    hashes = []
    for direct in (True, False):
        sink = DeterminismSink()
        sim = Simulator(trace_sink=sink)
        sim.process(body(sim, direct), name="p")
        sim.run()
        assert sim.now == 10
        hashes.append(sink.schedule_hash)
    assert hashes[0] == hashes[1]


def test_negative_direct_delay_crashes_the_process():
    sim = Simulator()

    def proc(sim):
        yield -1

    sim.process(proc(sim), name="bad")
    with pytest.raises(ValueError, match="negative delay"):
        sim.run()


def test_no_stale_value_after_valued_timeout():
    """The recycled carrier must not leak a previous timeout's value."""
    sim = Simulator()
    log = []

    def proc(sim):
        got = yield sim.timeout(3, value="payload")
        log.append(got)
        got = yield 4
        log.append(got)
        got = yield sim.timeout(1)
        log.append(got)

    sim.process(proc(sim), name="p")
    sim.run()
    assert log == ["payload", None, None]


def test_interrupt_during_direct_delay():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield 1000
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))
        yield 5  # the carrier must still be usable afterwards
        log.append(sim.now)

    def interrupter(sim, victim):
        yield 10
        victim.interrupt(cause="wakeup")

    victim = sim.process(sleeper(sim), name="sleeper")
    sim.process(interrupter(sim, victim), name="interrupter")
    sim.run()
    assert log == [(10, "wakeup"), 15]


@pytest.mark.parametrize("traced", [False, True])
def test_tick_rearm_counters(traced):
    """A long direct-delay chain re-arms one Timeout, allocating none.

    Holds on the sink-free loop and on the traced (watched) loop.
    """
    sink = DeterminismSink() if traced else None
    sim = Simulator(trace_sink=sink)

    def chain(sim):
        for _ in range(500):
            yield 2

    sim.process(chain(sim), name="chain")
    sim.run()
    assert sim.now == 1000
    assert sim.ticks_rearmed >= 499
    # One Initialize-era allocation at most; the chain itself recycles.
    assert sim.timeouts_created <= 1
    if traced:
        assert sink.events_processed > 0


def test_timeout_pool_reuses_completed_timeouts():
    sim = Simulator()

    def serial(sim):
        for _ in range(50):
            yield sim.timeout(1)

    sim.process(serial(sim), name="serial")
    sim.run()
    assert sim.timeouts_reused > 0
    assert sim.timeouts_created + sim.timeouts_reused >= 50


def test_simulator_has_slots():
    """The hot-loop object stays dict-free (attribute layout is fixed)."""
    sim = Simulator()
    assert not hasattr(sim, "__dict__")
    with pytest.raises(AttributeError):
        sim.no_such_attribute = 1
