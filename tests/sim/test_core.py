"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    EmptySchedule,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_clock_starts_at_initial_time():
    sim = Simulator(initial_time=42)
    assert sim.now == 42


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 10


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_value_is_delivered():
    sim = Simulator()
    seen = []

    def proc(sim):
        value = yield sim.timeout(5, value="hello")
        seen.append(value)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["hello"]


def test_run_until_time():
    sim = Simulator()

    def ticker(sim):
        while True:
            yield sim.timeout(10)

    sim.process(ticker(sim))
    sim.run(until=35)
    assert sim.now == 35


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(3)
        return "done"

    p = sim.process(proc(sim))
    result = sim.run(until=p)
    assert result == "done"
    assert sim.now == 3


def test_run_until_past_time_raises():
    sim = Simulator(initial_time=100)
    with pytest.raises(ValueError):
        sim.run(until=50)


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_events_processed_in_time_order():
    sim = Simulator()
    order = []

    def waiter(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(sim, 30, "c"))
    sim.process(waiter(sim, 10, "a"))
    sim.process(waiter(sim, 20, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    """Events scheduled for the same instant run in scheduling order."""
    sim = Simulator()
    order = []

    def waiter(sim, tag):
        yield sim.timeout(10)
        order.append(tag)

    for tag in range(5):
        sim.process(waiter(sim, tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_waits_for_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(7)
        return 99

    def parent(sim):
        value = yield sim.process(child(sim))
        return value + 1

    p = sim.process(parent(sim))
    assert sim.run(until=p) == 100


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    event = sim.event()
    seen = []

    def waiter(sim):
        value = yield event
        seen.append(value)

    def trigger(sim):
        yield sim.timeout(5)
        event.succeed("signal")

    sim.process(waiter(sim))
    sim.process(trigger(sim))
    sim.run()
    assert seen == ["signal"]
    assert sim.now == 5


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_value_unavailable_before_trigger():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    event = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger(sim):
        yield sim.timeout(1)
        event.fail(RuntimeError("boom"))

    sim.process(waiter(sim))
    sim.process(trigger(sim))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_crashes_simulation():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_defused_failed_event_does_not_crash():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("defused"))
    event.defuse()
    sim.run()  # must not raise


def test_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_crashing_process_propagates():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise ValueError("crash")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="crash"):
        sim.run()


def test_crashing_process_caught_by_waiter():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1)
        raise ValueError("crash")

    def guard(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(guard(sim))
    sim.run()
    assert caught == ["crash"]


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(sim, victim):
        yield sim.timeout(10)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(10, "wake up")]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_cannot_interrupt_itself():
    sim = Simulator()
    errors = []

    def selfish(sim):
        yield sim.timeout(0)
        me = sim.active_process
        try:
            me.interrupt()
        except SimulationError:
            errors.append(True)

    sim.process(selfish(sim))
    sim.run()
    assert errors == [True]


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        yield sim.timeout(5)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(10)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [15]


def test_all_of_waits_for_all():
    sim = Simulator()
    finished = []

    def proc(sim):
        a = sim.timeout(10, value="a")
        b = sim.timeout(20, value="b")
        values = yield sim.all_of([a, b])
        finished.append(sorted(values.values()))

    sim.process(proc(sim))
    sim.run()
    assert finished == [["a", "b"]]
    assert sim.now == 20


def test_any_of_waits_for_first():
    sim = Simulator()
    finished = []

    def proc(sim):
        a = sim.timeout(10, value="a")
        b = sim.timeout(20, value="b")
        values = yield sim.any_of([a, b])
        finished.append(list(values.values()))

    sim.process(proc(sim))
    sim.run(until=15)
    assert finished == [["a"]]


def test_and_operator():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5) & sim.timeout(9)
        return sim.now

    p = sim.process(proc(sim))
    assert sim.run(until=p) == 9


def test_or_operator():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5) | sim.timeout(9)
        return sim.now

    p = sim.process(proc(sim))
    assert sim.run(until=p) == 5


def test_empty_all_of_triggers_immediately():
    sim = Simulator()

    def proc(sim):
        value = yield sim.all_of([])
        return value

    p = sim.process(proc(sim))
    assert sim.run(until=p) == {}


def test_condition_over_mixed_simulators_rejected():
    sim1 = Simulator()
    sim2 = Simulator()
    with pytest.raises(SimulationError):
        sim1.all_of([sim1.timeout(1), sim2.timeout(1)])


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(25)
    # Initialize events etc. may precede; peek is the earliest.
    assert sim.peek() <= 25


def test_yield_already_processed_event_continues_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("past")
    values = []

    def late_waiter(sim):
        yield sim.timeout(10)  # event is processed long before this
        value = yield event
        values.append((sim.now, value))

    sim.process(late_waiter(sim))
    sim.run()
    assert values == [(10, "past")]


def test_nested_processes_deep_chain():
    sim = Simulator()

    def leaf(sim):
        yield sim.timeout(1)
        return 1

    def chain(sim, depth):
        if depth == 0:
            value = yield sim.process(leaf(sim))
        else:
            value = yield sim.process(chain(sim, depth - 1))
        return value + 1

    p = sim.process(chain(sim, 20))
    assert sim.run(until=p) == 22


def test_event_repr_shows_state():
    sim = Simulator()
    event = sim.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
