"""Tests for the Simulator.run watchdog and until-event failure propagation."""

import pytest

from repro.sim import RunawaySimulation, Simulator


def _ticker(sim, period=10):
    while True:
        yield sim.timeout(period)


def _finite(sim, steps=5):
    for _ in range(steps):
        yield sim.timeout(10)
    return sim.now


def test_max_events_raises_runaway():
    sim = Simulator()
    sim.process(_ticker(sim))
    with pytest.raises(RunawaySimulation) as excinfo:
        sim.run(max_events=100)
    err = excinfo.value
    assert err.events_processed == 100
    assert "max_events=100" in str(err)
    assert err.last_event is not None


def test_max_sim_time_raises_runaway():
    sim = Simulator()
    sim.process(_ticker(sim, period=1000))
    with pytest.raises(RunawaySimulation) as excinfo:
        sim.run(max_sim_time=5000)
    err = excinfo.value
    assert err.sim_time_ns <= 5000
    assert "max_sim_time=5000" in str(err)


def test_generous_limits_do_not_interfere():
    sim = Simulator()
    proc = sim.process(_finite(sim))
    value = sim.run(until=proc, max_events=10_000, max_sim_time=10_000_000)
    assert value == 50
    assert sim.now == 50


def test_invalid_watchdog_arguments_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.run(max_events=0)
    with pytest.raises(ValueError):
        sim.run(max_sim_time=-1)


def test_failed_until_event_propagates_exception():
    """A crashing main process must raise out of run(), not return."""

    class Boom(Exception):
        pass

    def crasher(sim):
        yield sim.timeout(5)
        raise Boom("the main process died")

    sim = Simulator()
    proc = sim.process(crasher(sim))
    with pytest.raises(Boom, match="the main process died"):
        sim.run(until=proc)
