"""Unit tests for OS time accounting and category mapping."""

import pytest

from repro.hardware import paper_configuration
from repro.xylem import OsActivity, TimeAccounting, TimeCategory, activity_category


@pytest.fixture
def accounting():
    return TimeAccounting(paper_configuration(32))


def test_cpi_is_interrupt_everything_else_system():
    assert activity_category(OsActivity.CPI) is TimeCategory.INTERRUPT
    for activity in OsActivity:
        if activity is not OsActivity.CPI:
            assert activity_category(activity) is TimeCategory.SYSTEM


def test_charge_accumulates(accounting):
    accounting.charge(0, OsActivity.CTX, 100)
    accounting.charge(0, OsActivity.CTX, 50)
    assert accounting.activity_ns(0, OsActivity.CTX) == 150
    assert accounting.activity_count(0, OsActivity.CTX) == 2


def test_charge_negative_rejected(accounting):
    with pytest.raises(ValueError):
        accounting.charge(0, OsActivity.CTX, -1)
    with pytest.raises(ValueError):
        accounting.charge_kspin(0, -1)


def test_per_cluster_isolation(accounting):
    accounting.charge(1, OsActivity.AST, 70)
    assert accounting.activity_ns(0, OsActivity.AST) == 0
    assert accounting.activity_ns(1, OsActivity.AST) == 70
    assert accounting.activity_total_ns(OsActivity.AST) == 70


def test_category_sums(accounting):
    accounting.charge(0, OsActivity.CTX, 100)
    accounting.charge(0, OsActivity.SYSCALL_CLUSTER, 30)
    accounting.charge(0, OsActivity.CPI, 40)
    accounting.charge_kspin(0, 5)
    assert accounting.category_ns(0, TimeCategory.SYSTEM) == 130
    assert accounting.category_ns(0, TimeCategory.INTERRUPT) == 40
    assert accounting.category_ns(0, TimeCategory.KSPIN) == 5
    assert accounting.os_total_ns(0) == 175


def test_user_category_query_rejected(accounting):
    with pytest.raises(ValueError):
        accounting.category_ns(0, TimeCategory.USER)


def test_breakdown_sums_to_wall_time(accounting):
    accounting.charge(0, OsActivity.CTX, 100)
    accounting.charge(0, OsActivity.CPI, 40)
    accounting.charge_kspin(0, 10)
    breakdown = accounting.breakdown(0, wall_ns=1000)
    assert breakdown[TimeCategory.USER] == 850
    assert sum(breakdown.values()) == 1000


def test_breakdown_rejects_overrun(accounting):
    accounting.charge(0, OsActivity.CTX, 2000)
    with pytest.raises(ValueError):
        accounting.breakdown(0, wall_ns=1000)


def test_table2_totals(accounting):
    accounting.charge(0, OsActivity.PGFLT_CONCURRENT, 11)
    accounting.charge(3, OsActivity.PGFLT_CONCURRENT, 22)
    table = accounting.table2_ns()
    assert table[OsActivity.PGFLT_CONCURRENT] == 33
    assert table[OsActivity.AST] == 0
    assert set(table) == set(OsActivity)
