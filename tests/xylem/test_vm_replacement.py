"""Tests for page replacement under memory pressure."""

import pytest

from repro.hardware import paper_configuration
from repro.sim import Simulator
from repro.xylem import TimeAccounting, VirtualMemory, XylemParams


def make_vm(max_pages=None):
    sim = Simulator()
    accounting = TimeAccounting(paper_configuration(32))
    vm = VirtualMemory(
        sim, accounting, XylemParams(), max_resident_pages=max_pages
    )
    return sim, vm


def touch_all(sim, vm, pages):
    proc = sim.process(vm.touch_many(0, pages))
    sim.run(until=proc)


def test_unbounded_by_default():
    sim, vm = make_vm()
    touch_all(sim, vm, range(100))
    assert vm.resident_pages == 100
    assert vm.stats.evictions == 0


def test_validation():
    with pytest.raises(ValueError):
        make_vm(max_pages=0)


def test_eviction_caps_resident_set():
    sim, vm = make_vm(max_pages=10)
    touch_all(sim, vm, range(25))
    assert vm.resident_pages == 10
    assert vm.stats.evictions == 15


def test_fifo_eviction_order():
    sim, vm = make_vm(max_pages=4)
    touch_all(sim, vm, [0, 1, 2, 3, 4])
    assert not vm.is_resident(0)  # oldest evicted
    assert vm.is_resident(4)


def test_evicted_page_faults_again():
    sim, vm = make_vm(max_pages=4)
    touch_all(sim, vm, [0, 1, 2, 3, 4])
    faults_before = vm.stats.sequential
    touch_all(sim, vm, [0])  # was evicted: new fault
    assert vm.stats.sequential == faults_before + 1


def test_cyclic_thrash_faults_every_round():
    """A cyclic sweep over 2x the resident limit faults every touch."""
    sim, vm = make_vm(max_pages=8)
    touch_all(sim, vm, range(16))
    before = vm.stats.sequential
    touch_all(sim, vm, range(16))
    assert vm.stats.sequential == before + 16


def test_writeback_charged_on_eviction():
    sim, vm = make_vm(max_pages=2)
    from repro.xylem import OsActivity

    touch_all(sim, vm, range(5))
    seq_ns = vm.accounting.activity_ns(0, OsActivity.PGFLT_SEQUENTIAL)
    expected = 5 * vm.params.pgflt_sequential_cost_ns + 3 * vm.params.page_writeback_cost_ns
    assert seq_ns == expected


def test_prefault_respects_limit():
    sim, vm = make_vm(max_pages=4)
    vm.prefault(range(10))
    assert vm.resident_pages == 4
