"""Unit tests for the Xylem kernel: freezes, CPIs, syscalls, daemons."""

import pytest

from repro.hardware import paper_configuration
from repro.hpm import CedarHpm, EventType
from repro.sim import Simulator
from repro.xylem import OsActivity, TimeCategory, XylemKernel, XylemParams


def make_kernel(n_proc=32, **param_kwargs):
    sim = Simulator()
    config = paper_configuration(n_proc)
    kernel = XylemKernel(sim, config, XylemParams(**param_kwargs))
    return sim, kernel


def test_cluster_state_freeze_nesting():
    sim, kernel = make_kernel()
    state = kernel.clusters[0]
    state.freeze()
    state.freeze()
    assert state.frozen
    state.unfreeze()
    assert state.frozen
    state.unfreeze()
    assert not state.frozen


def test_unfreeze_underflow_rejected():
    sim, kernel = make_kernel()
    with pytest.raises(ValueError):
        kernel.clusters[0].unfreeze()


def test_frozen_time_accumulates():
    sim, kernel = make_kernel()
    state = kernel.clusters[0]

    def proc(sim):
        state.freeze()
        yield sim.timeout(100)
        state.unfreeze()
        yield sim.timeout(50)
        state.freeze()
        yield sim.timeout(30)
        state.unfreeze()

    sim.process(proc(sim))
    sim.run()
    assert state.frozen_cum_ns() == 130


def test_execute_without_os_activity_takes_exact_time():
    sim, kernel = make_kernel()
    proc = sim.process(kernel.execute(0, work_ns=5000))
    elapsed = sim.run(until=proc)
    assert elapsed == 5000
    assert sim.now == 5000


def test_execute_zero_work():
    sim, kernel = make_kernel()
    proc = sim.process(kernel.execute(0, work_ns=0))
    sim.run(until=proc)
    assert sim.now == 0


def test_execute_negative_work_rejected():
    sim, kernel = make_kernel()
    with pytest.raises(ValueError):
        list(kernel.execute(0, -1))


def test_execute_stretched_by_freeze():
    """User work is padded by exactly the frozen time during it."""
    sim, kernel = make_kernel()
    state = kernel.clusters[0]

    def freezer(sim):
        yield sim.timeout(100)
        state.freeze()
        yield sim.timeout(40)
        state.unfreeze()

    sim.process(freezer(sim))
    proc = sim.process(kernel.execute(0, work_ns=1000))
    elapsed = sim.run(until=proc)
    assert elapsed == 1040


def test_execute_waits_out_initial_freeze():
    sim, kernel = make_kernel()
    state = kernel.clusters[0]
    state.freeze()

    def unfreezer(sim):
        yield sim.timeout(70)
        state.unfreeze()

    sim.process(unfreezer(sim))
    proc = sim.process(kernel.execute(0, work_ns=100))
    sim.run(until=proc)
    assert sim.now == 170


def test_execute_on_other_cluster_unaffected_by_freeze():
    sim, kernel = make_kernel()
    kernel.clusters[1].freeze()
    proc = sim.process(kernel.execute(0, work_ns=100))
    sim.run(until=proc)
    assert sim.now == 100


def test_cpi_gather_accounts_wall_cost():
    sim, kernel = make_kernel(32)
    proc = sim.process(kernel.cpi_gather(2))
    sim.run(until=proc)
    # The CEs save/restore in parallel: the cluster is frozen (and the
    # ledger charged) one per-CE cost plus the bus sync window.
    expected = kernel.params.cpi_per_ce_cost_ns + kernel.params.cpi_sync_ns
    assert kernel.accounting.activity_ns(2, OsActivity.CPI) == expected
    assert sim.now == expected


def test_cpi_gather_freezes_user_work():
    sim, kernel = make_kernel()

    def os_activity(sim):
        yield sim.timeout(10)
        yield sim.process(kernel.cpi_gather(0))

    sim.process(os_activity(sim))
    proc = sim.process(kernel.execute(0, work_ns=1000))
    elapsed = sim.run(until=proc)
    freeze = kernel.params.cpi_per_ce_cost_ns + kernel.params.cpi_sync_ns
    assert elapsed == 1000 + freeze


def test_context_switch_charges_ctx_and_cpi():
    sim, kernel = make_kernel()
    proc = sim.process(kernel.context_switch(1))
    sim.run(until=proc)
    assert kernel.accounting.activity_ns(1, OsActivity.CTX) == kernel.params.ctx_cost_ns
    assert kernel.accounting.activity_ns(1, OsActivity.CPI) > 0
    assert kernel.accounting.activity_ns(1, OsActivity.CRSECT_CLUSTER) > 0


def test_cluster_syscall_charges():
    sim, kernel = make_kernel(syscall_cpi_fraction=0.0)
    proc = sim.process(kernel.cluster_syscall(0))
    sim.run(until=proc)
    assert (
        kernel.accounting.activity_ns(0, OsActivity.SYSCALL_CLUSTER)
        == kernel.params.syscall_cluster_cost_ns
    )
    assert kernel.accounting.activity_ns(0, OsActivity.CPI) == 0


def test_cluster_syscall_cpi_thinning():
    """With fraction 0.5, every second syscall gathers a CPI."""
    sim, kernel = make_kernel(syscall_cpi_fraction=0.5)

    def proc(sim):
        for _ in range(4):
            yield sim.process(kernel.cluster_syscall(0))

    sim.run(until=sim.process(proc(sim)))
    per_gather = kernel.params.cpi_per_ce_cost_ns + kernel.params.cpi_sync_ns
    assert kernel.accounting.activity_ns(0, OsActivity.CPI) == 2 * per_gather


def test_global_syscall_charges_global_crsect():
    sim, kernel = make_kernel()
    proc = sim.process(kernel.global_syscall(0))
    sim.run(until=proc)
    assert (
        kernel.accounting.activity_ns(0, OsActivity.SYSCALL_GLOBAL)
        == kernel.params.syscall_global_cost_ns
    )
    assert kernel.accounting.activity_ns(0, OsActivity.CRSECT_GLOBAL) > 0


def test_daemons_generate_background_overhead():
    sim, kernel = make_kernel(ctx_interval_ns=1_000_000, ast_interval_ns=2_000_000)
    kernel.start_daemons()
    sim.run(until=20_000_000)
    assert kernel.accounting.activity_ns(0, OsActivity.CTX) > 0
    assert kernel.accounting.activity_ns(0, OsActivity.AST) > 0
    # Every cluster has its own daemons.
    assert kernel.accounting.activity_ns(3, OsActivity.CTX) > 0


def test_start_daemons_idempotent():
    sim, kernel = make_kernel(ctx_interval_ns=1_000_000)
    kernel.start_daemons()
    kernel.start_daemons()
    sim.run(until=3_000_000)
    # A doubled daemon would double the count; with jitter 0.25 the
    # single daemon fires at most 4 times in 3 intervals.
    assert kernel.accounting.activity_count(0, OsActivity.CTX) <= 4


def test_kernel_records_hpm_events():
    sim = Simulator()
    config = paper_configuration(32)
    hpm = CedarHpm(sim)
    kernel = XylemKernel(sim, config, XylemParams(), hpm=hpm)
    sim.run(until=sim.process(kernel.cluster_syscall(0)))
    types = [e.event_type for e in hpm.offload()]
    assert EventType.SYSCALL_ENTER in types
    assert EventType.SYSCALL_EXIT in types


def test_breakdown_consistency_under_load():
    """OS activity fractions stay consistent: wall = user+sys+int+spin."""
    sim, kernel = make_kernel(ctx_interval_ns=2_000_000)
    kernel.start_daemons()
    proc = sim.process(kernel.execute(0, work_ns=50_000_000))
    sim.run(until=proc)
    wall = sim.now
    breakdown = kernel.accounting.breakdown(0, wall)
    assert sum(breakdown.values()) == wall
    assert breakdown[TimeCategory.SYSTEM] > 0
    assert breakdown[TimeCategory.INTERRUPT] > 0
    assert breakdown[TimeCategory.USER] >= 50_000_000
