"""Unit tests for kernel locks, critical sections and Xylem tasks."""

import pytest

from repro.hardware import paper_configuration
from repro.sim import Simulator
from repro.xylem import (
    CriticalSections,
    OsActivity,
    TimeAccounting,
    TimeCategory,
    XylemKernel,
    XylemParams,
    XylemProcess,
    create_process,
)
from repro.xylem.locks import KernelLock
from repro.xylem.task import ClusterTask, TaskKind


def make_cs(n_proc=32):
    sim = Simulator()
    config = paper_configuration(n_proc)
    accounting = TimeAccounting(config)
    cs = CriticalSections(sim, accounting, config.n_clusters)
    return sim, cs, accounting


def test_uncontended_lock_has_no_spin():
    sim, cs, accounting = make_cs()
    proc = sim.process(cs.access_cluster(0, hold_ns=100))
    sim.run(until=proc)
    assert accounting.category_ns(0, TimeCategory.KSPIN) == 0
    assert accounting.activity_ns(0, OsActivity.CRSECT_CLUSTER) == 100


def test_contended_lock_accrues_spin():
    sim, cs, accounting = make_cs()
    procs = [
        sim.process(cs.access_cluster(0, hold_ns=100)),
        sim.process(cs.access_cluster(0, hold_ns=100)),
    ]
    sim.run(until=sim.all_of(procs))
    # The second accessor spun for the first one's hold time.
    assert accounting.category_ns(0, TimeCategory.KSPIN) == 100
    lock = cs.cluster_locks[0]
    assert lock.acquisitions == 2
    assert lock.contended_acquisitions == 1


def test_cluster_locks_are_independent():
    sim, cs, accounting = make_cs()
    procs = [
        sim.process(cs.access_cluster(0, hold_ns=100)),
        sim.process(cs.access_cluster(1, hold_ns=100)),
    ]
    sim.run(until=sim.all_of(procs))
    assert sim.now == 100
    assert accounting.category_ns(0, TimeCategory.KSPIN) == 0


def test_global_lock_shared_across_clusters():
    sim, cs, accounting = make_cs()
    procs = [
        sim.process(cs.access_global(0, hold_ns=100)),
        sim.process(cs.access_global(2, hold_ns=100)),
    ]
    sim.run(until=sim.all_of(procs))
    assert sim.now == 200
    # Spin charged to the waiter's cluster.
    total_spin = sum(accounting.category_ns(c, TimeCategory.KSPIN) for c in range(4))
    assert total_spin == 100


def test_kernel_lock_held_flag():
    sim = Simulator()
    accounting = TimeAccounting(paper_configuration(8))
    lock = KernelLock(sim, accounting, "test")
    assert not lock.held()

    def holder(sim):
        yield sim.process(lock.critical_section(0, hold_ns=10))

    sim.run(until=sim.process(holder(sim)))
    assert not lock.held()


def test_cluster_task_names():
    main = ClusterTask(0, 0, TaskKind.MAIN)
    helper = ClusterTask(2, 2, TaskKind.HELPER)
    assert main.name == "Main"
    assert main.is_main
    assert helper.name == "helper2"
    assert not helper.is_main


def test_xylem_process_requires_main_first():
    with pytest.raises(ValueError):
        XylemProcess([ClusterTask(1, 1, TaskKind.HELPER)])
    with pytest.raises(ValueError):
        XylemProcess([])


def test_xylem_process_task_lookup():
    tasks = [
        ClusterTask(0, 0, TaskKind.MAIN),
        ClusterTask(1, 1, TaskKind.HELPER),
    ]
    process = XylemProcess(tasks)
    assert process.main_task.cluster_id == 0
    assert process.helper_tasks == tasks[1:]
    assert process.task_on_cluster(1).task_id == 1
    with pytest.raises(KeyError):
        process.task_on_cluster(3)


def test_create_process_makes_one_helper_per_extra_cluster():
    sim = Simulator()
    config = paper_configuration(32)
    kernel = XylemKernel(sim, config)
    proc = sim.process(create_process(sim, config, kernel))
    process = sim.run(until=proc)
    assert len(process.tasks) == 4
    assert len(process.helper_tasks) == 3
    # Task creation used global syscalls, charged to the master cluster.
    assert kernel.accounting.activity_ns(0, OsActivity.SYSCALL_GLOBAL) > 0


def test_create_process_single_cluster_has_no_helpers():
    sim = Simulator()
    config = paper_configuration(8)
    kernel = XylemKernel(sim, config)
    proc = sim.process(create_process(sim, config, kernel))
    process = sim.run(until=proc)
    assert process.helper_tasks == []
    assert kernel.accounting.activity_ns(0, OsActivity.SYSCALL_GLOBAL) == 0
