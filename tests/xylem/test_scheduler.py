"""Tests for the multiprogrammed background workload."""

import pytest

from repro.hardware import paper_configuration
from repro.sim import Simulator
from repro.xylem import BackgroundWorkload, OsActivity, XylemKernel, XylemParams


def make_kernel(n_proc=32):
    sim = Simulator()
    kernel = XylemKernel(
        sim,
        paper_configuration(n_proc),
        XylemParams(ctx_interval_ns=10**15, ast_interval_ns=10**15,
                    sched_interval_ns=10**15),
    )
    return sim, kernel


def test_share_validation():
    _, kernel = make_kernel()
    with pytest.raises(ValueError):
        BackgroundWorkload(kernel, share=0.0)
    with pytest.raises(ValueError):
        BackgroundWorkload(kernel, share=1.0)
    with pytest.raises(ValueError):
        BackgroundWorkload(kernel, quantum_ns=0)


def test_period_from_share():
    _, kernel = make_kernel()
    load = BackgroundWorkload(kernel, share=0.25, quantum_ns=10_000_000)
    assert load.period_ns == 40_000_000


def test_background_takes_roughly_its_share():
    sim, kernel = make_kernel()
    load = BackgroundWorkload(kernel, share=0.25, quantum_ns=5_000_000,
                              coscheduled=True)
    load.start()
    sim.run(until=200_000_000)
    for cluster_id in range(4):
        granted = load.granted_ns[cluster_id]
        assert granted == pytest.approx(0.25 * 200_000_000, rel=0.25)


def test_start_idempotent():
    sim, kernel = make_kernel()
    load = BackgroundWorkload(kernel, share=0.5, quantum_ns=5_000_000,
                              coscheduled=True)
    load.start()
    load.start()
    sim.run(until=50_000_000)
    assert load.granted_ns[0] <= 0.6 * 50_000_000


def test_preemption_stretches_user_work():
    """The application's compute is stretched by ~1/(1-share)."""
    sim, kernel = make_kernel()
    load = BackgroundWorkload(kernel, share=0.5, quantum_ns=2_000_000,
                              coscheduled=True)
    load.start()
    proc = sim.process(kernel.execute(0, work_ns=50_000_000))
    elapsed = sim.run(until=proc)
    assert elapsed > 1.6 * 50_000_000


def test_context_switches_charged():
    sim, kernel = make_kernel()
    load = BackgroundWorkload(kernel, share=0.25, quantum_ns=5_000_000,
                              coscheduled=True)
    load.start()
    sim.run(until=100_000_000)
    assert kernel.accounting.activity_count(0, OsActivity.CTX) >= 2
    assert kernel.accounting.activity_ns(0, OsActivity.CPI) > 0


def test_independent_clusters_have_distinct_phases():
    sim, kernel = make_kernel()
    load = BackgroundWorkload(kernel, share=0.25, quantum_ns=5_000_000,
                              coscheduled=False)
    load.start()
    # With random phase offsets the per-cluster grants disagree at some
    # sampling instant within the first few periods.
    observed_distinct = False
    for t in (30, 50, 70, 90):
        sim.run(until=t * 1_000_000)
        if len(set(load.granted_ns)) > 1:
            observed_distinct = True
            break
    assert observed_distinct, load.granted_ns


def test_multiprogramming_amplifies_barrier_skew():
    """End to end: independent per-cluster scheduling hurts a
    barrier-heavy application more than its CPU share alone."""
    from repro.apps import synthetic_app
    from repro.core import run_phases
    from repro.runtime import LoopConstruct

    app = synthetic_app(
        construct=LoopConstruct.SDOALL, n_steps=2, loops_per_step=4,
        n_outer=8, n_inner=32, iter_time_ns=2_000_000,
    )
    share = 0.25

    def run(background):
        from repro.core.runner import run_phases as rp
        from repro.hardware import CedarMachine, paper_configuration
        from repro.hpm import ActivityBoard, CedarHpm, Statfx
        from repro.runtime.library import CedarFortranRuntime
        from repro.sim import Simulator

        sim = Simulator()
        config = paper_configuration(32)
        machine = CedarMachine(sim, config)
        hpm = CedarHpm(sim)
        board = ActivityBoard(sim, config)
        kernel = XylemKernel(sim, config)
        runtime = CedarFortranRuntime(sim, machine, kernel, hpm=hpm, board=board)
        if background:
            BackgroundWorkload(kernel, share=share, quantum_ns=5_000_000).start()
        proc = runtime.run_program(app.phases(1.0))
        return sim.run(until=proc)

    dedicated = run(background=False)
    shared = run(background=True)
    # Losing 25% of the CPUs would ideally cost 1.33x; independent
    # preemption skews the gangs and costs more.
    assert shared > dedicated * 1.30
