"""Unit tests for the virtual-memory model (page faults)."""

import pytest

from repro.hardware import paper_configuration
from repro.sim import Simulator
from repro.xylem import OsActivity, TimeAccounting, VirtualMemory, XylemParams


def make_vm(**param_kwargs):
    sim = Simulator()
    config = paper_configuration(32)
    accounting = TimeAccounting(config)
    params = XylemParams(**param_kwargs)
    vm = VirtualMemory(sim, accounting, params)
    return sim, vm, accounting


def test_first_touch_faults_sequentially():
    sim, vm, accounting = make_vm()
    proc = sim.process(vm.touch(0, page=7))
    sim.run(until=proc)
    assert vm.is_resident(7)
    assert vm.stats.sequential == 1
    assert vm.stats.concurrent == 0
    assert accounting.activity_ns(0, OsActivity.PGFLT_SEQUENTIAL) > 0
    assert sim.now == vm.params.pgflt_sequential_cost_ns


def test_second_touch_is_free():
    sim, vm, accounting = make_vm()
    sim.run(until=sim.process(vm.touch(0, page=7)))
    before = sim.now
    sim.run(until=sim.process(vm.touch(1, page=7)))
    assert sim.now == before
    assert vm.stats.sequential == 1


def test_simultaneous_touches_become_concurrent_fault():
    """Three CEs of one cluster touch the same new page together."""
    sim, vm, accounting = make_vm(pgflt_cpi_fraction=0.0)
    procs = [sim.process(vm.touch(0, page=3)) for _ in range(3)]
    sim.run(until=sim.all_of(procs))
    assert vm.stats.concurrent == 1
    assert vm.stats.sequential == 0
    assert vm.stats.joined == 2
    # The primary pays the full concurrent cost; each joiner pays the
    # trap-and-wait bookkeeping.
    assert (
        accounting.activity_ns(0, OsActivity.PGFLT_CONCURRENT)
        == vm.params.pgflt_concurrent_cost_ns + 2 * vm.params.pgflt_join_cost_ns
    )
    assert accounting.activity_ns(0, OsActivity.PGFLT_SEQUENTIAL) == 0


def test_fault_joiners_beyond_cap_pay_light_trap():
    """Late joiners of a fault storm pay only the light trap cost."""
    sim, vm, accounting = make_vm(pgflt_cpi_fraction=0.0)
    procs = [sim.process(vm.touch(0, page=9)) for _ in range(8)]
    sim.run(until=sim.all_of(procs))
    params = vm.params
    cap_joiners = params.pgflt_join_charge_cap - 1  # participants 2..cap
    light_joiners = 7 - cap_joiners
    expected = (
        params.pgflt_concurrent_cost_ns
        + cap_joiners * params.pgflt_join_cost_ns
        + light_joiners * params.pgflt_trap_light_ns
    )
    assert accounting.activity_ns(0, OsActivity.PGFLT_CONCURRENT) == expected


def test_concurrent_fault_waiters_resume_after_resolution():
    sim, vm, _ = make_vm(pgflt_cpi_fraction=0.0)
    done_times = []

    def toucher(sim, vm, ce):
        yield sim.process(vm.touch(0, page=5))
        done_times.append(sim.now)

    sim.process(toucher(sim, vm, 0))
    sim.process(toucher(sim, vm, 1))
    sim.run()
    assert len(done_times) == 2
    assert done_times[0] == done_times[1]
    assert vm.is_resident(5)


def test_faults_on_different_pages_are_independent():
    sim, vm, _ = make_vm()
    procs = [sim.process(vm.touch(0, page=p)) for p in range(4)]
    sim.run(until=sim.all_of(procs))
    assert vm.stats.sequential == 4
    assert vm.stats.concurrent == 0
    assert vm.resident_pages == 4


def test_cpi_handler_called_on_concurrent_fault():
    sim = Simulator()
    config = paper_configuration(32)
    accounting = TimeAccounting(config)
    calls = []

    def fake_cpi(cluster_id):
        calls.append(cluster_id)
        yield sim.timeout(1)

    vm = VirtualMemory(
        sim, accounting, XylemParams(pgflt_cpi_fraction=1.0), cpi_handler=fake_cpi
    )
    procs = [sim.process(vm.touch(0, page=1)), sim.process(vm.touch(0, page=1))]
    sim.run(until=sim.all_of(procs))
    assert calls == [0]


def test_prefault_suppresses_faults():
    sim, vm, _ = make_vm()
    vm.prefault(range(10))
    proc = sim.process(vm.touch(0, page=5))
    sim.run(until=proc)
    assert sim.now == 0
    assert vm.stats.sequential == 0


def test_touch_many_touches_all():
    sim, vm, _ = make_vm()
    proc = sim.process(vm.touch_many(0, [1, 2, 3]))
    sim.run(until=proc)
    assert vm.resident_pages == 3


def test_fault_accesses_critical_sections_when_wired():
    sim = Simulator()
    config = paper_configuration(32)
    accounting = TimeAccounting(config)
    from repro.xylem.locks import CriticalSections

    params = XylemParams()
    cs = CriticalSections(sim, accounting, config.n_clusters)
    vm = VirtualMemory(sim, accounting, params, critical_sections=cs)
    proc = sim.process(vm.touch(0, page=1))
    sim.run(until=proc)
    expected = params.crsect_per_fault * params.crsect_cluster_cost_ns
    assert accounting.activity_ns(0, OsActivity.CRSECT_CLUSTER) == expected
