"""Tests for the kernel trace-sink protocol and its sinks."""

from repro.obs import KernelTraceBuffer, MultiSink, ProcessProfiler, TraceSink
from repro.obs.profile import profile_key
from repro.sim import Simulator


class CountingSink(TraceSink):
    """Records how often each hook fires."""

    def __init__(self):
        self.scheduled = 0
        self.callbacks = 0
        self.processed = 0
        self.started = 0
        self.ended = 0

    def on_event_scheduled(self, event, when, by):
        self.scheduled += 1

    def on_callback(self, event, owner, wall_s):
        self.callbacks += 1

    def on_event_processed(self, event, when):
        self.processed += 1

    def on_process_started(self, process):
        self.started += 1

    def on_process_ended(self, process):
        self.ended += 1


def two_step(sim):
    yield sim.timeout(5)
    yield sim.timeout(5)


def test_no_sink_dispatches_no_observer_callbacks():
    """With no sink registered the event loop must not touch observers."""
    sink = CountingSink()
    sim = Simulator()  # no sink
    assert sim.trace_sink is None
    sim.process(two_step(sim))
    sim.run()
    assert sink.scheduled == sink.callbacks == sink.processed == 0
    assert sink.started == sink.ended == 0


def test_detached_sink_sees_nothing_further():
    sink = CountingSink()
    sim = Simulator(trace_sink=sink)
    sim.process(two_step(sim), name="first")
    sim.run()
    seen = (sink.scheduled, sink.callbacks, sink.processed, sink.started, sink.ended)
    assert all(v > 0 for v in seen)
    sim.set_trace_sink(None)
    sim.process(two_step(sim), name="second")
    sim.run()
    after = (sink.scheduled, sink.callbacks, sink.processed, sink.started, sink.ended)
    assert after == seen


def test_sink_observes_process_lifecycle():
    sink = CountingSink()
    sim = Simulator(trace_sink=sink)
    sim.process(two_step(sim))
    sim.run()
    assert sink.started == 1
    assert sink.ended == 1
    # Two timeouts plus process bootstrap/termination events.
    assert sink.scheduled >= 2
    assert sink.processed >= 2
    assert sink.callbacks >= 2


def test_multisink_fans_out():
    a, b = CountingSink(), CountingSink()
    sim = Simulator(trace_sink=MultiSink([a, b]))
    sim.process(two_step(sim))
    sim.run()
    assert a.started == b.started == 1
    assert a.callbacks == b.callbacks > 0


def test_kernel_trace_buffer_records_and_bounds():
    buffer = KernelTraceBuffer(capacity=3)
    sim = Simulator(trace_sink=buffer)
    sim.process(two_step(sim), name="worker")
    sim.process(two_step(sim), name="worker")
    sim.run()
    assert len(buffer) == 3
    assert buffer.dropped > 0
    kinds = {r.kind for r in buffer.records}
    assert "process_started" in kinds
    record = buffer.records[0]
    assert set(record.as_dict()) == {"kind", "t_ns", "what", "detail"}


# -- profiler ---------------------------------------------------------------


def test_profile_key_groups_instances():
    assert profile_key("cdoall-ce12") == "cdoall-ce"
    assert profile_key("ctx-daemon-3") == "ctx-daemon"
    assert profile_key("statfx") == "statfx"
    assert profile_key("42") == "42"


def test_profiler_attributes_sim_and_wall_time():
    profiler = ProcessProfiler()
    sim = Simulator(trace_sink=profiler)
    sim.process(two_step(sim), name="worker0")
    sim.process(two_step(sim), name="worker1")
    sim.run()
    record = profiler.records["worker"]
    assert record.spawns == 2
    assert record.sim_ns == 20  # 2 processes x 2 timeouts x 5 ns
    assert record.resumes >= 4
    assert record.wall_s > 0
    assert profiler.total_wall_s >= record.wall_s
    assert profiler.top_by_sim(1)[0].key == "worker"
    assert "worker" in profiler.report(3)
    as_dict = profiler.as_dict()
    assert as_dict["processes"][0]["process"] == "worker"
