"""Unit tests for the tie-break audit sink."""

from __future__ import annotations

import pytest

from repro.obs import TieBreakAuditSink


class _FakeEvent:
    def __init__(self, name: str = "") -> None:
        if name:
            self.name = name


class _FakeTimeout:
    pass


def test_sites_aggregate_as_unordered_pairs():
    sink = TieBreakAuditSink()
    a, b = _FakeEvent("reader"), _FakeEvent("writer")
    sink.on_tie_break(100, 0, a, b)
    sink.on_tie_break(200, 0, b, a)  # same site, either order
    assert sink.total == 2
    assert sink.sites[("_FakeEvent:reader", "_FakeEvent:writer")] == 2
    assert len(sink.sites) == 1


def test_label_falls_back_to_class_name():
    sink = TieBreakAuditSink()
    sink.on_tie_break(0, 0, _FakeTimeout(), _FakeEvent("p"))
    assert sink.sites[("_FakeEvent:p", "_FakeTimeout")] == 1


def test_top_sites_rank_by_count_then_lexicographically():
    sink = TieBreakAuditSink()
    for _ in range(3):
        sink.on_tie_break(0, 0, _FakeEvent("hot"), _FakeEvent("hot"))
    sink.on_tie_break(0, 0, _FakeEvent("a"), _FakeEvent("b"))
    sink.on_tie_break(0, 0, _FakeEvent("c"), _FakeEvent("d"))
    top = sink.top_sites(2)
    assert top[0] == ("_FakeEvent:hot", "_FakeEvent:hot", 3)
    assert top[1] == ("_FakeEvent:a", "_FakeEvent:b", 1)  # lexicographic tie-break


def test_overflow_counts_but_does_not_attribute():
    sink = TieBreakAuditSink(max_sites=1)
    sink.on_tie_break(0, 0, _FakeEvent("a"), _FakeEvent("a"))
    sink.on_tie_break(0, 0, _FakeEvent("b"), _FakeEvent("b"))  # beyond the bound
    sink.on_tie_break(0, 0, _FakeEvent("a"), _FakeEvent("a"))  # known site still counts
    assert sink.total == 3
    assert sink.overflow == 1
    assert sink.sites[("_FakeEvent:a", "_FakeEvent:a")] == 2
    assert "unattributed" in sink.report()


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        TieBreakAuditSink(max_sites=0)


def test_report_mentions_totals_and_sites():
    sink = TieBreakAuditSink()
    sink.on_tie_break(0, 0, _FakeEvent("x"), _FakeEvent("y"))
    text = sink.report()
    assert "1 same-(time, priority) tie(s)" in text
    assert "_FakeEvent:x <-> _FakeEvent:y" in text
