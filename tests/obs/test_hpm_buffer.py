"""Buffer-capacity behaviour of the cedarhpm monitor model.

The real monitor's trace buffers are finite; the model must drop (and
count) deterministically at capacity and expose the drop count through
the metrics registry.
"""

from repro.hpm.events import EventType
from repro.hpm.monitor import CedarHpm
from repro.obs import MetricsRegistry, collect_hpm_metrics
from repro.sim import Simulator


def fill(hpm, n, event_type=EventType.ITER_START):
    recorded = []
    for i in range(n):
        recorded.append(hpm.record(event_type, processor_id=i % 4))
    return recorded


def test_capacity_refuses_deterministically():
    sim = Simulator()
    hpm = CedarHpm(sim, buffer_capacity=5)
    recorded = fill(hpm, 8)
    assert [e is not None for e in recorded] == [True] * 5 + [False] * 3
    assert len(hpm) == 5
    assert hpm.dropped == 3


def test_drops_are_reproducible_across_runs():
    def run_once():
        sim = Simulator()
        hpm = CedarHpm(sim, buffer_capacity=3)
        fill(hpm, 10)
        return (len(hpm), hpm.dropped, [e.event_type for e in hpm.offload()])

    assert run_once() == run_once()


def test_clear_resets_drop_count():
    hpm = CedarHpm(Simulator(), buffer_capacity=2)
    fill(hpm, 4)
    assert hpm.dropped == 2
    hpm.clear()
    assert hpm.dropped == 0
    assert len(hpm) == 0
    assert fill(hpm, 1) != [None]


def test_dropped_events_exposed_through_registry():
    sim = Simulator()
    hpm = CedarHpm(sim, buffer_capacity=4)
    fill(hpm, 7, EventType.BARRIER_ENTER)
    reg = collect_hpm_metrics(hpm, MetricsRegistry())
    assert reg.value("hpm.events_recorded") == 4
    assert reg.value("hpm.dropped_events") == 3
    assert reg.value("hpm.buffer_capacity") == 4
    assert reg.value("hpm.events.barrier_enter") == 4


def test_unbounded_buffer_reports_no_capacity_gauge():
    hpm = CedarHpm(Simulator())
    fill(hpm, 3)
    reg = collect_hpm_metrics(hpm, MetricsRegistry())
    assert reg.value("hpm.dropped_events") == 0
    assert "hpm.buffer_capacity" not in reg
