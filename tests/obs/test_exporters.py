"""Round-trip tests for the run-report and Chrome-trace exporters."""

import json

import pytest

from repro.core import run_phases
from repro.hardware.config import paper_configuration
from repro.obs import (
    REPORT_SCHEMA_VERSION,
    Observability,
    build_run_report,
    chrome_trace,
    save_chrome_trace,
    save_report,
)
from repro.runtime import LoopConstruct, ParallelLoop, SerialPhase


@pytest.fixture(scope="module")
def result():
    """A small synthetic app on the 4-CE configuration."""
    phases = [
        SerialPhase(work_ns=50_000),
        ParallelLoop(
            construct=LoopConstruct.SDOALL,
            n_outer=4,
            n_inner=8,
            work_ns_per_iter=10_000,
            mem_words_per_iter=64,
            mem_rate=0.5,
        ),
        SerialPhase(work_ns=20_000),
    ]
    return run_phases(phases, 4, app_name="synthetic", config=paper_configuration(4))


def test_report_round_trips_through_json(result, tmp_path):
    obs = Observability()
    obs.collect(result)
    report = build_run_report(result, obs.registry)
    path = tmp_path / "report.json"
    save_report(report, path)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(report))
    assert loaded["schema_version"] == REPORT_SCHEMA_VERSION
    assert loaded["app"] == "synthetic"
    assert loaded["n_processors"] == 4
    assert loaded["seed"] == 1994
    assert loaded["config"]["n_memory_modules"] == 32
    assert loaded["ct_ns"] == result.ct_ns
    assert loaded["wall_s"] > 0
    assert loaded["metrics"]
    assert loaded["metrics"]["run.ct_ns"]["value"] == result.ct_ns


def test_report_includes_profile_when_collected():
    obs = Observability(profile=True)
    phases = [SerialPhase(work_ns=10_000)]
    result = run_phases(
        phases, 4, app_name="tiny", config=paper_configuration(4), obs=obs
    )
    report = build_run_report(result, obs.registry, obs.profiler)
    assert "profile" in report
    assert report["profile"]["processes"]
    json.dumps(report)  # must be serialisable


def test_chrome_trace_schema(result):
    doc = chrome_trace(result)
    events = doc["traceEvents"]
    assert events
    for event in events:
        assert set(event) >= {"ph", "ts", "pid", "tid", "name"}
        assert event["ph"] in {"M", "X", "C"}
    durations = [e for e in events if e["ph"] == "X"]
    assert durations
    for event in durations:
        assert event["dur"] >= 0
        assert 0 <= event["ts"] <= result.ct_ns / 1000


def test_chrome_trace_has_one_track_per_ce_and_bank(result):
    events = chrome_trace(result)["traceEvents"]
    ce_tracks = {
        e["tid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 0
    }
    bank_tracks = {
        e["tid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
    }
    assert ce_tracks == set(range(4))
    assert bank_tracks == set(range(32))


def test_chrome_trace_file_is_valid_json(result, tmp_path):
    path = tmp_path / "trace.json"
    save_chrome_trace(result, path)
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"]
    assert loaded["otherData"]["app"] == "synthetic"


def test_chrome_trace_bank_counters_with_packet_memory():
    """A packet-level run gets per-bank busy-time counter samples."""
    from repro.hardware.machine import CedarMachine
    from repro.sim import Simulator

    sim = Simulator()
    config = paper_configuration(4)
    machine = CedarMachine(sim, config, packet_level_memory=True)

    def issue(sim, memory):
        yield memory.request(0, 0)
        yield memory.request(1, 8)

    sim.process(issue(sim, machine.memory))
    sim.run()
    # Graft the exercised machine onto a tiny run result.
    result = run_phases(
        [SerialPhase(work_ns=1000)], 4, app_name="banks", config=config
    )
    result.machine._memory = machine.memory
    counters = [e for e in chrome_trace(result)["traceEvents"] if e["ph"] == "C"]
    assert counters
    assert {e["pid"] for e in counters} == {1}
    assert any(e["args"]["busy_ns"] > 0 for e in counters)
