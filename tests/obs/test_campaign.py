"""Campaign telemetry: spans, progress, log round-trip, report, trace.

The contract under test: :class:`~repro.obs.campaign.CampaignTelemetry`
observes a campaign without touching its results -- the spans, the
JSONL log, the SLO report and the Perfetto trace are all *derived*
views that must agree with each other and with the header's
provenance tags.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.campaign import (
    CAMPAIGN_LOG_SCHEMA,
    CAMPAIGN_REPORT_SCHEMA,
    CampaignTelemetry,
    CellSpan,
    ProgressReporter,
    build_campaign_report,
    campaign_chrome_trace,
    load_campaign_log,
    percentile,
    render_campaign_report,
    save_campaign_report,
    save_campaign_trace,
    spans_from_log,
)
from repro.parallel.cache import code_fingerprint
from repro.parallel.executor import CellSpec

SPECS = [
    CellSpec(app="FLO52", n_processors=1, scale=0.002, seed=1994),
    CellSpec(app="FLO52", n_processors=4, scale=0.002, seed=1994),
    CellSpec(app="OCEAN", n_processors=4, scale=0.002, seed=1994),
]


def make_span(
    app: str = "FLO52",
    p: int = 4,
    attempt: int = 1,
    pid: int = 101,
    submit: float = 10.0,
    start: float = 10.5,
    end: float = 12.5,
    **kwargs,
) -> CellSpan:
    return CellSpan(
        app=app,
        n_processors=p,
        seed=1994,
        attempt=attempt,
        worker_pid=pid,
        submit_s=submit,
        start_s=start,
        end_s=end,
        run_wall_s=kwargs.pop("run_wall_s", end - start),
        **kwargs,
    )


# -- CellSpan ----------------------------------------------------------------


def test_span_derived_quantities():
    span = make_span()
    assert span.ok
    assert span.queue_wait_s == pytest.approx(0.5)
    assert span.span_s == pytest.approx(2.0)
    assert span.label == "FLO52 P=4"


def test_span_clamps_clock_skew():
    """Cross-process clock jitter must never produce negative waits."""
    span = make_span(submit=11.0, start=10.5, end=10.0)
    assert span.queue_wait_s == 0.0
    assert span.span_s == 0.0


def test_failed_span():
    span = make_span(failure_kind="RuntimeError")
    assert not span.ok


# -- percentile --------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [0.1, 0.2, 0.3, 0.4]
    assert percentile(values, 0.0) == 0.1
    assert percentile(values, 0.5) == 0.2
    assert percentile(values, 0.95) == 0.4
    assert percentile(values, 1.0) == 0.4
    assert percentile([7.0], 0.5) == 7.0


def test_percentile_empty_and_invalid():
    assert percentile([], 0.5) is None
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


# -- ProgressReporter --------------------------------------------------------


def test_progress_line_contents():
    reporter = ProgressReporter(total=4, jobs=2, stream=io.StringIO())
    reporter.note_cell(0.2, ok=True)
    reporter.note_cell(0.0, ok=True, cache_hit=True)
    reporter.note_cell(0.3, ok=False)
    line = reporter.line()
    assert line.startswith("[2/4]")
    assert "cells/s" in line
    assert "util" in line
    assert "cache 1/2" in line
    assert "failed 1" in line
    assert "eta" in line


def test_progress_disabled_on_non_tty():
    stream = io.StringIO()  # not a TTY
    reporter = ProgressReporter(total=2, stream=stream)
    assert not reporter.enabled
    reporter.note_cell(0.1, ok=True)
    reporter.close()
    assert stream.getvalue() == ""


def test_progress_enabled_paints_in_place():
    stream = io.StringIO()
    reporter = ProgressReporter(total=2, stream=stream, enabled=True)
    reporter.note_cell(0.1, ok=True)
    reporter.close()
    out = stream.getvalue()
    assert out.startswith("\r\x1b[2K[1/2]")
    assert out.endswith("\n")


# -- CampaignTelemetry lifecycle ---------------------------------------------


def run_fake_campaign(tmp_path, log_name="campaign.jsonl"):
    """Drive a telemetry object through a synthetic 3-cell campaign."""
    telemetry = CampaignTelemetry(
        log_path=tmp_path / log_name, progress=False, label="unit"
    )
    telemetry.begin(SPECS, jobs=2)
    # Cell 1: clean success on worker 101.
    telemetry.on_submit(SPECS[0], attempt=1)
    telemetry.on_span(
        make_span(app="FLO52", p=1, pid=101, schedule_hash="aaaa")
    )
    # Cell 2: one failed attempt (retried), then success on worker 102.
    telemetry.on_submit(SPECS[1], attempt=1)
    telemetry.on_span(
        make_span(pid=102, failure_kind="RuntimeError"), will_retry=True
    )
    telemetry.on_submit(SPECS[1], attempt=2)
    telemetry.on_span(
        make_span(pid=102, attempt=2, start=13.0, end=14.0, schedule_hash="bbbb")
    )
    # Cell 3: served from the cache.
    class FakeResult:
        wall_s = 1.5
        schedule_hash = "cccc"
        kernel_stats = {"pool.reused": 3.0}

    telemetry.on_cache_hit(SPECS[2], FakeResult())
    telemetry.end()
    return telemetry


def test_begin_twice_raises(tmp_path):
    telemetry = CampaignTelemetry(progress=False)
    telemetry.begin(SPECS, jobs=1)
    with pytest.raises(RuntimeError, match="twice"):
        telemetry.begin(SPECS, jobs=1)


def test_header_is_tagged_with_provenance(tmp_path):
    telemetry = run_fake_campaign(tmp_path)
    header = telemetry.header
    assert header["schema"] == CAMPAIGN_LOG_SCHEMA
    assert header["code_fingerprint"] == code_fingerprint()
    assert header["seed"] == 1994
    assert header["n_cells"] == 3
    assert header["apps"] == ["FLO52", "OCEAN"]
    assert header["configs"] == [1, 4]


def test_log_round_trips(tmp_path):
    telemetry = run_fake_campaign(tmp_path)
    header, events = load_campaign_log(tmp_path / "campaign.jsonl")
    assert header == telemetry.header
    assert events == telemetry.events
    kinds = [e["ev"] for e in events]
    assert kinds.count("submit") == 3
    assert kinds.count("start") == 3
    assert kinds.count("finish") == 3
    assert kinds.count("retry") == 1
    assert kinds.count("cache_hit") == 1
    assert kinds[-1] == "end"


def test_campaign_metrics_aggregated(tmp_path):
    telemetry = run_fake_campaign(tmp_path)
    reg = telemetry.registry
    assert reg.value("campaign.cells.attempts") == 4
    assert reg.value("campaign.cells.completed") == 3
    assert reg.value("campaign.cells.failed_attempts") == 1
    assert reg.value("campaign.cells.cache_hits") == 1
    assert reg.get("campaign.cell_wall_s").count == 3  # cache hit excluded
    assert reg.value("campaign.wall_s") > 0
    assert 0 < reg.value("campaign.pool.utilization") <= 1


def test_worker_metric_snapshots_merge_under_campaign_prefix(tmp_path):
    telemetry = CampaignTelemetry(progress=False)
    telemetry.begin(SPECS[:1], jobs=1)
    from repro.obs.registry import MetricsRegistry

    worker = MetricsRegistry()
    worker.counter("run.ct_ns").inc(42)
    telemetry.on_span(make_span(metrics=worker.snapshot()))
    telemetry.end()
    assert telemetry.registry.value("campaign.run.ct_ns") == 42


def test_report_from_synthetic_campaign(tmp_path):
    telemetry = run_fake_campaign(tmp_path)
    report = telemetry.report()
    assert report["schema"] == CAMPAIGN_REPORT_SCHEMA
    assert report["code_fingerprint"] == code_fingerprint()
    assert report["seed"] == 1994
    assert report["cells"] == {
        "total": 3,
        "completed": 3,
        "simulated": 2,
        "cache_hits": 1,
        "failed": 0,
        "failed_cells": [],
        "retries": 1,
    }
    assert report["latency_s"]["p50"] == pytest.approx(1.0)
    assert report["latency_s"]["p95"] == pytest.approx(2.0)
    assert report["latency_s"]["p99"] == pytest.approx(2.0)
    assert report["throughput"]["sustained_cells_per_s"] > 0
    assert report["cache"]["hits"] == 1
    assert report["failures"] == {"RuntimeError": 1}
    assert set(report["pool"]["workers"]) == {"101", "102"}
    assert report["pool"]["workers"]["102"]["attempts"] == 2


def test_failed_cell_accounting():
    """A cell whose every attempt failed is a failed cell; a cell that
    eventually succeeded is not."""
    header = {"jobs": 1, "n_cells": 2, "t0": 0.0}
    events = [
        {"ev": "finish", "t": 1.0, "app": "A", "p": 1, "ok": False,
         "wall_s": 1.0, "error": "Boom", "pid": 9},
        {"ev": "finish", "t": 2.0, "app": "A", "p": 1, "ok": True,
         "wall_s": 1.0, "pid": 9},
        {"ev": "finish", "t": 3.0, "app": "B", "p": 4, "ok": False,
         "wall_s": 0.5, "error": "Boom", "pid": 9},
    ]
    report = build_campaign_report(header, events)
    assert report["cells"]["failed"] == 1
    assert report["cells"]["failed_cells"] == [["B", 4]]
    assert report["failures"] == {"Boom": 2}


def test_render_report_mentions_the_headline_numbers(tmp_path):
    telemetry = run_fake_campaign(tmp_path)
    text = render_campaign_report(telemetry.report())
    assert "campaign unit: 3/3 cells" in text
    assert "p95" in text
    assert "RuntimeError: 1 attempt(s)" in text
    assert f"code {code_fingerprint()}" in text
    assert "seed 1994" in text


def test_save_report_is_json(tmp_path):
    telemetry = run_fake_campaign(tmp_path)
    out = tmp_path / "report.json"
    save_campaign_report(telemetry.report(), out)
    assert json.loads(out.read_text())["schema"] == CAMPAIGN_REPORT_SCHEMA


def test_load_rejects_foreign_and_empty_files(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"schema": "something-else"}\n')
    with pytest.raises(ValueError, match="not a campaign log"):
        load_campaign_log(bad)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    with pytest.raises(ValueError, match="empty campaign log"):
        load_campaign_log(empty)


# -- Perfetto trace ----------------------------------------------------------


def test_chrome_trace_tracks_and_slices(tmp_path):
    telemetry = run_fake_campaign(tmp_path)
    trace = telemetry.chrome_trace()
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    # One named track per worker PID (cache hit lands on the
    # coordinator's own PID, adding a third track).
    assert {e["args"]["name"] for e in meta} == {
        "worker 101",
        "worker 102",
        f"worker {__import__('os').getpid()}",
    }
    assert len(slices) == 3
    names = {e["name"] for e in instants}
    assert any(n.startswith("cache-hit OCEAN") for n in names)
    assert any(n.startswith("failed FLO52") for n in names)


def test_spans_from_log_rebuild_the_same_trace(tmp_path):
    telemetry = run_fake_campaign(tmp_path)
    _, events = load_campaign_log(tmp_path / "campaign.jsonl")
    rebuilt = spans_from_log(events)
    assert len(rebuilt) == len(telemetry.spans)
    direct = campaign_chrome_trace(
        telemetry.spans, t0=telemetry.header["t0"]
    )
    from_log = campaign_chrome_trace(rebuilt, t0=telemetry.header["t0"])
    direct_slices = [e for e in direct["traceEvents"] if e["ph"] == "X"]
    log_slices = [e for e in from_log["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in direct_slices] == [e["name"] for e in log_slices]
    assert [e["dur"] for e in direct_slices] == pytest.approx(
        [e["dur"] for e in log_slices]
    )


def test_save_campaign_trace(tmp_path):
    out = tmp_path / "trace.json"
    save_campaign_trace([make_span()], out)
    trace = json.loads(out.read_text())
    assert trace["otherData"]["spans"] == 1
    assert any(e["ph"] == "X" for e in trace["traceEvents"])
