"""Cross-checks between the metrics registry and the analysis modules.

The registry is only trustworthy if its numbers agree with the
breakdown the paper-reproduction computes independently; these tests
pin that consistency on a real application run.
"""

import pytest

from repro.apps import flo52
from repro.core import memory_decomposition, run_application
from repro.obs import Observability

NAMESPACES = ("network.", "memory.", "xylem.", "runtime.")


@pytest.fixture(scope="module")
def run():
    obs = Observability()
    result = run_application(flo52(), 32, scale=0.01, obs=obs)
    return result, obs.registry


def test_registry_spans_all_namespaces(run):
    _, registry = run
    names = registry.names()
    assert len(names) >= 20
    for prefix in NAMESPACES:
        assert any(n.startswith(prefix) for n in names), f"no {prefix} metrics"


def test_memory_busy_matches_breakdown_within_1pct(run):
    result, registry = run
    decomposition = memory_decomposition(result)
    registry_busy = sum(
        registry.value(f"memory.cluster{c}.busy_ns")
        for c in range(result.config.n_clusters)
    )
    assert decomposition.total_busy_ns > 0
    assert registry_busy == pytest.approx(decomposition.total_busy_ns, rel=0.01)


def test_memory_stall_is_busy_minus_ideal(run):
    result, registry = run
    for c in range(result.config.n_clusters):
        busy = registry.value(f"memory.cluster{c}.busy_ns")
        ideal = registry.value(f"memory.cluster{c}.ideal_ns")
        stall = registry.value(f"memory.cluster{c}.stall_ns")
        assert stall == max(0, busy - ideal)


def test_contention_present_on_32_processors(run):
    result, _ = run
    decomposition = memory_decomposition(result)
    # 32 CEs streaming concurrently must show contention stall.
    assert decomposition.total_stall_ns > 0
    assert 0 < decomposition.stall_fraction < 1


def test_runtime_counters_match_runtime_stats(run):
    result, registry = run
    stats = result.runtime.stats
    assert registry.value("runtime.loops_posted") == stats.loops_posted
    assert registry.value("runtime.barriers") == stats.barriers
    assert stats.loops_posted > 0
    assert stats.barriers > 0


def test_hpm_event_tallies_match_trace_buffer(run):
    result, registry = run
    assert registry.value("hpm.events_recorded") == len(result.events)
    assert registry.value("hpm.dropped_events") == 0


def test_xylem_pagefaults_match_fault_stats(run):
    result, registry = run
    faults = result.fault_stats
    assert registry.value("xylem.pagefault.count") == (
        faults.sequential + faults.concurrent
    )


def test_ce_busy_time_exported_per_ce(run):
    result, registry = run
    busy = [
        registry.value(f"runtime.ce{i}.busy_ns")
        for i in range(result.config.n_processors)
    ]
    assert len(busy) == 32
    # Every cluster's lead CE carries the task's serial work.
    per_cluster = result.config.ces_per_cluster
    assert all(busy[c * per_cluster] > 0 for c in range(result.config.n_clusters))
    # Most CEs execute loop iterations (the trailing CE of a cluster
    # may legitimately pick up nothing at small scales).
    assert sum(1 for b in busy if b > 0) >= 24
