"""Unit tests for the metrics registry primitives."""

import pytest

from repro.obs import MetricsRegistry, validate_name
from repro.obs.registry import Counter, Gauge, Histogram, Timeseries


# -- names ------------------------------------------------------------------


def test_valid_names_accepted():
    for name in ("a", "a.b", "network.fwd.stage0.sw3.queue_depth", "bank17_busy"):
        validate_name(name)


def test_invalid_names_rejected():
    for name in ("", "A.b", "a..b", ".a", "a.", "a b", "pg flt (c)"):
        with pytest.raises(ValueError):
            validate_name(name)


# -- counters ---------------------------------------------------------------


def test_counter_accumulates():
    c = Counter("c")
    c.inc()
    c.inc(41)
    assert c.value == 42


def test_counter_rejects_negative_increment():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


# -- gauges -----------------------------------------------------------------


def test_gauge_tracks_extremes():
    g = Gauge("g")
    for v in (3, 7, 2):
        g.set(v)
    assert g.value == 2
    assert g.high_water == 7
    assert g.low_water == 2


# -- histograms -------------------------------------------------------------


def test_histogram_buckets_and_moments():
    h = Histogram("h", boundaries=[10, 100])
    for v in (5, 50, 500, 7):
        h.observe(v)
    assert h.count == 4
    assert h.counts == [2, 1, 1]  # <=10, <=100, overflow
    assert h.min == 5
    assert h.max == 500
    assert h.mean == pytest.approx((5 + 50 + 500 + 7) / 4)


def test_histogram_requires_boundaries():
    with pytest.raises(ValueError):
        Histogram("h", boundaries=[])


# -- timeseries -------------------------------------------------------------


def test_timeseries_decimates_but_keeps_span():
    ts = Timeseries("t", max_samples=8)
    for i in range(100):
        ts.sample(i, i * i)
    assert len(ts.samples) <= 8
    first_t, _ = ts.samples[0]
    last_t, _ = ts.samples[-1]
    assert first_t == 0
    assert last_t <= 99
    # Retained samples stay in arrival order and uniformly strided.
    times = [t for t, _ in ts.samples]
    assert times == sorted(times)


# -- registry ---------------------------------------------------------------


def test_registry_is_idempotent_per_name():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


def test_registry_prefix_listing():
    reg = MetricsRegistry()
    reg.counter("memory.bank0.busy_ns")
    reg.counter("memory.bank1.busy_ns")
    reg.counter("memorize.other")
    names = reg.names("memory")
    assert names == ["memory.bank0.busy_ns", "memory.bank1.busy_ns"]


def test_registry_snapshot_is_flat_and_sorted():
    reg = MetricsRegistry()
    reg.gauge("b").set(2)
    reg.counter("a").inc(1)
    snap = reg.snapshot()
    assert list(snap) == ["a", "b"]
    assert snap["a"] == {"kind": "counter", "value": 1}
    assert snap["b"]["value"] == 2


# -- merging (the cross-process seam) ---------------------------------------


def test_counter_merge_sums():
    a, b = Counter("c"), Counter("c")
    a.inc(10)
    b.inc(32)
    a.merge(b.snapshot())
    assert a.value == 42


def test_gauge_merge_keeps_extremes_and_last_value():
    a, b = Gauge("g"), Gauge("g")
    a.set(5)
    b.set(100)
    b.set(2)
    a.merge(b.snapshot())
    assert a.value == 2
    assert a.high_water == 100
    assert a.low_water == 2


def test_histogram_merge_adds_bucket_for_bucket():
    bounds = (1.0, 10.0)
    a, b = Histogram("h", bounds), Histogram("h", bounds)
    a.observe(0.5)
    b.observe(5.0)
    b.observe(50.0)
    a.merge(b.snapshot())
    assert a.count == 3
    assert a.min == 0.5
    assert a.max == 50.0


def test_histogram_merge_rejects_mismatched_boundaries():
    a = Histogram("h", (1.0, 2.0))
    b = Histogram("h", (1.0, 3.0))
    with pytest.raises(ValueError):
        a.merge(b.snapshot())


def test_histogram_quantile_reports_bucket_edges():
    h = Histogram("h", (1.0, 2.0, 4.0))
    assert h.quantile(0.5) is None  # empty
    for value in (0.5, 1.5, 1.6, 3.0):
        h.observe(value)
    assert h.quantile(0.0) == 1.0
    assert h.quantile(0.5) == 2.0
    assert h.quantile(1.0) == 4.0
    h.observe(99.0)  # overflow bucket reports the observed max
    assert h.quantile(1.0) == 99.0


def test_registry_merge_snapshot_with_prefix():
    worker = MetricsRegistry()
    worker.counter("run.ct_ns").inc(7)
    worker.gauge("run.wall_s").set(1.5)
    worker.histogram("lat", (1.0,)).observe(0.5)
    worker.timeseries("ts").sample(0, 1.0)  # timeseries must be skipped

    coord = MetricsRegistry()
    coord.counter("campaign.run.ct_ns").inc(1)
    coord.merge_snapshot(worker.snapshot(), prefix="campaign")
    assert coord.value("campaign.run.ct_ns") == 8
    assert coord.value("campaign.run.wall_s") == 1.5
    assert coord.get("campaign.lat").count == 1
    assert coord.names("campaign.ts") == []


def test_value_rejects_non_scalar_metrics():
    reg = MetricsRegistry()
    reg.histogram("h", (1.0,)).observe(0.5)
    with pytest.raises(TypeError, match="not a scalar"):
        reg.value("h")
