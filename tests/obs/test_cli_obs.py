"""CLI tests for the observability commands and flags."""

import json

from repro.cli import main
from repro.hpm import load_trace, load_trace_meta


def test_stats_command(tmp_path, capsys):
    out_file = tmp_path / "stats.json"
    main(["stats", "flo52", "4", "-o", str(out_file), "--scale", "0.005"])
    out = capsys.readouterr().out
    assert "wrote run report" in out
    report = json.loads(out_file.read_text())
    assert report["app"] == "FLO52"
    assert report["n_processors"] == 4
    assert report["metrics"]
    assert report["config"]["cycle_ns"] == 170


def test_profile_command(capsys):
    main(["profile", "flo52", "4", "--scale", "0.005", "-k", "3"])
    out = capsys.readouterr().out
    assert "top by host wall time" in out
    assert "top by simulated time" in out
    assert "memory_burst" in out


def test_run_with_stats_flag(tmp_path, capsys):
    out_file = tmp_path / "run-stats.json"
    main(["run", "flo52", "4", "--scale", "0.005", "--stats", str(out_file)])
    out = capsys.readouterr().out
    assert "wrote run report" in out
    report = json.loads(out_file.read_text())
    assert report["app"] == "FLO52"


def test_sweep_with_stats_flag(tmp_path, capsys):
    out_file = tmp_path / "sweep-stats.json"
    main(["sweep", "flo52", "--scale", "0.005", "--stats", str(out_file)])
    capsys.readouterr()
    reports = json.loads(out_file.read_text())
    assert isinstance(reports, list)
    assert [r["n_processors"] for r in reports] == [1, 4, 8, 16, 32]


def test_trace_command_writes_meta_header(tmp_path, capsys):
    out_file = tmp_path / "trace.jsonl"
    main(["trace", "flo52", "4", "-o", str(out_file), "--scale", "0.005"])
    capsys.readouterr()
    first = json.loads(out_file.read_text().splitlines()[0])
    assert "meta" in first
    meta = load_trace_meta(out_file)
    assert meta["app"] == "FLO52"
    assert meta["seed"] == 1994
    assert meta["config"]["n_memory_modules"] == 32
    # The header must not confuse the event loader.
    events = load_trace(out_file)
    assert events
    assert len(events) == len(out_file.read_text().splitlines()) - 1
