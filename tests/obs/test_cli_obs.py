"""CLI tests for the observability commands and flags."""

import json

import pytest

from repro.cli import main
from repro.hpm import load_trace, load_trace_meta


def test_stats_command(tmp_path, capsys):
    out_file = tmp_path / "stats.json"
    main(["stats", "flo52", "4", "-o", str(out_file), "--scale", "0.005"])
    out = capsys.readouterr().out
    assert "wrote run report" in out
    report = json.loads(out_file.read_text())
    assert report["app"] == "FLO52"
    assert report["n_processors"] == 4
    assert report["metrics"]
    assert report["config"]["cycle_ns"] == 170


def test_profile_command(capsys):
    main(["profile", "flo52", "4", "--scale", "0.005", "-k", "3"])
    out = capsys.readouterr().out
    assert "top by host wall time" in out
    assert "top by simulated time" in out
    assert "memory_burst" in out


def test_run_with_stats_flag(tmp_path, capsys):
    out_file = tmp_path / "run-stats.json"
    main(["run", "flo52", "4", "--scale", "0.005", "--stats", str(out_file)])
    out = capsys.readouterr().out
    assert "wrote run report" in out
    report = json.loads(out_file.read_text())
    assert report["app"] == "FLO52"


def test_sweep_with_stats_flag(tmp_path, capsys):
    out_file = tmp_path / "sweep-stats.json"
    main(["sweep", "flo52", "--scale", "0.005", "--stats", str(out_file)])
    capsys.readouterr()
    reports = json.loads(out_file.read_text())
    assert isinstance(reports, list)
    assert [r["n_processors"] for r in reports] == [1, 4, 8, 16, 32]


def test_trace_command_writes_meta_header(tmp_path, capsys):
    out_file = tmp_path / "trace.jsonl"
    main(["trace", "flo52", "4", "-o", str(out_file), "--scale", "0.005"])
    capsys.readouterr()
    first = json.loads(out_file.read_text().splitlines()[0])
    assert "meta" in first
    meta = load_trace_meta(out_file)
    assert meta["app"] == "FLO52"
    assert meta["seed"] == 1994
    assert meta["config"]["n_memory_modules"] == 32
    # The header must not confuse the event loader.
    events = load_trace(out_file)
    assert events
    assert len(events) == len(out_file.read_text().splitlines()) - 1


def test_sweep_with_campaign_log_and_report_round_trip(tmp_path, capsys):
    """sweep --log writes a campaign log; the report command rebuilds
    the same summary and exports JSON + Perfetto artifacts."""
    log = tmp_path / "campaign.jsonl"
    main(
        [
            "sweep",
            "flo52",
            "--scale",
            "0.002",
            "--log",
            str(log),
        ]
    )
    sweep_out = capsys.readouterr().out
    assert "Table 1" in sweep_out
    assert "campaign sweep FLO52:" in sweep_out
    assert f"wrote campaign log to {log}" in sweep_out
    summary = [ln for ln in sweep_out.splitlines() if ln.startswith("campaign ")]

    report_json = tmp_path / "report.json"
    trace_json = tmp_path / "trace.json"
    main(
        [
            "report",
            str(log),
            "--json",
            str(report_json),
            "--perfetto",
            str(trace_json),
        ]
    )
    report_out = capsys.readouterr().out
    assert summary[0] in report_out
    report = json.loads(report_json.read_text())
    assert report["schema"] == "cedar-repro/campaign-report/v1"
    assert report["cells"]["completed"] == 5
    assert report["latency_s"]["p95"] is not None
    assert report["code_fingerprint"]
    trace = json.loads(trace_json.read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_report_command_rejects_bad_files(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["report", str(tmp_path / "missing.jsonl")])
    assert exc.value.code == 2
    assert "error:" in capsys.readouterr().err

    foreign = tmp_path / "foreign.jsonl"
    foreign.write_text('{"schema": "other"}\n')
    with pytest.raises(SystemExit) as exc:
        main(["report", str(foreign)])
    assert exc.value.code == 2


def test_stats_surfaces_parallel_and_cache_counters(tmp_path, capsys):
    """stats --jobs/--cache-dir prints the executor's own counters."""
    cache_dir = tmp_path / "cache"
    main(
        [
            "stats",
            "flo52",
            "4",
            "--scale",
            "0.002",
            "--jobs",
            "2",
            "--cache-dir",
            str(cache_dir),
        ]
    )
    out = capsys.readouterr().out
    assert "parallel execution counters" in out
    assert "parallel.cells.total" in out
    assert "cache.misses" in out
    assert "campaign stats FLO52" in out

    # Warm rerun answers from the cache and says so.
    main(
        [
            "stats",
            "flo52",
            "4",
            "--scale",
            "0.002",
            "--jobs",
            "2",
            "--cache-dir",
            str(cache_dir),
        ]
    )
    out = capsys.readouterr().out
    assert "cache.hits" in out


def test_run_with_progress_flag_forces_progress_line(capsys):
    """--progress enables the reporter even without a TTY."""
    main(["run", "flo52", "4", "--scale", "0.002", "--progress"])
    captured = capsys.readouterr()
    assert "[2/2]" in captured.err
    assert "cells/s" in captured.err
