"""The seeded fuzzer: deterministic, prefix-stable, always valid."""

from __future__ import annotations

import pytest

from repro.scenario import (
    compile_scenario,
    generate_scenarios,
    parse_scenario,
    scenario_to_dict,
)


def test_generation_is_deterministic():
    assert generate_scenarios(5, 10) == generate_scenarios(5, 10)


def test_streams_are_prefix_stable():
    assert generate_scenarios(5, 4) == generate_scenarios(5, 10)[:4]


def test_names_carry_seed_and_index():
    docs = generate_scenarios(0x2A, 3)
    assert [doc.name for doc in docs] == [
        "fuzz-2a-0000",
        "fuzz-2a-0001",
        "fuzz-2a-0002",
    ]


def test_negative_count_rejected():
    with pytest.raises(ValueError, match=">= 0"):
        generate_scenarios(1, -1)


def test_zero_count_is_empty():
    assert generate_scenarios(1, 0) == []


def test_generated_documents_roundtrip_and_compile():
    for doc in generate_scenarios(1994, 20):
        assert parse_scenario(scenario_to_dict(doc)) == doc
        compile_scenario(doc)


def test_draw_space_is_covered():
    docs = generate_scenarios(3, 80)
    constructs = {loop.construct for doc in docs for loop in doc.loops}
    assert constructs == {"sdoall", "xdoall", "cluster_only", "cdoacross"}
    assert any(doc.machine for doc in docs)
    assert any(doc.background is not None for doc in docs)
    assert any(
        loop.iters_per_page for doc in docs for loop in doc.loops
    )
    assert any(
        loop.fresh_pages_each_step for doc in docs for loop in doc.loops
    )


def test_paging_is_wave_aligned():
    """Page boundaries must land on outer-iteration wave boundaries.

    Misaligned pages put straggler faults on the knife edge of earlier
    fault completions, where join-vs-new classification depends on
    same-tick event order (docs/scenarios.md, "Paging alignment") --
    the generator must never emit them.
    """
    for doc in generate_scenarios(17, 60):
        for loop in doc.loops:
            if loop.iters_per_page:
                assert loop.iters_per_page % loop.n_inner == 0


def test_os_budget_keeps_background_periods_bounded():
    """Scenarios with background traffic must span several quanta."""
    for doc in generate_scenarios(23, 60):
        if doc.background is None:
            continue
        period = doc.background.quantum_ns / doc.background.share
        work = sum(
            loop.n_outer * loop.n_inner * loop.iter_time_ns / doc.defaults.n_processors
            for loop in doc.loops
        )
        wall_lb = doc.init.serial_ns + doc.n_steps * (doc.serial.per_step_ns + work)
        assert wall_lb >= 3.0 * period
