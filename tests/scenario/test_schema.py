"""Schema validation: precise paths, total coverage, canonical form."""

from __future__ import annotations

import json

import pytest

from repro.scenario import (
    SCENARIO_SCHEMA,
    ScenarioDefaults,
    ScenarioError,
    canonical_scenario_json,
    load_scenario,
    parse_scenario,
    save_scenario,
    scenario_digest,
    scenario_to_dict,
)


def test_minimal_document_parses_with_defaults(minimal):
    doc = parse_scenario(minimal)
    assert doc.name == "minimal"
    assert doc.n_steps == 2
    assert doc.defaults == ScenarioDefaults(n_processors=32, scale=0.02, seed=1994)
    assert doc.machine == ()
    assert doc.background is None
    assert doc.init.serial_ns == 0
    assert doc.serial.per_step_ns == 0
    (loop,) = doc.loops
    assert loop.construct == "sdoall"
    assert loop.mem_fraction == 0.3
    assert loop.label == ""


def test_rich_document_parses(rich):
    doc = parse_scenario(rich)
    assert doc.machine_overrides == {"n_clusters": 2, "switch_queue_depth": 8}
    assert doc.background is not None and doc.background.share == 0.25
    assert doc.loops[0].fresh_pages_each_step
    assert doc.loops[1].cluster_ws_bytes == 8192


def _reject(data, path_fragment: str, reason_fragment: str = "") -> None:
    with pytest.raises(ScenarioError) as excinfo:
        parse_scenario(data)
    assert path_fragment in excinfo.value.path, excinfo.value
    assert reason_fragment in excinfo.value.reason, excinfo.value


def test_non_mapping_document_rejected():
    _reject([1, 2, 3], "$", "must be an object")


def test_wrong_schema_marker_rejected(minimal):
    minimal["schema"] = "cedar-repro/scenario/v999"
    _reject(minimal, "schema", "expected")


def test_unknown_top_level_field_rejected(minimal):
    minimal["turbo"] = True
    _reject(minimal, "$", "unknown field(s) ['turbo']")


def test_missing_name_rejected(minimal):
    del minimal["name"]
    _reject(minimal, "name", "is required")


def test_empty_name_rejected(minimal):
    minimal["name"] = ""
    _reject(minimal, "name", "non-empty")


def test_missing_loops_rejected(minimal):
    del minimal["loops"]
    _reject(minimal, "loops", "is required")


def test_empty_loops_rejected(minimal):
    minimal["loops"] = []
    _reject(minimal, "loops", "non-empty")


def test_bool_is_not_an_integer(minimal):
    # bool subclasses int in Python; the schema must still reject it.
    minimal["n_steps"] = True
    _reject(minimal, "n_steps", "must be an integer")


def test_zero_steps_rejected(minimal):
    minimal["n_steps"] = 0
    _reject(minimal, "n_steps", ">= 1")


def test_unknown_construct_named_with_index(minimal):
    minimal["loops"][0]["construct"] = "doacross_turbo"
    _reject(minimal, "loops[0].construct", "unknown construct")


def test_unknown_loop_field_rejected(minimal):
    minimal["loops"][0]["stride"] = 2
    _reject(minimal, "loops[0]", "unknown field(s) ['stride']")


def test_non_sdoall_outer_spread_rejected(minimal):
    minimal["loops"].append(
        {"construct": "xdoall", "n_outer": 3, "n_inner": 4, "iter_time_ns": 1000}
    )
    _reject(minimal, "loops[1].n_outer", "n_outer must be 1")


def test_fresh_pages_require_paging(minimal):
    minimal["loops"][0]["fresh_pages_each_step"] = True
    _reject(minimal, "loops[0].fresh_pages_each_step", "iters_per_page")


def test_nan_and_infinity_rejected(minimal):
    minimal["loops"][0]["mem_fraction"] = float("nan")
    _reject(minimal, "loops[0].mem_fraction", "finite")
    minimal["loops"][0]["mem_fraction"] = float("inf")
    _reject(minimal, "loops[0].mem_fraction", "finite")


def test_mem_rate_zero_is_outside_the_open_bound(minimal):
    minimal["loops"][0]["mem_rate"] = 0.0
    _reject(minimal, "loops[0].mem_rate", "must be in (0")


def test_mem_fraction_one_is_outside_the_open_bound(minimal):
    minimal["loops"][0]["mem_fraction"] = 1.0
    _reject(minimal, "loops[0].mem_fraction", "1.0)")


def test_scale_zero_rejected(minimal):
    minimal["defaults"] = {"scale": 0.0}
    _reject(minimal, "defaults.scale", "(0")


def test_unknown_machine_field_rejected(minimal):
    minimal["machine"] = {"warp_drive": 9}
    _reject(minimal, "machine", "unknown field(s) ['warp_drive']")


def test_machine_switch_radix_floor(minimal):
    minimal["machine"] = {"switch_radix": 1}
    _reject(minimal, "machine.switch_radix", ">= 2")


def test_incompatible_processor_count_rejected(minimal):
    # 12 CEs is not a whole number of 8-CE clusters.
    minimal["defaults"] = {"n_processors": 12}
    _reject(minimal, "defaults.n_processors", "whole number")


def test_background_share_bounds(minimal):
    minimal["background"] = {"share": 1.0, "quantum_ns": 1_000_000}
    _reject(minimal, "background.share", "1.0)")


def test_roundtrip_dict_equality(rich):
    doc = parse_scenario(rich)
    assert parse_scenario(scenario_to_dict(doc)) == doc


def test_canonical_json_is_stable(rich):
    doc = parse_scenario(rich)
    assert canonical_scenario_json(doc) == canonical_scenario_json(
        parse_scenario(scenario_to_dict(doc))
    )


def test_digest_tracks_content_and_name(rich):
    doc = parse_scenario(rich)
    renamed = parse_scenario({**scenario_to_dict(doc), "name": "other"})
    retimed = dict(scenario_to_dict(doc))
    retimed["loops"] = [dict(retimed["loops"][0], iter_time_ns=999), *retimed["loops"][1:]]
    assert scenario_digest(doc) != scenario_digest(renamed)
    assert scenario_digest(doc) != scenario_digest(parse_scenario(retimed))
    assert scenario_digest(doc) == scenario_digest(parse_scenario(scenario_to_dict(doc)))


def test_save_load_save_is_byte_identical(rich, tmp_path):
    doc = parse_scenario(rich)
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    save_scenario(doc, first)
    save_scenario(load_scenario(first), second)
    assert first.read_bytes() == second.read_bytes()


def test_yaml_roundtrip(rich, tmp_path):
    pytest.importorskip("yaml")
    doc = parse_scenario(rich)
    path = tmp_path / "scenario.yaml"
    save_scenario(doc, path)
    assert load_scenario(path) == doc


def test_load_missing_file_is_scenario_error(tmp_path):
    with pytest.raises(ScenarioError, match="cannot read"):
        load_scenario(tmp_path / "nope.json")


def test_load_invalid_json_is_scenario_error(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ScenarioError, match="not valid JSON"):
        load_scenario(path)


def test_load_invalid_yaml_is_scenario_error(tmp_path):
    pytest.importorskip("yaml")
    path = tmp_path / "broken.yaml"
    path.write_text("a: [unclosed")
    with pytest.raises(ScenarioError, match="not valid YAML"):
        load_scenario(path)


def test_error_message_carries_path_and_reason():
    err = ScenarioError("loops[2].mem_rate", "must be in (0, 1]")
    assert str(err) == "loops[2].mem_rate: must be in (0, 1]"
    assert isinstance(err, ValueError)


def test_schema_constant_matches_documents():
    assert SCENARIO_SCHEMA == "cedar-repro/scenario/v1"
    example = json.loads(canonical_scenario_json(parse_scenario({
        "schema": SCENARIO_SCHEMA,
        "name": "x",
        "n_steps": 1,
        "loops": [{"construct": "xdoall", "n_inner": 1, "iter_time_ns": 1}],
    })))
    assert example["schema"] == SCENARIO_SCHEMA
