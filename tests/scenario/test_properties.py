"""Property suite: the schema contract under adversarial documents.

Two halves, mirroring the docstring contract of
:func:`repro.scenario.schema.parse_scenario`:

* every document the *valid* strategy builds parses, compiles and
  round-trips;
* every document the *adversarial* strategies build -- junk values,
  deleted fields, injected fields, arbitrary JSON -- either parses or
  fails with :class:`ScenarioError`, never with anything else, and a
  document that parses always compiles.

A third, smaller property takes generator output through the full
runtime gauntlet (two same-seed runs byte-identical, tie-break
perturbation hazard-free) -- the same check CI's ``scenario-fuzz`` job
runs at scale.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import (
    ScenarioDoc,
    ScenarioError,
    compile_scenario,
    generate_scenarios,
    parse_scenario,
    scenario_to_dict,
)

# ---------------------------------------------------------------------------
# Valid-document strategy
# ---------------------------------------------------------------------------

_SAFE_MACHINES = (
    {},
    {"n_memory_modules": 16},
    {"switch_queue_depth": 8},
    {"n_clusters": 2, "model_cluster_cache": True},
    {"cluster_channel_words_per_cycle": 1.5},
)


def _loops():
    sdoall = st.fixed_dictionaries(
        {
            "construct": st.just("sdoall"),
            "n_outer": st.integers(1, 6),
            "n_inner": st.integers(1, 32),
            "iter_time_ns": st.integers(1, 10_000_000),
        },
        optional={
            "mem_fraction": st.floats(0.0, 0.99),
            "mem_rate": st.floats(0.01, 1.0),
            "work_skew": st.floats(0.0, 0.99),
            "cluster_ws_bytes": st.integers(0, 1 << 20),
            "label": st.text(max_size=12),
        },
    )
    flat = st.fixed_dictionaries(
        {
            "construct": st.sampled_from(("xdoall", "cluster_only", "cdoacross")),
            "n_inner": st.integers(1, 32),
            "iter_time_ns": st.integers(1, 10_000_000),
        },
        optional={
            "mem_fraction": st.floats(0.0, 0.99),
            "mem_rate": st.floats(0.01, 1.0),
            "label": st.text(max_size=12),
        },
    )

    def add_paging(loop):
        # iters_per_page aligned to n_inner waves, as the generator does.
        total = loop.get("n_outer", 1) * loop["n_inner"]
        return st.one_of(
            st.just(loop),
            st.integers(1, max(1, total // loop["n_inner"])).map(
                lambda k: {**loop, "iters_per_page": k * loop["n_inner"]}
            ),
        )

    return st.one_of(sdoall, flat).flatmap(add_paging)


def valid_documents():
    return st.fixed_dictionaries(
        {
            "schema": st.just("cedar-repro/scenario/v1"),
            "name": st.text(min_size=1, max_size=20),
            "n_steps": st.integers(1, 8),
            "loops": st.lists(_loops(), min_size=1, max_size=3),
        },
        optional={
            "description": st.text(max_size=40),
            "defaults": st.fixed_dictionaries(
                {},
                optional={
                    "n_processors": st.sampled_from((1, 2, 4, 8, 16, 32)),
                    "scale": st.floats(0.001, 1.0),
                    "seed": st.integers(0, 2**31),
                },
            ),
            "machine": st.sampled_from(_SAFE_MACHINES),
            "background": st.fixed_dictionaries(
                {
                    "share": st.floats(0.05, 0.95),
                    "quantum_ns": st.integers(1_000_000, 50_000_000),
                },
                optional={
                    "coscheduled": st.booleans(),
                    "seed": st.integers(0, 1000),
                },
            ),
            "init": st.fixed_dictionaries(
                {},
                optional={
                    "serial_ns": st.integers(0, 10_000_000),
                    "pages": st.integers(0, 8),
                },
            ),
            "serial": st.fixed_dictionaries(
                {},
                optional={
                    "per_step_ns": st.integers(0, 10_000_000),
                    "pages": st.integers(0, 4),
                    "syscalls": st.integers(0, 4),
                    "mem_fraction": st.floats(0.0, 0.99),
                    "mem_rate": st.floats(0.01, 1.0),
                },
            ),
        },
    )


@settings(max_examples=150, deadline=None)
@given(data=valid_documents())
def test_valid_documents_parse_compile_and_roundtrip(data):
    doc = parse_scenario(data)
    assert isinstance(doc, ScenarioDoc)
    compiled = compile_scenario(doc)
    assert compiled.model.n_steps == doc.n_steps
    assert parse_scenario(scenario_to_dict(doc)) == doc


# ---------------------------------------------------------------------------
# Adversarial strategies
# ---------------------------------------------------------------------------

_JUNK = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=8),
    st.lists(st.integers(), max_size=3),
    st.dictionaries(st.text(max_size=5), st.integers(), max_size=3),
)


def _mutate(document: dict, op: int, key_path: list, junk) -> dict:
    """Apply one structural mutation at a (possibly nested) location."""
    mutated = copy.deepcopy(document)
    node = mutated
    for key in key_path:
        if isinstance(node, dict) and node:
            node = node[sorted(node)[key % len(node)]]
        elif isinstance(node, list) and node:
            node = node[key % len(node)]
        else:
            break
    if not isinstance(node, dict):
        node = mutated
    keys = sorted(node)
    if op == 0 and keys:  # replace a value with junk
        node[keys[key_path[-1] % len(keys)] if key_path else keys[0]] = junk
    elif op == 1 and keys:  # delete a field
        del node[keys[(key_path[-1] if key_path else 0) % len(keys)]]
    else:  # inject an unknown field
        node["__fuzz__"] = junk
    return mutated


@settings(max_examples=200, deadline=None)
@given(
    data=valid_documents(),
    op=st.integers(0, 2),
    key_path=st.lists(st.integers(0, 7), max_size=3),
    junk=_JUNK,
)
def test_mutated_documents_never_crash_with_other_errors(data, op, key_path, junk):
    mutated = _mutate(data, op, key_path, junk)
    try:
        doc = parse_scenario(mutated)
    except ScenarioError:
        return  # rejected with the contracted error type: fine
    # Validate-then-compile: a document that parses must compile.
    compile_scenario(doc)


_ARBITRARY_JSON = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=True, allow_infinity=True),
        st.text(max_size=10),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=200, deadline=None)
@given(data=_ARBITRARY_JSON)
def test_arbitrary_values_never_crash_with_other_errors(data):
    try:
        doc = parse_scenario(data)
    except ScenarioError:
        return
    compile_scenario(doc)


# ---------------------------------------------------------------------------
# End-to-end property on generator output
# ---------------------------------------------------------------------------


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_generated_scenarios_survive_the_gauntlet(seed):
    from repro.scenario import verify_scenario

    (doc,) = generate_scenarios(seed, 1)
    verification = verify_scenario(doc, race_seeds=(1,))
    assert verification.passed, verification.format()
    assert verification.tie_breaks >= 0
    assert verification.fingerprint and verification.schedule_hash
