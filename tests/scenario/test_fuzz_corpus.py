"""A pinned slice of the CI fuzz corpus, run end to end.

CI's ``scenario-fuzz`` job runs hundreds of seeded scenarios through
:func:`repro.scenario.verify_scenario`; this suite pins the first few
of the same (seed 1994) stream so a regression shows up in the tier-1
run, not only in CI, and exercises the cache/parallel leg the job
samples.
"""

from __future__ import annotations

import pytest

from repro.scenario import generate_scenarios, verify_scenario

CORPUS = generate_scenarios(1994, 3)


@pytest.mark.parametrize("doc", CORPUS, ids=[doc.name for doc in CORPUS])
def test_corpus_scenario_is_deterministic_and_hazard_free(doc):
    verification = verify_scenario(doc, race_seeds=(1,))
    assert verification.passed, verification.format()


def test_corpus_scenario_parallelizes_byte_identically(tmp_path):
    verification = verify_scenario(
        CORPUS[0], race_seeds=(), parallel_jobs=2, cache_dir=str(tmp_path)
    )
    assert verification.passed, verification.format()


def test_verification_report_formats():
    verification = verify_scenario(CORPUS[0], race_seeds=())
    text = verification.format()
    assert CORPUS[0].name in text
    assert "PASS" in text
    assert "deterministic" in text
