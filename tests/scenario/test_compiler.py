"""Compiler correctness: scenarios lower exactly onto the AppModel API."""

from __future__ import annotations

import pytest

from repro.apps import PAPER_APPS
from repro.core import run_application
from repro.scenario import (
    ScenarioError,
    compile_scenario,
    export_app,
    parse_scenario,
    scenario_from_model,
)
from repro.xylem.params import XylemParams


def models_equal(a, b) -> bool:
    """Structural AppModel equality (AppModel itself compares by id)."""
    return scenario_from_model(a) == scenario_from_model(b)


@pytest.mark.parametrize("name", sorted(PAPER_APPS))
def test_exported_apps_recompile_to_equal_models(name):
    assert models_equal(compile_scenario(export_app(name)).model, PAPER_APPS[name]())


def test_compile_accepts_raw_mappings(minimal):
    compiled = compile_scenario(minimal)
    assert compiled.model.name == "minimal"
    assert compiled.model.n_steps == 2
    assert compiled.doc == parse_scenario(minimal)


def test_compile_rejects_malformed_mapping(minimal):
    minimal["loops"] = []
    with pytest.raises(ScenarioError):
        compile_scenario(minimal)


def test_loop_fields_transliterate_exactly(rich):
    compiled = compile_scenario(rich)
    doc = compiled.doc
    for spec, shape in zip(doc.loops, compiled.model.loops_per_step):
        assert shape.construct.value == spec.construct
        assert shape.n_outer == spec.n_outer
        assert shape.n_inner == spec.n_inner
        assert shape.iter_time_ns == spec.iter_time_ns
        assert shape.mem_fraction == spec.mem_fraction
        assert shape.mem_rate == spec.mem_rate
        assert shape.iters_per_page == spec.iters_per_page
        assert shape.fresh_pages_each_step == spec.fresh_pages_each_step
        assert shape.work_skew == spec.work_skew
        assert shape.cluster_ws_bytes == spec.cluster_ws_bytes
        assert shape.label == spec.label


def test_config_applies_machine_overrides(rich):
    compiled = compile_scenario(rich)
    config = compiled.config()
    # with_processors(8) collapses to one cluster of 8 CEs; the queue
    # override must survive the derivation.
    assert config.switch_queue_depth == 8
    assert config.n_clusters * config.ces_per_cluster == 8
    assert compiled.config(16).n_clusters * compiled.config(16).ces_per_cluster == 16


def test_pre_run_hook_only_with_background(minimal, rich):
    assert compile_scenario(minimal).pre_run_hook() is None
    assert callable(compile_scenario(rich).pre_run_hook())


def test_builder_matches_hand_coded_builder_contract():
    compiled = compile_scenario(export_app("mdg"))
    assert models_equal(compiled.builder(), PAPER_APPS["MDG"]())
    # Two calls return equal, independent models (race_model re-builds
    # the model per perturbation run).
    first, second = compiled.builder(), compiled.builder()
    assert first is not second and models_equal(first, second)


def test_compiled_run_matches_run_application():
    from repro.analyze.race import fingerprint_result

    compiled = compile_scenario(export_app("flo52"))
    via_scenario = compiled.run(8, 0.005, 1994)
    direct = run_application(
        PAPER_APPS["FLO52"](), 8, scale=0.005, os_params=XylemParams(seed=1994)
    )
    assert (
        fingerprint_result(via_scenario).digest == fingerprint_result(direct).digest
    )


def test_run_uses_document_defaults(minimal):
    minimal["defaults"] = {"n_processors": 4, "scale": 1.0, "seed": 11}
    compiled = compile_scenario(minimal)
    explicit = compiled.run(4, 1.0, 11)
    defaulted = compiled.run()
    from repro.analyze.race import fingerprint_result

    assert fingerprint_result(explicit).digest == fingerprint_result(defaulted).digest


def test_digest_matches_schema_digest(rich):
    from repro.scenario import scenario_digest

    compiled = compile_scenario(rich)
    assert compiled.digest == scenario_digest(compiled.doc)
