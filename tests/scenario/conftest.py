"""Shared fixtures for the scenario-DSL suite."""

from __future__ import annotations

import copy

import pytest


def minimal_doc() -> dict:
    """The smallest interesting valid scenario document."""
    return {
        "schema": "cedar-repro/scenario/v1",
        "name": "minimal",
        "n_steps": 2,
        "loops": [
            {"construct": "sdoall", "n_outer": 2, "n_inner": 8, "iter_time_ns": 100_000}
        ],
    }


def rich_doc() -> dict:
    """A valid document exercising every optional section."""
    return {
        "schema": "cedar-repro/scenario/v1",
        "name": "rich",
        "description": "every optional section populated",
        "defaults": {"n_processors": 8, "scale": 0.5, "seed": 7},
        "machine": {"n_clusters": 2, "switch_queue_depth": 8},
        "background": {"share": 0.25, "quantum_ns": 10_000_000},
        "init": {"serial_ns": 1_000_000, "pages": 2},
        "n_steps": 3,
        "serial": {"per_step_ns": 500_000, "pages": 1, "syscalls": 1},
        "loops": [
            {
                "construct": "sdoall",
                "n_outer": 4,
                "n_inner": 16,
                "iter_time_ns": 200_000,
                "iters_per_page": 16,
                "fresh_pages_each_step": True,
                "work_skew": 0.3,
                "label": "waves",
            },
            {
                "construct": "cluster_only",
                "n_inner": 8,
                "iter_time_ns": 150_000,
                "cluster_ws_bytes": 8192,
                "label": "stencil",
            },
        ],
    }


@pytest.fixture
def minimal() -> dict:
    return copy.deepcopy(minimal_doc())


@pytest.fixture
def rich() -> dict:
    return copy.deepcopy(rich_doc())
