"""Exporters: exact round trips and a committed-examples sync check."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps import PAPER_APPS
from repro.scenario import (
    ScenarioError,
    compile_scenario,
    export_app,
    parse_scenario,
    scenario_from_model,
    scenario_to_dict,
    synthetic_examples,
    write_examples,
)

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples" / "scenarios"


@pytest.mark.parametrize("name", sorted(PAPER_APPS))
def test_export_roundtrip_is_exact(name):
    model = PAPER_APPS[name]()
    recompiled = compile_scenario(scenario_from_model(model)).model
    # AppModel compares by identity; the exported document is a total,
    # structural view of the model, so export-equality is exactness.
    assert scenario_from_model(recompiled) == scenario_from_model(model)


def test_export_app_is_case_insensitive():
    assert export_app("ocean") == export_app("OCEAN")


def test_export_unknown_app_raises_scenario_error():
    with pytest.raises(ScenarioError, match="unknown application"):
        export_app("linpack")


def test_synthetic_examples_validate_and_compile():
    topology, background = synthetic_examples()
    for doc in (topology, background):
        assert parse_scenario(scenario_to_dict(doc)) == doc
        compile_scenario(doc)
    assert topology.machine_overrides["n_clusters"] == 2
    assert background.background is not None


def test_committed_examples_are_in_sync(tmp_path):
    """`scenario export --all` over a clean checkout must be a no-op."""
    written = write_examples(tmp_path)
    assert len(written) == 7
    for path in written:
        committed = EXAMPLES_DIR / path.name
        assert committed.is_file(), (
            f"{committed} is missing; run `cedar-repro scenario export --all`"
        )
        assert committed.read_bytes() == path.read_bytes(), (
            f"{committed} is stale; run `cedar-repro scenario export --all`"
        )


def test_committed_examples_have_no_strays():
    fresh = {f"{name.lower()}.json" for name in PAPER_APPS}
    fresh |= {f"{doc.name}.json" for doc in synthetic_examples()}
    assert {p.name for p in EXAMPLES_DIR.glob("*.json")} == fresh
