"""Cache-key discipline for scenario cells.

The negative tests are the point: two scenario documents that merely
share a display name must produce *different* cell keys (the key folds
in the document digest, not the name), and a scenario cell must never
collide with the plain named-app cell it shadows.
"""

from __future__ import annotations

import pytest

from repro.parallel.cache import KEY_SCHEMA, cell_key
from repro.parallel.executor import CellSpec
from repro.parallel.journal import spec_from_dict, spec_to_dict
from repro.scenario import canonical_scenario_json, compile_scenario, parse_scenario


def _spec(doc_data: dict | None = None, **kwargs) -> CellSpec:
    scenario = None
    if doc_data is not None:
        scenario = canonical_scenario_json(parse_scenario(doc_data))
    defaults = dict(app="FLO52", n_processors=8, scale=0.02, seed=1994)
    defaults.update(kwargs)
    return CellSpec(scenario=scenario, **defaults)


def test_key_schema_was_bumped_for_scenarios():
    assert KEY_SCHEMA == "cedar-repro/cell-key/v2"


def test_same_name_different_documents_never_collide(minimal, rich):
    rich["name"] = minimal["name"]
    a = _spec(minimal, app=minimal["name"])
    b = _spec(rich, app=minimal["name"])
    assert a.app == b.app
    assert cell_key(a) != cell_key(b)


def test_scenario_cell_never_collides_with_named_app_cell(minimal):
    minimal["name"] = "FLO52"
    assert cell_key(_spec(minimal)) != cell_key(_spec(None))


def test_identical_documents_share_a_key(minimal):
    import copy

    assert cell_key(_spec(minimal)) == cell_key(_spec(copy.deepcopy(minimal)))


def test_key_still_tracks_the_grid_point(minimal):
    base = _spec(minimal)
    assert cell_key(base) != cell_key(_spec(minimal, n_processors=16))
    assert cell_key(base) != cell_key(_spec(minimal, seed=7))
    assert cell_key(base) != cell_key(_spec(minimal, scale=0.01))


def test_spec_rejects_scenario_plus_campaign(minimal):
    from repro.faults.spec import CampaignSpec

    campaign = CampaignSpec(name="c", seed=1, faults=())
    with pytest.raises(ValueError, match="scenario"):
        CellSpec(
            app="X",
            n_processors=8,
            scale=0.02,
            seed=1,
            campaign=campaign,
            scenario=canonical_scenario_json(parse_scenario(minimal)),
        )


def test_journal_roundtrips_scenario_specs(minimal):
    spec = _spec(minimal)
    assert spec_from_dict(spec_to_dict(spec)) == spec
    assert spec_from_dict(spec_to_dict(spec)).key() == spec.key()


def test_run_cell_executes_scenario_specs(minimal):
    from repro.analyze.race import fingerprint_result
    from repro.parallel.executor import run_cell

    minimal["defaults"] = {"scale": 1.0}
    compiled = compile_scenario(minimal)
    snapshot = run_cell(_spec(minimal, app="minimal", n_processors=4, scale=1.0))
    direct = compiled.run(4, 1.0, 1994)
    assert fingerprint_result(snapshot).digest == fingerprint_result(direct).digest
