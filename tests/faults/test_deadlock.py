"""Deadline-based deadlock detection under adversarial fault conditions."""

import pytest

from repro.apps import PAPER_APPS
from repro.core import run_application
from repro.runtime.params import RuntimeParams
from repro.sim import DeadlockSuspected
from repro.xylem.params import XylemParams

SCALE = 0.002
SEED = 1994


def _freeze_cluster_hook(cluster_id, at_ns):
    """A pre-run hook that permanently freezes one cluster mid-run."""

    def hook(sim, machine, kernel, runtime):
        def freezer(sim):
            yield sim.timeout(at_ns)
            kernel.clusters[cluster_id].freeze()

        sim.process(freezer(sim), name="adversarial-freezer")

    return hook


def test_frozen_cluster_trips_barrier_deadline():
    params = RuntimeParams(
        barrier_deadline_ns=20_000_000, pickup_deadline_ns=20_000_000
    )
    with pytest.raises(DeadlockSuspected) as excinfo:
        run_application(
            PAPER_APPS["FLO52"](),
            16,
            scale=SCALE,
            os_params=XylemParams(seed=SEED),
            rt_params=params,
            pre_run_hook=_freeze_cluster_hook(1, at_ns=1_000_000),
        )
    err = excinfo.value
    assert err.waited_ns == 20_000_000
    assert err.sim_time_ns > 1_000_000
    assert "deadline" in str(err) or "waited" in str(err)


def test_generous_deadlines_do_not_fire_on_healthy_runs():
    params = RuntimeParams(
        barrier_deadline_ns=10_000_000_000, pickup_deadline_ns=10_000_000_000
    )
    result = run_application(
        PAPER_APPS["FLO52"](),
        16,
        scale=SCALE,
        os_params=XylemParams(seed=SEED),
        rt_params=params,
    )
    baseline = run_application(
        PAPER_APPS["FLO52"](),
        16,
        scale=SCALE,
        os_params=XylemParams(seed=SEED),
    )
    # Un-tripped deadlines must not perturb the simulation at all.
    assert result.ct_ns == baseline.ct_ns


def test_deadline_params_validated():
    with pytest.raises(ValueError):
        RuntimeParams(barrier_deadline_ns=0)
    with pytest.raises(ValueError):
        RuntimeParams(pickup_deadline_ns=-5)
