"""Tests for the degraded-mode characterization experiment."""

from repro.faults import degraded_campaign, degraded_mode_experiment


def test_degraded_campaign_shape():
    spec = degraded_campaign()
    kinds = sorted(f.kind for f in spec.faults)
    assert kinds == ["bank_slow", "ce_deconfig"]
    assert spec.name == "degraded-canonical"


def test_degraded_mode_experiment_structure():
    report = degraded_mode_experiment(
        apps=("FLO52",), n_processors=4, scale=0.002, seed=1994
    )
    assert len(report.rows) == 2
    modes = [row[1] for row in report.rows]
    assert modes == ["healthy", "degraded"]
    healthy_ct, degraded_ct = (row[2] for row in report.rows)
    # The slow bank and the dead CE must cost something.
    assert degraded_ct > healthy_ct
    outcome = report.outcomes["FLO52"]
    assert outcome.ledger.injected == 2

    rendered = report.render()
    assert "healthy" in rendered
    assert "degraded" in rendered
    assert "Degraded-mode characterization" in rendered
    # Every percentage cell is a sane fraction of CT.
    for row in report.rows:
        for cell in row[3:]:
            assert 0.0 <= cell <= 100.0
