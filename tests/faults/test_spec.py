"""Tests for campaign specs: validation, (de)serialisation, generation."""

import json

import pytest

from repro.faults import (
    CampaignError,
    CampaignSpec,
    FaultEvent,
    generate_campaign,
    load_campaign,
    save_campaign,
)


def test_round_trip(tmp_path):
    spec = CampaignSpec(
        name="rt",
        seed=7,
        description="round trip",
        apps=("FLO52",),
        configs=(4, 8),
        faults=(
            FaultEvent(kind="bank_slow", at_ns=100, target=3, factor=2.0),
            FaultEvent(kind="lock_inflate", at_ns=200, factor=4.0, duration_ns=1000),
        ),
    )
    path = tmp_path / "c.json"
    save_campaign(spec, path)
    assert load_campaign(path) == spec


def test_unknown_kind_rejected():
    with pytest.raises(CampaignError, match="unknown fault kind"):
        FaultEvent(kind="meteor_strike", at_ns=0)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(kind="bank_slow", at_ns=0, target=0, factor=1.0),
        dict(kind="bank_slow", at_ns=0, factor=2.0),
        dict(kind="bank_offline", at_ns=0),
        dict(kind="switch_degrade", at_ns=0, extra_cycles=0),
        dict(kind="switch_stall", at_ns=0, target=0),
        dict(kind="ce_deconfig", at_ns=0, target=1, duration_ns=10),
        dict(kind="lock_inflate", at_ns=0, factor=0.5),
        dict(kind="pagefault_storm", at_ns=0, fraction=1.5),
        dict(kind="pagefault_storm", at_ns=0, fraction=0.5, duration_ns=10),
        dict(kind="bank_slow", at_ns=-5, target=0, factor=2.0),
    ],
)
def test_invalid_fault_events_rejected(kwargs):
    with pytest.raises(CampaignError):
        FaultEvent(**kwargs)


def test_malformed_json_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(CampaignError, match="not valid JSON"):
        load_campaign(path)


def test_missing_file_rejected(tmp_path):
    with pytest.raises(CampaignError, match="cannot read"):
        load_campaign(tmp_path / "nope.json")


def test_unknown_fields_rejected(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps({"name": "x", "surprise": 1}))
    with pytest.raises(CampaignError, match="unknown campaign fields"):
        load_campaign(path)


def test_unknown_fault_field_rejected(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(
        json.dumps({"name": "x", "faults": [{"kind": "bank_slow", "wat": 1}]})
    )
    with pytest.raises(CampaignError, match="fault #0"):
        load_campaign(path)


def test_generate_is_seed_deterministic():
    a = generate_campaign(seed=42, n_faults=6)
    b = generate_campaign(seed=42, n_faults=6)
    assert a == b
    c = generate_campaign(seed=43, n_faults=6)
    assert a != c


def test_generate_never_emits_switch_stall():
    spec = generate_campaign(seed=5, n_faults=50)
    assert all(f.kind != "switch_stall" for f in spec.faults)
    # Strike times are sorted so the schedule reads chronologically.
    times = [f.at_ns for f in spec.faults]
    assert times == sorted(times)
