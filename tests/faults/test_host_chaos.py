"""Host-fault plane: plan validation, seeded generation, cache sabotage.

These are the *plans* and worker-side seams; the end-to-end recovery
from an executed plan is exercised in
``tests/integration/test_crash_resume.py`` and ``scripts/chaos_sweep.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import (
    HOST_CHAOS_SCHEMA,
    HOST_FAULT_KINDS,
    HostChaosError,
    HostChaosPlan,
    HostFault,
    corrupt_cache_entry,
    generate_host_chaos,
    load_host_chaos,
    save_host_chaos,
)
from repro.faults.host import apply_host_fault
from repro.parallel import CellSpec, ResultCache, cell_key

APPS = ("FLO52", "OCEAN", "ADM")
CONFIGS = (1, 4, 8)


# -- fault and plan validation -----------------------------------------------


def test_unknown_kind_is_refused():
    with pytest.raises(HostChaosError, match="unknown host fault kind"):
        HostFault(kind="meteor_strike", app="FLO52", n_processors=4)


@pytest.mark.parametrize("field", ["attempt", "delay_s"])
def test_bad_fault_numbers_are_refused(field):
    kwargs = {"kind": "worker_kill", "app": "FLO52", "n_processors": 4, field: -1}
    with pytest.raises(HostChaosError):
        HostFault(**kwargs)


def test_empty_plan_name_is_refused():
    with pytest.raises(HostChaosError, match="name"):
        HostChaosPlan(name="", seed=1)


def test_for_cell_matches_app_procs_and_attempt():
    fault = HostFault(kind="worker_hang", app="OCEAN", n_processors=4, attempt=2)
    plan = HostChaosPlan(name="t", seed=1, faults=(fault,))
    assert plan.for_cell("OCEAN", 4, 2) is fault
    assert plan.for_cell("OCEAN", 4, 1) is None
    assert plan.for_cell("OCEAN", 8, 2) is None
    assert plan.for_cell("FLO52", 4, 2) is None


def test_plan_json_roundtrip(tmp_path):
    plan = generate_host_chaos(APPS, CONFIGS, seed=7, name="roundtrip")
    path = tmp_path / "plan.json"
    save_host_chaos(plan, path)
    loaded = load_host_chaos(path)
    assert loaded == plan
    assert plan.to_dict()["schema"] == HOST_CHAOS_SCHEMA


def test_junk_plan_files_are_refused(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(HostChaosError, match="not valid JSON"):
        load_host_chaos(bad)
    with pytest.raises(HostChaosError, match="cannot read"):
        load_host_chaos(tmp_path / "missing.json")
    with pytest.raises(HostChaosError, match="unknown host chaos fields"):
        HostChaosPlan.from_dict({"name": "x", "surprise": 1})
    with pytest.raises(HostChaosError, match="host fault #0"):
        HostChaosPlan.from_dict({"name": "x", "faults": [{"kind": "worker_kill"}]})


# -- seeded generation -------------------------------------------------------


def test_generation_is_seed_deterministic():
    a = generate_host_chaos(APPS, CONFIGS, seed=42)
    b = generate_host_chaos(APPS, CONFIGS, seed=42)
    assert a == b
    assert generate_host_chaos(APPS, CONFIGS, seed=43) != a


def test_generation_picks_distinct_victims_of_each_kind():
    plan = generate_host_chaos(APPS, CONFIGS, seed=3, kills=2, hangs=1, stragglers=2)
    victims = [(f.app, f.n_processors) for f in plan.faults]
    assert len(victims) == len(set(victims)) == 5
    kinds = {f.kind for f in plan.faults}
    assert kinds <= set(HOST_FAULT_KINDS)
    assert all(f.attempt == 1 for f in plan.faults)


def test_generation_refuses_more_victims_than_cells():
    with pytest.raises(HostChaosError, match="victim cells"):
        generate_host_chaos(("FLO52",), (1,), seed=1, kills=1, hangs=1)


# -- worker-side application -------------------------------------------------


def test_slow_start_sleeps_then_returns_none():
    fault = HostFault(kind="slow_start", app="A", n_processors=1, delay_s=0.05)
    begin = time.perf_counter()
    assert apply_host_fault(fault) is None
    assert time.perf_counter() - begin >= 0.05


def test_worker_kill_arms_a_cancellable_timer():
    fault = HostFault(kind="worker_kill", app="A", n_processors=1, delay_s=60.0)
    timer = apply_host_fault(fault)
    assert timer is not None
    timer.cancel()  # the cell "finished first": the fault simply missed


# -- cache sabotage ----------------------------------------------------------

CODE = "feedface" * 4


@pytest.fixture
def stocked_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = cell_key(CellSpec(app="FLO52", n_processors=4), code=CODE)
    cache.put(key, {"rows": [1, 2, 3]})
    return cache, key


@pytest.mark.parametrize("mode", ["truncate", "flip"])
def test_corrupt_cache_entry_forces_quarantined_miss(stocked_cache, mode):
    cache, key = stocked_cache
    corrupt_cache_entry(cache, key, mode=mode)
    assert cache.get(key) is None
    assert cache.quarantined == 1
    assert not cache.path_for(key).exists()


def test_corrupt_cache_entry_refuses_junk(stocked_cache):
    cache, key = stocked_cache
    with pytest.raises(HostChaosError, match="no cache entry"):
        corrupt_cache_entry(cache, "0" * 32)
    with pytest.raises(HostChaosError, match="unknown corruption mode"):
        corrupt_cache_entry(cache, key, mode="vaporise")
