"""Fault campaigns are bit-deterministic and pass the determinism lint."""

from pathlib import Path

from repro.analyze.engine import lint_paths
from repro.analyze.sanitize import DeterminismSink
from repro.core.breakdown import ct_breakdown
from repro.faults import degraded_campaign, run_with_campaign
from repro.obs import Observability

SCALE = 0.002

FAULTS_SRC = Path(__file__).resolve().parents[2] / "src" / "repro" / "faults"


def _instrumented_run(seed):
    sink = DeterminismSink()
    obs = Observability(extra_sinks=[sink])
    outcome = run_with_campaign(
        degraded_campaign(seed), "FLO52", 4, scale=SCALE, seed=seed, obs=obs
    )
    return sink, outcome, obs


def test_same_seed_same_schedule_and_breakdown():
    sink_a, outcome_a, obs_a = _instrumented_run(1994)
    sink_b, outcome_b, obs_b = _instrumented_run(1994)
    assert sink_a.schedule_hash == sink_b.schedule_hash
    assert outcome_a.result.ct_ns == outcome_b.result.ct_ns
    assert ct_breakdown(outcome_a.result, 0) == ct_breakdown(outcome_b.result, 0)
    names = obs_a.registry.names("faults")
    assert names == obs_b.registry.names("faults")
    assert names  # the campaign must actually have injected something
    for name in names:
        assert obs_a.registry.value(name) == obs_b.registry.value(name)


def test_different_seed_changes_schedule():
    sink_a, _, _ = _instrumented_run(1994)
    sink_b, _, _ = _instrumented_run(2023)
    assert sink_a.schedule_hash != sink_b.schedule_hash


def test_fault_ledgers_identical_across_runs():
    _, outcome_a, _ = _instrumented_run(1994)
    _, outcome_b, _ = _instrumented_run(1994)
    notes_a = [(r.kind, r.applied_ns, r.note) for r in outcome_a.ledger.records]
    notes_b = [(r.kind, r.applied_ns, r.note) for r in outcome_b.ledger.records]
    assert notes_a == notes_b


def test_faults_package_passes_determinism_lint():
    result = lint_paths([FAULTS_SRC])
    assert result.files_checked >= 4
    assert result.ok, "\n".join(str(f) for f in result.findings)
