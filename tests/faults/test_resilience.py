"""Tests for the resilient sweep: one bad cell must not sink the sweep."""

import json

import pytest

from repro.apps import synthetic_app
from repro.core import (
    failure_report,
    render_partial_table,
    resilient_sweep,
    run_application,
    save_failure_report,
)
from repro.xylem.params import XylemParams

_TINY = synthetic_app(
    n_steps=1, loops_per_step=1, n_outer=2, n_inner=8, iter_time_ns=20_000
)


def _run_cell_with_poison(poisoned, calls):
    def run_cell(app, n_proc):
        calls.append((app, n_proc))
        if (app, n_proc) in poisoned:
            raise RuntimeError(f"poisoned cell {app}/{n_proc}")
        return run_application(_TINY, n_proc, scale=1.0, os_params=XylemParams(seed=1))

    return run_cell


def test_failing_cell_is_isolated():
    calls = []
    run_cell = _run_cell_with_poison({("B", 4)}, calls)
    outcome = resilient_sweep(["A", "B"], configs=(1, 4), run_cell=run_cell)

    assert not outcome.ok
    assert outcome.failed_cells() == {("B", 4)}
    # All other cells completed despite the failure.
    assert sorted(outcome.results["A"]) == [1, 4]
    assert sorted(outcome.results["B"]) == [1]
    failure = outcome.failures[0]
    assert failure.error_type == "RuntimeError"
    assert failure.attempts == 2  # first try + one same-seed retry
    assert calls.count(("B", 4)) == 2


def test_retries_zero_means_single_attempt():
    calls = []
    run_cell = _run_cell_with_poison({("A", 1)}, calls)
    outcome = resilient_sweep(["A"], configs=(1,), retries=0, run_cell=run_cell)
    assert outcome.failures[0].attempts == 1
    assert calls == [("A", 1)]


def test_negative_retries_rejected():
    with pytest.raises(ValueError, match="retries"):
        resilient_sweep(["A"], configs=(1,), retries=-1)


def test_partial_table_marks_failures():
    run_cell = _run_cell_with_poison({("B", 4)}, [])
    outcome = resilient_sweep(["A", "B"], configs=(1, 4), run_cell=run_cell)
    table = render_partial_table(outcome)
    assert "FAILED(RuntimeError)" in table
    assert "partial: 1 cell(s) failed" in table
    assert "ok" in table


def test_failure_report_round_trips(tmp_path):
    run_cell = _run_cell_with_poison({("B", 4)}, [])
    outcome = resilient_sweep(["A", "B"], configs=(1, 4), run_cell=run_cell)
    report = failure_report(outcome)
    assert report["schema"] == "cedar-repro/failure-report/v1"
    assert report["cells_ok"] == 3
    assert report["cells_failed"] == 1
    assert report["failures"][0]["app"] == "B"

    path = tmp_path / "failures.json"
    save_failure_report(outcome, path)
    assert json.loads(path.read_text()) == report


def test_clean_sweep_is_ok():
    run_cell = _run_cell_with_poison(set(), [])
    outcome = resilient_sweep(["A"], configs=(1, 4), run_cell=run_cell)
    assert outcome.ok
    assert outcome.failed_cells() == set()
    assert "partial" not in render_partial_table(outcome)
