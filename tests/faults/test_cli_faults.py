"""CLI tests for fault injection, campaigns, and unified error handling."""

import json

import pytest

from repro.cli import main
from repro.faults import CampaignSpec, FaultEvent, load_campaign, save_campaign


def _tiny_campaign(tmp_path, **spec_kwargs):
    spec = CampaignSpec(
        name="cli-tiny",
        seed=1994,
        faults=(FaultEvent(kind="bank_slow", at_ns=0, target=0, factor=4.0),),
        **spec_kwargs,
    )
    path = tmp_path / "campaign.json"
    save_campaign(spec, path)
    return path


def test_unknown_app_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "NOPE", "8"])
    assert excinfo.value.code == 2
    assert "error: unknown application" in capsys.readouterr().err


def test_malformed_campaign_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(SystemExit) as excinfo:
        main(["inject", "flo52", "4", "--campaign", str(bad)])
    assert excinfo.value.code == 2
    assert "error:" in capsys.readouterr().err


def test_missing_campaign_file_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", str(tmp_path / "nope.json"), "--scale", "0.002"])
    assert excinfo.value.code == 2
    assert "error:" in capsys.readouterr().err


def test_inject_smoke(tmp_path, capsys):
    path = _tiny_campaign(tmp_path)
    main(["inject", "flo52", "4", "--campaign", str(path), "--scale", "0.002"])
    out = capsys.readouterr().out
    assert "under campaign 'cli-tiny'" in out
    assert "faults: 1 injected" in out
    assert "bank_slow" in out
    assert "completion-time breakdown" in out
    assert "faults.injected" in out


def test_campaign_generate_writes_valid_spec(tmp_path, capsys):
    path = tmp_path / "generated.json"
    main(["campaign", str(path), "--generate", "--seed", "7", "--faults", "3"])
    out = capsys.readouterr().out
    assert "wrote campaign" in out
    spec = load_campaign(path)
    assert spec.seed == 7
    assert len(spec.faults) == 3


def test_campaign_run_renders_table(tmp_path, capsys):
    path = _tiny_campaign(tmp_path, apps=("FLO52",), configs=(4,))
    report = tmp_path / "failures.json"
    main(
        [
            "campaign",
            str(path),
            "--scale",
            "0.002",
            "--report",
            str(report),
        ]
    )
    out = capsys.readouterr().out
    assert "campaign 'cli-tiny'" in out
    assert "Sweep results" in out
    data = json.loads(report.read_text())
    assert data["cells_failed"] == 0
    assert data["cells_ok"] == 1


def test_run_accepts_seed(capsys):
    main(["run", "flo52", "4", "--scale", "0.002", "--seed", "7"])
    out = capsys.readouterr().out
    assert "FLO52 on 4 processors" in out
