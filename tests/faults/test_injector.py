"""Tests for fault application: costs emerge through existing mechanisms."""

import pytest

from repro.core import run_application
from repro.faults import CampaignSpec, FaultEvent, FaultInjector, run_with_campaign
from repro.hardware.config import paper_configuration
from repro.hardware.memory import GlobalMemorySystem
from repro.sim import SimulationError, Simulator
from repro.xylem.kernel import XylemKernel
from repro.xylem.params import XylemParams

SCALE = 0.002
SEED = 1994


def _healthy(app="FLO52", n=4):
    from repro.apps import PAPER_APPS

    return run_application(
        PAPER_APPS[app](), n, scale=SCALE, os_params=XylemParams(seed=SEED)
    )


def _degraded(faults, app="FLO52", n=4):
    spec = CampaignSpec(name="t", seed=SEED, faults=tuple(faults))
    return run_with_campaign(spec, app, n, scale=SCALE, seed=SEED)


def test_bank_slow_raises_completion_time():
    healthy = _healthy()
    outcome = _degraded([FaultEvent(kind="bank_slow", at_ns=0, target=0, factor=8.0)])
    assert outcome.ledger.injected == 1
    assert outcome.result.ct_ns > healthy.ct_ns


def test_switch_degrade_raises_completion_time():
    healthy = _healthy()
    outcome = _degraded([FaultEvent(kind="switch_degrade", at_ns=0, extra_cycles=6)])
    assert outcome.result.ct_ns > healthy.ct_ns


def test_transient_fault_reverts():
    outcome = _degraded(
        [FaultEvent(kind="bank_slow", at_ns=0, target=0, factor=8.0, duration_ns=1000)]
    )
    assert outcome.ledger.injected == 1
    assert outcome.ledger.reverted == 1
    machine = outcome.result.machine
    assert not machine.contention.degraded


def test_ce_deconfig_completes_with_redistribution():
    healthy = _healthy()
    outcome = _degraded([FaultEvent(kind="ce_deconfig", at_ns=0, target=1)])
    result = outcome.result
    assert not result.kernel.ce_available(1)
    assert result.kernel.ce_available(0)
    # The loop iterations still all ran -- redistributed over survivors.
    assert result.ct_ns >= healthy.ct_ns
    assert result.runtime.stats.barriers == healthy.runtime.stats.barriers


def test_deconfigure_guard_refuses_to_empty_cluster():
    sim = Simulator()
    kernel = XylemKernel(sim, paper_configuration(8))
    for ce in range(7):
        kernel.deconfigure_ce(ce)
    with pytest.raises(SimulationError, match="no configured CEs"):
        kernel.deconfigure_ce(7)
    assert kernel.available_ces(0) == [7]
    kernel.reconfigure_ce(3)
    assert kernel.ce_available(3)


def test_lock_inflate_raises_system_overhead():
    healthy = _healthy()
    outcome = _degraded([FaultEvent(kind="lock_inflate", at_ns=0, factor=20.0)])
    assert outcome.result.ct_ns > healthy.ct_ns


def _warm_page_app():
    """A workload whose loops revisit the same (warm) pages every step."""
    from repro.apps import AppModel, LoopShape
    from repro.runtime.loops import LoopConstruct

    shape = LoopShape(
        construct=LoopConstruct.SDOALL,
        n_outer=4,
        n_inner=32,
        iter_time_ns=50_000,
        iters_per_page=8,
        fresh_pages_each_step=False,
        label="warm",
    )
    return AppModel(
        name="WARM", n_steps=6, serial_per_step_ns=100_000, loops_per_step=[shape]
    )


def _run_warm(faults=()):
    spec = CampaignSpec(name="storm", seed=SEED, faults=tuple(faults))
    injectors = []

    def hook(sim, machine, kernel, runtime):
        injector = FaultInjector(sim, machine, kernel, runtime, spec)
        injector.arm()
        injectors.append(injector)

    result = run_application(
        _warm_page_app(),
        4,
        scale=1.0,
        os_params=XylemParams(seed=SEED),
        pre_run_hook=hook,
    )
    return result, injectors[0]


def test_pagefault_storm_forces_refaults():
    healthy, _ = _run_warm()
    strike = healthy.ct_ns // 2
    storm, injector = _run_warm(
        [FaultEvent(kind="pagefault_storm", at_ns=strike, fraction=1.0)]
    )
    assert injector.ledger.pages_invalidated > 0
    healthy_faults = healthy.fault_stats.sequential + healthy.fault_stats.concurrent
    storm_faults = storm.fault_stats.sequential + storm.fault_stats.concurrent
    assert storm_faults > healthy_faults


def test_switch_stall_skipped_on_analytic_runs():
    outcome = _degraded(
        [FaultEvent(kind="switch_stall", at_ns=0, target=0, duration_ns=1000)]
    )
    assert outcome.ledger.skipped == 1
    assert outcome.ledger.injected == 0


def test_packet_level_bank_offline_remaps():
    sim = Simulator()
    memory = GlobalMemorySystem(sim, paper_configuration(32))
    memory.set_bank_offline(2, True)
    assert memory.bank_offline(2)
    remapped = memory._effective_module(2)
    assert remapped != 2
    assert not memory.bank_offline(remapped)
    with pytest.raises(ValueError, match="last online"):
        small = GlobalMemorySystem(Simulator(), paper_configuration(1))
        for m in range(small.config.n_memory_modules):
            small.set_bank_offline(m, True)


def test_packet_level_switch_stall_blocks_then_releases():
    sim = Simulator()
    memory = GlobalMemorySystem(sim, paper_configuration(32))
    hop = memory.forward.route(0, 0)[-1]
    memory.forward.stall_port(*hop)

    done = memory.request(ce_id=0, address=0)

    def release(sim):
        yield sim.timeout(100_000)
        memory.forward.release_port(*hop)

    sim.process(release(sim))
    sim.run(until=done)
    assert memory.forward.stalled_packets == 1
    # The stall dominates the round trip: without it the trip is a few
    # microseconds; with the 100 us stall it cannot be faster.
    assert sim.now >= 100_000
