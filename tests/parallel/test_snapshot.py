"""Snapshot fidelity: a detached result must analyse like the live one.

:func:`repro.parallel.snapshot.snapshot_result` replaces the live
simulator objects on a :class:`RunResult` with frozen, picklable views.
Every analysis the tables and the obs layer perform must produce
*identical* output from either form -- that contract is what makes
cached/pooled results interchangeable with serial ones.
"""

from __future__ import annotations

import pickle

import pytest

from repro.apps import PAPER_APPS
from repro.core.breakdown import ct_breakdown, memory_decomposition, user_breakdown
from repro.core.concurrency import parallel_loop_concurrency
from repro.core.contention import contention_overhead
from repro.core.runner import run_application
from repro.obs.exporters import build_run_report
from repro.obs.instrument import collect_run_metrics
from repro.parallel import CellSpec, is_snapshot, run_cell, snapshot_result
from repro.xylem.params import XylemParams

SCALE = 0.002
SEED = 1994


@pytest.fixture(scope="module")
def live():
    """A live 32-processor run (4 clusters: the richest view structure)."""
    return run_application(
        PAPER_APPS["FLO52"](), 32, scale=SCALE, os_params=XylemParams(seed=SEED)
    )


@pytest.fixture(scope="module")
def base():
    """The matching uniprocessor run (contention baseline)."""
    return run_application(
        PAPER_APPS["FLO52"](), 1, scale=SCALE, os_params=XylemParams(seed=SEED)
    )


@pytest.fixture(scope="module")
def snap(live):
    return snapshot_result(live)


def test_is_snapshot(live, snap):
    assert not is_snapshot(live)
    assert is_snapshot(snap)
    assert is_snapshot(live.portable())


def test_scalar_fields_preserved(live, snap):
    assert snap.ct_ns == live.ct_ns
    assert snap.ct_seconds == live.ct_seconds
    assert snap.scale == live.scale
    assert snap.wall_s == live.wall_s
    assert snap.config == live.config
    assert snap.app_name == live.app_name


def test_breakdowns_identical(live, snap):
    for cluster in range(live.config.n_clusters):
        assert ct_breakdown(snap, cluster) == ct_breakdown(live, cluster)
    for task in range(live.config.n_clusters):
        assert (
            user_breakdown(snap, task).as_dict()
            == user_breakdown(live, task).as_dict()
        )
        assert parallel_loop_concurrency(snap, task) == parallel_loop_concurrency(
            live, task
        )


def test_memory_and_contention_identical(live, base, snap):
    assert memory_decomposition(snap) == memory_decomposition(live)
    base_snap = snapshot_result(base)
    assert contention_overhead(snap, base_snap) == contention_overhead(live, base)


def test_collected_metrics_identical(live, snap):
    live_metrics = collect_run_metrics(live).snapshot()
    snap_metrics = collect_run_metrics(snap).snapshot()
    assert snap_metrics == live_metrics


def test_pickle_roundtrip(live, snap):
    blob = pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL)
    revived = pickle.loads(blob)
    assert revived.ct_ns == live.ct_ns
    assert (
        collect_run_metrics(revived).snapshot()
        == collect_run_metrics(live).snapshot()
    )
    for cluster in range(live.config.n_clusters):
        assert ct_breakdown(revived, cluster) == ct_breakdown(live, cluster)


def test_run_report_identical(live, snap):
    assert build_run_report(snap) == build_run_report(live)


def test_run_cell_records_schedule_hash():
    spec = CellSpec(app="FLO52", n_processors=4, scale=SCALE, seed=SEED)
    first = run_cell(spec)
    assert is_snapshot(first)
    assert first.schedule_hash is not None
    second = run_cell(spec)
    assert second.schedule_hash == first.schedule_hash
    assert second.ct_ns == first.ct_ns

    unhashed = run_cell(
        CellSpec(
            app="FLO52",
            n_processors=4,
            scale=SCALE,
            seed=SEED,
            fingerprint_schedule=False,
        )
    )
    assert unhashed.schedule_hash is None
    assert unhashed.ct_ns == first.ct_ns
