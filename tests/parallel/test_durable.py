"""Durable-layer units: backoff, health sensing, ledger accounting.

The process-level recovery paths (kills, hangs, interrupt + resume)
live in ``tests/integration/test_crash_resume.py``; this module pins
the deterministic pieces the coordinator is built from.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs.registry import MetricsRegistry
from repro.parallel import (
    RECOVERY_REPORT_SCHEMA,
    DurablePolicy,
    RecoveryLedger,
    backoff_s,
)
from repro.parallel.durable import stale_workers

# -- deterministic backoff ---------------------------------------------------


def test_backoff_is_deterministic_and_capped():
    waits = [backoff_s(a, base_s=0.25, cap_s=4.0) for a in range(1, 7)]
    assert waits == [0.25, 0.5, 1.0, 2.0, 4.0, 4.0]
    # Same inputs, same waits -- there is deliberately no jitter, so a
    # re-run of a failing campaign reproduces its own timing.
    assert waits == [backoff_s(a, base_s=0.25, cap_s=4.0) for a in range(1, 7)]


def test_backoff_rejects_non_positive_attempts():
    with pytest.raises(ValueError, match="attempt"):
        backoff_s(0, base_s=0.25, cap_s=4.0)


def test_policy_is_frozen():
    policy = DurablePolicy()
    with pytest.raises(dataclasses.FrozenInstanceError):
        policy.cell_deadline_s = 1.0


# -- heartbeat staleness -----------------------------------------------------


def test_stale_workers_flags_only_aged_wellformed_beats(tmp_path):
    now = 1000.0
    (tmp_path / "hb-101").write_text(str(now - 60.0))  # genuinely stale
    (tmp_path / "hb-102").write_text(str(now - 1.0))  # fresh
    (tmp_path / "hb-103").write_text("")  # torn mid-write: alive
    (tmp_path / "hb-104").write_text("not-a-float")  # unparsable: alive
    (tmp_path / "hb-tmp.x").write_text(str(now - 60.0))  # writer temp file
    assert stale_workers(tmp_path, now_s=now, timeout_s=30.0) == [101]


def test_stale_workers_on_missing_dir_is_empty(tmp_path):
    assert stale_workers(tmp_path / "nope", now_s=0.0, timeout_s=1.0) == []


# -- recovery ledger ---------------------------------------------------------


def test_ledger_report_schema_and_overhead_math():
    ledger = RecoveryLedger(
        resumed_cells=2,
        retries=3,
        respawns=1,
        worker_deaths=2,
        deadline_kills=1,
        fault_dwell_s=1.0,
        lost_work_s=2.0,
    )
    report = ledger.report(
        label="t",
        cells_total=10,
        cells_completed=10,
        wall_s=10.0,
        clean_wall_s=4.0,
        injected_dwell_s=1.0,
    )
    assert report["schema"] == RECOVERY_REPORT_SCHEMA
    assert report["cells"] == {
        "total": 10,
        "completed": 10,
        "resumed_from_journal": 2,
    }
    assert report["recovery"]["worker_deaths"] == 2
    wall = report["wall"]
    # Raw overhead: (10 - 4) / 4.  Recovery overhead excludes what the
    # faults themselves cost (1 backoff + 2 destroyed + 1 injected):
    # (10 - 4 - 4) / 4.
    assert wall["overhead_pct"] == pytest.approx(150.0)
    assert wall["recovery_overhead_pct"] == pytest.approx(50.0)
    assert wall["fault_dwell_s"] == pytest.approx(1.0)
    assert wall["lost_work_s"] == pytest.approx(2.0)


def test_ledger_recovery_overhead_clamps_at_zero():
    ledger = RecoveryLedger(fault_dwell_s=1.0, lost_work_s=8.0)
    report = ledger.report(
        label="t", cells_total=1, cells_completed=1, wall_s=6.0, clean_wall_s=4.0
    )
    # Excluded dwell exceeds the raw overhead (the destroyed work
    # overlapped useful work on a shared host): clamp, don't go negative.
    assert report["wall"]["recovery_overhead_pct"] == 0.0


def test_ledger_report_without_clean_wall_has_no_overhead():
    report = RecoveryLedger().report(
        label="t", cells_total=1, cells_completed=1, wall_s=1.0
    )
    assert report["wall"]["clean_wall_s"] is None
    assert report["wall"]["overhead_pct"] is None
    assert report["wall"]["recovery_overhead_pct"] is None


def test_ledger_collect_emits_recovery_metrics():
    ledger = RecoveryLedger(
        resumed_cells=4, retries=2, respawns=1, worker_deaths=1, fault_dwell_s=0.5
    )
    registry = MetricsRegistry()
    ledger.collect(registry)
    assert registry.value("parallel.recovery.resumed_cells") == 4
    assert registry.value("parallel.recovery.retries") == 2
    assert registry.value("parallel.recovery.respawns") == 1
    assert registry.value("parallel.recovery.worker_deaths") == 1
    assert registry.value("parallel.recovery.fault_dwell_s") == pytest.approx(0.5)
