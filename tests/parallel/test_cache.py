"""Cache-key and cache-integrity properties.

The key must be a pure function of the cell's inputs (same inputs ->
same key, any perturbation -> different key), and the on-disk store
must never serve a damaged entry: truncations, bit flips, renamed
files and foreign schemas are all counted as *corrupt* and treated as
misses.  Hypothesis drives the perturbation space; a few deterministic
unit tests pin the corruption modes by name.
"""

from __future__ import annotations

import dataclasses
import pickle
import sys
import types
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import APPS
from repro.faults.experiments import degraded_campaign
from repro.obs.registry import MetricsRegistry
from repro.parallel import CACHE_SCHEMA, CellSpec, ResultCache, cell_key

CODE = "feedface" * 4  # fixed code fingerprint: keys hermetic to the test

specs = st.builds(
    CellSpec,
    app=st.sampled_from(APPS),
    n_processors=st.sampled_from((1, 4, 8, 16, 32)),
    scale=st.floats(1e-4, 1.0, allow_nan=False, allow_infinity=False),
    seed=st.integers(0, 2**32 - 1),
    statfx_interval_ns=st.integers(1_000, 1_000_000),
    max_events=st.none() | st.integers(1, 10**9),
    max_sim_time=st.none() | st.integers(1, 10**12),
    fingerprint_schedule=st.booleans(),
)


# -- key properties ----------------------------------------------------------


@given(spec=specs)
def test_key_is_deterministic(spec):
    key = cell_key(spec, code=CODE)
    assert key == cell_key(spec, code=CODE)
    assert len(key) == 32 and int(key, 16) >= 0


@given(spec_a=specs, spec_b=specs)
def test_distinct_specs_distinct_keys(spec_a, spec_b):
    if spec_a == spec_b:
        assert cell_key(spec_a, code=CODE) == cell_key(spec_b, code=CODE)
    else:
        assert cell_key(spec_a, code=CODE) != cell_key(spec_b, code=CODE)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda s: dataclasses.replace(s, app="OCEAN" if s.app != "OCEAN" else "ADM"),
        lambda s: dataclasses.replace(s, n_processors=s.n_processors * 2),
        lambda s: dataclasses.replace(s, scale=s.scale * (1 + 2**-40)),
        lambda s: dataclasses.replace(s, seed=s.seed + 1),
        lambda s: dataclasses.replace(s, statfx_interval_ns=s.statfx_interval_ns + 1),
        lambda s: dataclasses.replace(s, max_events=(s.max_events or 0) + 1),
        lambda s: dataclasses.replace(s, max_sim_time=(s.max_sim_time or 0) + 1),
        lambda s: dataclasses.replace(
            s, fingerprint_schedule=not s.fingerprint_schedule
        ),
        lambda s: dataclasses.replace(s, campaign=degraded_campaign()),
    ],
    ids=[
        "app",
        "n_processors",
        "scale-ulp",
        "seed",
        "statfx_interval",
        "max_events",
        "max_sim_time",
        "fingerprint_schedule",
        "campaign",
    ],
)
@given(spec=specs)
def test_any_field_perturbation_changes_key(spec, mutate):
    assert cell_key(mutate(spec), code=CODE) != cell_key(spec, code=CODE)


@given(spec=specs)
def test_code_version_changes_key(spec):
    assert cell_key(spec, code="a" * 32) != cell_key(spec, code="b" * 32)


def test_campaign_fields_reach_key():
    spec = CellSpec(app="FLO52", n_processors=8, campaign=degraded_campaign(seed=1))
    other = dataclasses.replace(spec, campaign=degraded_campaign(seed=2))
    assert cell_key(spec, code=CODE) != cell_key(other, code=CODE)


# -- store integrity ---------------------------------------------------------

PAYLOAD = {"rows": [1, 2, 3], "label": "stand-in result"}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _store(cache):
    key = cell_key(CellSpec(app="FLO52", n_processors=4), code=CODE)
    cache.put(key, PAYLOAD)
    return key, cache.path_for(key)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_truncated_entry_is_a_miss(tmp_path_factory, data):
    cache = ResultCache(tmp_path_factory.mktemp("trunc"))
    key, path = _store(cache)
    size = path.stat().st_size
    cut = data.draw(st.integers(0, size - 1))
    path.write_bytes(path.read_bytes()[:cut])
    assert cache.get(key) is None
    assert cache.corrupt >= 1


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_bitflipped_entry_never_serves_wrong_data(tmp_path_factory, data):
    cache = ResultCache(tmp_path_factory.mktemp("flip"))
    key, path = _store(cache)
    raw = bytearray(path.read_bytes())
    offset = data.draw(st.integers(0, len(raw) - 1))
    bit = data.draw(st.integers(0, 7))
    raw[offset] ^= 1 << bit
    path.write_bytes(bytes(raw))
    got = cache.get(key)
    # The flip may happen to leave the envelope decodable to the same
    # value; what must never happen is serving something *different*.
    assert got is None or got == PAYLOAD


def test_roundtrip_and_counters(cache):
    key, _ = _store(cache)
    assert cache.get(key) == PAYLOAD
    assert cache.get("0" * 32) is None
    assert (cache.hits, cache.misses, cache.puts, cache.corrupt) == (1, 1, 1, 0)

    registry = MetricsRegistry()
    cache.collect(registry)
    assert registry.value("cache.hits") == 1
    assert registry.value("cache.misses") == 1
    assert registry.value("cache.puts") == 1
    assert registry.value("cache.corrupt") == 0


def test_garbage_file_is_corrupt(cache):
    key, path = _store(cache)
    path.write_bytes(b"not a pickle at all")
    assert cache.get(key) is None
    assert cache.corrupt == 1


def test_entry_under_wrong_key_is_corrupt(cache):
    key, path = _store(cache)
    other = "f" * 32
    target = cache.path_for(other)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(path.read_bytes())
    assert cache.get(other) is None
    assert cache.corrupt == 1


def test_foreign_schema_is_corrupt(cache):
    key, path = _store(cache)
    envelope = pickle.loads(path.read_bytes())
    envelope["schema"] = "someone-else/v9"
    path.write_bytes(pickle.dumps(envelope))
    assert cache.get(key) is None
    assert cache.corrupt == 1


def test_payload_digest_is_checked(cache):
    key, path = _store(cache)
    envelope = pickle.loads(path.read_bytes())
    envelope["payload"] = pickle.dumps({"rows": [9]})  # digest left stale
    path.write_bytes(pickle.dumps(envelope))
    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert CACHE_SCHEMA.startswith("cedar-repro/")


def test_overwrite_is_atomic_and_idempotent(cache):
    key, path = _store(cache)
    cache.put(key, PAYLOAD)
    assert cache.get(key) == PAYLOAD
    assert not list(path.parent.glob("*.tmp.*"))


# -- degrade-to-miss on write failure ----------------------------------------


def _breaking_replace(monkeypatch):
    """Make every cache write fail at the atomic-replace step."""
    from repro.parallel import cache as cache_mod

    def boom(src, dst):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(cache_mod.os, "replace", boom)


def test_write_failure_degrades_to_miss_with_one_warning(cache, monkeypatch):
    _breaking_replace(monkeypatch)
    key = cell_key(CellSpec(app="FLO52", n_processors=4), code=CODE)
    with pytest.warns(RuntimeWarning, match="continuing without"):
        assert cache.put(key, PAYLOAD) is None
    assert cache.write_errors == 1
    assert cache.get(key) is None  # nothing was stored
    # The second failure is counted but not re-warned.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert cache.put(key, PAYLOAD) is None
    assert not any(
        "continuing without" in str(w.message) for w in caught
    )
    assert cache.write_errors == 2
    assert not cache.disabled


def test_cache_disables_after_consecutive_write_failures(cache, monkeypatch):
    _breaking_replace(monkeypatch)
    key = cell_key(CellSpec(app="FLO52", n_processors=4), code=CODE)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for _ in range(ResultCache.MAX_WRITE_ERRORS):
            assert cache.put(key, PAYLOAD) is None
    assert cache.disabled
    assert any("disabled" in str(w.message) for w in caught)
    # Disabled: further puts are silent no-ops, not new errors.
    assert cache.put(key, PAYLOAD) is None
    assert cache.write_errors == ResultCache.MAX_WRITE_ERRORS

    registry = MetricsRegistry()
    cache.collect(registry)
    assert registry.value("cache.write_errors") == ResultCache.MAX_WRITE_ERRORS
    assert registry.value("cache.disabled") == 1


def test_successful_write_resets_the_consecutive_counter(cache, monkeypatch):
    from repro.parallel import cache as cache_mod

    key = cell_key(CellSpec(app="FLO52", n_processors=4), code=CODE)
    real_replace = cache_mod.os.replace
    for _ in range(ResultCache.MAX_WRITE_ERRORS - 1):
        _breaking_replace(monkeypatch)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            cache.put(key, PAYLOAD)
        monkeypatch.setattr(cache_mod.os, "replace", real_replace)
        assert cache.put(key, PAYLOAD) is not None  # success resets
    assert not cache.disabled
    assert cache.write_errors == ResultCache.MAX_WRITE_ERRORS - 1


# -- quarantine of corrupt entries -------------------------------------------


def test_corrupt_entry_is_quarantined_not_reread(cache):
    key, path = _store(cache)
    path.write_bytes(b"damaged beyond recognition")
    assert cache.get(key) is None
    assert cache.quarantined == 1
    assert not path.exists()  # moved aside, never re-read
    quarantine = cache.directory / "quarantine"
    assert quarantine.is_dir() and any(quarantine.iterdir())
    # The next get is a plain miss: no double-count.
    assert cache.get(key) is None
    assert cache.quarantined == 1

    registry = MetricsRegistry()
    cache.collect(registry)
    assert registry.value("cache.quarantined") == 1


def test_code_fingerprint_covers_interpreter_version(monkeypatch):
    """A Python minor-version bump must invalidate every cached cell."""
    from repro.parallel import cache as cache_mod

    monkeypatch.setattr(cache_mod, "_code_fingerprint", None)
    current = cache_mod.code_fingerprint()
    assert current == cache_mod.code_fingerprint()  # memoized, stable

    fake = types.SimpleNamespace(major=sys.version_info.major, minor=99)
    monkeypatch.setattr(cache_mod.sys, "version_info", fake)
    monkeypatch.setattr(cache_mod, "_code_fingerprint", None)
    assert cache_mod.code_fingerprint() != current
