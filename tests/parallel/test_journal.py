"""Write-ahead journal invariants: torn tails, provenance, resume state.

The journal is the campaign's crash-safety contract: every record lands
with one atomic append, a crash can tear at most the final line, and a
resume must reconstruct exactly the set of completed cells -- or refuse
outright when the code fingerprint no longer matches.
"""

from __future__ import annotations

import json
import types

import pytest

from repro.parallel import (
    JOURNAL_SCHEMA,
    CampaignJournal,
    CellSpec,
    JournalError,
    JournalMismatchError,
    load_journal,
)
from repro.parallel.journal import spec_from_dict, spec_to_dict


def _specs():
    return [
        CellSpec(app="FLO52", n_processors=1),
        CellSpec(app="FLO52", n_processors=4),
        CellSpec(app="OCEAN", n_processors=4),
    ]


def _result(ct_ns=123_456, schedule_hash="abc123"):
    """A picklable stand-in for RunResult (record_done only reads these)."""
    return types.SimpleNamespace(ct_ns=ct_ns, schedule_hash=schedule_hash)


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "campaign.journal"


def test_roundtrip(journal_path):
    specs = _specs()
    with CampaignJournal.create(
        journal_path,
        specs,
        seed=7,
        label="roundtrip",
        cache_dir=journal_path.parent / "cache",
        sweep={"apps": ["FLO52", "OCEAN"], "configs": [1, 4]},
    ) as journal:
        journal.record_dispatch(specs[0], attempt=1)
        journal.record_done(specs[0], _result())

    state = load_journal(journal_path)
    assert state.header["schema"] == JOURNAL_SCHEMA
    assert state.header["seed"] == 7
    assert state.label == "roundtrip"
    assert state.cache_dir == journal_path.parent / "cache"
    assert state.header["sweep"]["configs"] == [1, 4]
    assert [s.key() for s in state.specs] == [s.key() for s in specs]
    assert set(state.done) == {specs[0].key()}
    assert [s.key() for s in state.incomplete()] == [
        specs[1].key(),
        specs[2].key(),
    ]
    assert not state.checkpointed


def test_checkpoint_marks_resumable(journal_path):
    with CampaignJournal.create(journal_path, _specs()) as journal:
        journal.record_checkpoint("SIGINT")
    assert load_journal(journal_path).checkpointed


def test_failed_then_done_supersedes(journal_path):
    from repro.core.resilience import CellFailure

    specs = _specs()
    with CampaignJournal.create(journal_path, specs) as journal:
        journal.record_failed(
            specs[1],
            CellFailure(
                app=specs[1].app,
                n_processors=specs[1].n_processors,
                attempts=4,
                error_type="WorkerDied",
                message="killed",
            ),
        )
        journal.record_done(specs[1], _result())
    state = load_journal(journal_path)
    assert specs[1].key() in state.done
    assert specs[1].key() not in state.failed


def test_torn_final_line_is_tolerated(journal_path):
    specs = _specs()
    with CampaignJournal.create(journal_path, specs) as journal:
        journal.record_done(specs[0], _result())
    with open(journal_path, "a", encoding="utf-8") as fh:
        fh.write('{"ev": "done", "key": "tor')  # crash mid-append
    state = load_journal(journal_path)
    assert set(state.done) == {specs[0].key()}


def test_earlier_corruption_raises(journal_path):
    with CampaignJournal.create(journal_path, _specs()):
        pass
    lines = journal_path.read_text().splitlines()
    lines[1] = lines[1][: len(lines[1]) // 2]  # tear a NON-final line
    journal_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="line 2"):
        load_journal(journal_path)


def test_empty_and_foreign_files_are_refused(tmp_path):
    empty = tmp_path / "empty.journal"
    empty.write_text("")
    with pytest.raises(JournalError, match="empty"):
        load_journal(empty)
    foreign = tmp_path / "foreign.journal"
    foreign.write_text(json.dumps({"schema": "someone-else/v9"}) + "\n")
    with pytest.raises(JournalError, match="not a journal"):
        load_journal(foreign)
    with pytest.raises(JournalError, match="cannot read"):
        load_journal(tmp_path / "missing.journal")


def test_fingerprint_mismatch_is_refused(journal_path, monkeypatch):
    with CampaignJournal.create(journal_path, _specs()):
        pass
    state = load_journal(journal_path)
    state.check_fingerprint()  # same code: fine

    from repro.parallel import cache as cache_mod

    monkeypatch.setattr(cache_mod, "_code_fingerprint", "0" * 32)
    with pytest.raises(JournalMismatchError, match="must not be mixed"):
        load_journal(journal_path).check_fingerprint()


def test_create_refuses_overwrite_and_append_requires_existing(journal_path):
    with CampaignJournal.create(journal_path, _specs()):
        pass
    with pytest.raises(JournalError, match="already exists"):
        CampaignJournal.create(journal_path, _specs())
    with pytest.raises(JournalError, match="does not exist"):
        CampaignJournal.append_to(journal_path.with_name("nope.journal"))


def test_closed_journal_refuses_appends(journal_path):
    journal = CampaignJournal.create(journal_path, _specs())
    journal.close()
    journal.close()  # idempotent
    with pytest.raises(JournalError, match="closed"):
        journal.append({"ev": "late"})


def test_spec_dict_roundtrip_preserves_key():
    spec = CellSpec(
        app="OCEAN", n_processors=8, scale=0.01, seed=42, max_events=1000
    )
    clone = spec_from_dict(spec_to_dict(spec))
    assert clone == spec
    assert clone.key() == spec.key()
