"""Resilience under parallelism: one wedged cell, not a wedged sweep.

A cell that trips the runaway watchdog inside a pool worker must fail
*its own* future -- the exception type (whose constructor doesn't
round-trip through pickle) is carried as a structured payload, the
other cells complete and get cached, and the partial-table / failure-
report machinery works on the outcome exactly as it does serially.
"""

from __future__ import annotations

import pytest

from repro.core.resilience import failure_report, render_partial_table
from repro.obs.registry import MetricsRegistry
from repro.parallel import CellSpec, parallel_sweep, run_cell

SCALE = 0.002
SEED = 1994


@pytest.fixture(scope="module")
def cts():
    """Healthy completion times for FLO52 at P=1 and P=4."""
    return {
        p: run_cell(CellSpec(app="FLO52", n_processors=p, scale=SCALE, seed=SEED)).ct_ns
        for p in (1, 4)
    }


@pytest.fixture(scope="module")
def threshold(cts):
    """A watchdog limit only the (slower) uniprocessor run exceeds."""
    assert cts[1] > cts[4], "P=1 should be the slow cell"
    return (cts[1] + cts[4]) // 2


def test_wedged_cell_fails_alone_through_the_pool(cts, threshold, tmp_path):
    metrics = MetricsRegistry()
    outcome = parallel_sweep(
        ["FLO52"],
        configs=(1, 4),
        scale=SCALE,
        seed=SEED,
        jobs=2,
        cache_dir=tmp_path / "cache",
        metrics=metrics,
        max_sim_time=threshold,
    )

    # Exactly the P=1 cell trips RunawaySimulation; P=4 completes.
    assert not outcome.ok
    assert outcome.failed_cells() == {("FLO52", 1)}
    [failure] = outcome.failures
    assert failure.error_type == "RunawaySimulation"
    assert failure.attempts == 2
    assert "max_sim_time" in failure.message
    survivor = outcome.results["FLO52"][4]
    assert survivor.ct_ns == cts[4]
    assert metrics.value("parallel.cells.failed") == 1
    assert metrics.value("parallel.cells.completed") == 1
    assert metrics.value("parallel.retries") == 1

    # The partial table and the failure report still render.
    table = render_partial_table(outcome)
    assert "FAILED(RunawaySimulation)" in table
    assert "partial: 1 cell(s) failed" in table
    report = failure_report(outcome)
    assert report["cells_ok"] == 1
    assert report["cells_failed"] == 1
    assert report["failures"][0]["error_type"] == "RunawaySimulation"

    # Warm rerun: the survivor is served from cache; the wedged cell is
    # re-attempted (failures are never cached) and fails again.
    warm_metrics = MetricsRegistry()
    warm = parallel_sweep(
        ["FLO52"],
        configs=(1, 4),
        scale=SCALE,
        seed=SEED,
        jobs=2,
        cache_dir=tmp_path / "cache",
        metrics=warm_metrics,
        max_sim_time=threshold,
    )
    assert warm.failed_cells() == {("FLO52", 1)}
    assert warm_metrics.value("cache.hits") == 1
    assert warm.results["FLO52"][4].ct_ns == cts[4]


def test_watchdog_exception_is_deterministic(threshold):
    spec = CellSpec(
        app="FLO52", n_processors=1, scale=SCALE, seed=SEED, max_sim_time=threshold
    )
    from repro.sim.errors import RunawaySimulation

    with pytest.raises(RunawaySimulation):
        run_cell(spec)
