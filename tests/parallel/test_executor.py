"""Executor semantics: pool == serial, warm cache == simulation.

The load-bearing guarantees: a ``jobs>1`` sweep is indistinguishable
from the serial one (same tables, same schedule hashes), a warm cache
serves every cell without simulating, metrics report what happened,
and bad inputs fail loudly.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import table1
from repro.core.resilience import resilient_sweep
from repro.obs.registry import MetricsRegistry
from repro.parallel import CellSpec, ResultCache, execute_cells, parallel_sweep

SCALE = 0.002
SEED = 1994
CONFIGS = (1, 4)


@pytest.fixture(scope="module")
def serial_outcome():
    return parallel_sweep(["FLO52"], configs=CONFIGS, scale=SCALE, seed=SEED, jobs=1)


def test_pool_matches_serial(serial_outcome, tmp_path):
    metrics = MetricsRegistry()
    pooled = parallel_sweep(
        ["FLO52"],
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=2,
        cache_dir=tmp_path / "cache",
        metrics=metrics,
    )
    assert pooled.ok and serial_outcome.ok
    for n_proc in CONFIGS:
        a = serial_outcome.results["FLO52"][n_proc]
        b = pooled.results["FLO52"][n_proc]
        assert b.ct_ns == a.ct_ns
        assert b.schedule_hash == a.schedule_hash
    assert table1(pooled.results)[1] == table1(serial_outcome.results)[1]

    # Cold pass: every cell missed the cache, was simulated, was stored.
    assert metrics.value("parallel.jobs") == 2
    assert metrics.value("parallel.cells.total") == len(CONFIGS)
    assert metrics.value("parallel.cells.completed") == len(CONFIGS)
    assert metrics.value("parallel.cells.failed") == 0
    assert metrics.value("cache.misses") == len(CONFIGS)
    assert metrics.value("cache.puts") == len(CONFIGS)
    assert metrics.value("parallel.wall_s") > 0
    assert 0 < metrics.value("parallel.pool.utilization") <= 1

    # Warm pass: every cell served from cache, nothing simulated.
    warm_metrics = MetricsRegistry()
    warm = parallel_sweep(
        ["FLO52"],
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=2,
        cache_dir=tmp_path / "cache",
        metrics=warm_metrics,
    )
    assert warm.ok
    assert warm_metrics.value("cache.hits") == len(CONFIGS)
    assert warm_metrics.value("cache.puts") == 0
    assert table1(warm.results)[1] == table1(serial_outcome.results)[1]
    for n_proc in CONFIGS:
        assert (
            warm.results["FLO52"][n_proc].schedule_hash
            == serial_outcome.results["FLO52"][n_proc].schedule_hash
        )


def test_resilient_sweep_delegates_to_parallel(serial_outcome, tmp_path):
    outcome = resilient_sweep(
        ["FLO52"],
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=2,
        cache_dir=tmp_path / "cache",
    )
    assert outcome.ok
    assert table1(outcome.results)[1] == table1(serial_outcome.results)[1]


def test_failures_reported_in_input_order(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    bad = CellSpec(app="NOPE", n_processors=4, scale=SCALE, seed=SEED)
    good = CellSpec(app="FLO52", n_processors=1, scale=SCALE, seed=SEED)
    worse = CellSpec(app="ALSO_NOPE", n_processors=8, scale=SCALE, seed=SEED)
    results, failures = execute_cells(
        [bad, good, worse], jobs=2, cache=cache, retries=1
    )
    assert good in results and bad not in results
    assert [(f.app, f.n_processors) for f in failures] == [("NOPE", 4), ("ALSO_NOPE", 8)]
    for failure in failures:
        assert failure.error_type == "ValueError"
        assert failure.attempts == 2  # 1 + retries, same as the serial path
        assert "unknown application" in failure.message
    # The good cell was cached despite its neighbours failing.
    assert cache.get(good.key()) is not None
    assert cache.get(bad.key()) is None


def test_validation_errors():
    with pytest.raises(ValueError, match="jobs"):
        execute_cells([], jobs=0)
    with pytest.raises(ValueError, match="retries"):
        execute_cells([], retries=-1)
    with pytest.raises(ValueError, match="serial-only"):
        resilient_sweep(["FLO52"], jobs=2, run_cell=lambda a, p: None)
    with pytest.raises(ValueError, match="unsupported sweep options"):
        resilient_sweep(["FLO52"], jobs=2, os_params=object())


def test_empty_specs():
    results, failures = execute_cells([], jobs=1)
    assert results == {} and failures == []


def test_telemetry_observes_without_perturbing(serial_outcome, tmp_path):
    """A telemetered pooled sweep returns byte-identical results while
    the telemetry object ends up with the spans, the log, the report
    and the merged campaign metrics."""
    from repro.obs.campaign import CAMPAIGN_LOG_SCHEMA, CampaignTelemetry
    from repro.obs.campaign import load_campaign_log

    log = tmp_path / "campaign.jsonl"
    telemetry = CampaignTelemetry(log_path=log, progress=False, label="t")
    pooled = parallel_sweep(
        ["FLO52"],
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=2,
        cache_dir=tmp_path / "cache",
        telemetry=telemetry,
    )
    assert pooled.ok
    assert table1(pooled.results)[1] == table1(serial_outcome.results)[1]
    for n_proc in CONFIGS:
        assert (
            pooled.results["FLO52"][n_proc].schedule_hash
            == serial_outcome.results["FLO52"][n_proc].schedule_hash
        )

    # Spans: one successful worker-side attempt per cell.
    assert len(telemetry.spans) == len(CONFIGS)
    assert all(s.ok and not s.cache_hit for s in telemetry.spans)
    assert {s.n_processors for s in telemetry.spans} == set(CONFIGS)
    assert all(s.schedule_hash for s in telemetry.spans)
    assert all(s.run_wall_s > 0 for s in telemetry.spans)
    assert all(s.metrics is not None for s in telemetry.spans)

    # The default registry carries executor + cache + campaign metrics.
    reg = telemetry.registry
    assert reg.value("parallel.cells.total") == len(CONFIGS)
    assert reg.value("cache.puts") == len(CONFIGS)
    assert reg.value("campaign.cells.completed") == len(CONFIGS)
    assert reg.value("campaign.run.ct_ns") > 0  # merged worker snapshot

    # The log round-trips and the report sees the whole campaign.
    header, events = load_campaign_log(log)
    assert header["schema"] == CAMPAIGN_LOG_SCHEMA
    assert header["jobs"] == 2
    report = telemetry.report()
    assert report["cells"]["completed"] == len(CONFIGS)
    assert report["cells"]["simulated"] == len(CONFIGS)
    assert report["latency_s"]["p95"] > 0
    assert report["throughput"]["sustained_cells_per_s"] > 0

    # Warm rerun: telemetry sees pure cache hits, results unchanged.
    warm_telemetry = CampaignTelemetry(progress=False)
    warm = parallel_sweep(
        ["FLO52"],
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=2,
        cache_dir=tmp_path / "cache",
        telemetry=warm_telemetry,
    )
    assert warm.ok
    assert table1(warm.results)[1] == table1(serial_outcome.results)[1]
    warm_report = warm_telemetry.report()
    assert warm_report["cache"]["hits"] == len(CONFIGS)
    assert warm_report["cells"]["simulated"] == 0
    assert warm_telemetry.registry.value("campaign.cells.cache_hits") == len(
        CONFIGS
    )
