"""End-to-end integration tests across all subsystems.

Each test runs a real (small) application through the complete stack --
simulator, machine, Xylem, runtime, monitors -- and cross-checks
quantities measured by *different* subsystems against each other.
"""

import pytest

from repro.apps import flo52, synthetic_app
from repro.core import (
    ct_breakdown,
    extract_intervals,
    run_application,
    user_breakdown,
)
from repro.core.trace_analysis import IntervalKind
from repro.hpm.events import EventType
from repro.runtime import LoopConstruct
from repro.xylem.categories import OsActivity, TimeCategory


@pytest.fixture(scope="module")
def flo52_run():
    return run_application(flo52(), 32, scale=0.01)


def test_run_produces_complete_result(flo52_run):
    result = flo52_run
    assert result.ct_ns > 0
    assert result.events
    assert result.app_name == "FLO52"
    assert result.n_processors == 32
    assert result.extrapolation == 100.0  # 1 of 100 steps simulated


def test_events_are_time_ordered_and_quantised(flo52_run):
    previous = 0
    for event in flo52_run.events:
        assert event.timestamp_ns % 50 == 0
        assert event.timestamp_ns >= previous
        previous = event.timestamp_ns


def test_program_markers_bracket_all_runtime_events(flo52_run):
    events = flo52_run.events
    start = next(e for e in events if e.event_type == EventType.PROGRAM_START)
    end = next(e for e in events if e.event_type == EventType.PROGRAM_END)
    for event in events:
        if event.event_type in (EventType.ITER_START, EventType.BARRIER_ENTER):
            assert start.timestamp_ns <= event.timestamp_ns <= end.timestamp_ns


def test_every_loop_post_has_matching_barrier(flo52_run):
    posts = [e for e in flo52_run.events if e.event_type == EventType.LOOP_POST]
    barriers = [
        e for e in flo52_run.events if e.event_type == EventType.BARRIER_EXIT
    ]
    assert len(posts) == len(barriers) > 0


def test_helper_joins_match_detaches(flo52_run):
    joins = [e for e in flo52_run.events if e.event_type == EventType.HELPER_JOIN]
    detaches = [e for e in flo52_run.events if e.event_type == EventType.LOOP_DETACH]
    assert len(joins) == len(detaches)
    # 3 helpers x number of spread loops.
    posts = [e for e in flo52_run.events if e.event_type == EventType.LOOP_POST]
    assert len(joins) == 3 * len(posts)


def test_intervals_reconstruct_cleanly(flo52_run):
    intervals = extract_intervals(flo52_run.events, end_ns=flo52_run.ct_ns)
    assert intervals
    for interval in intervals:
        assert 0 <= interval.start_ns <= interval.end_ns <= flo52_run.ct_ns


def test_statfx_and_board_agree(flo52_run):
    """The sampled concurrency converges to the exact board average."""
    sampled = flo52_run.statfx.total_concurrency()
    exact = flo52_run.board.mean_concurrency()
    assert sampled == pytest.approx(exact, rel=0.1)


def test_accounting_matches_vm_statistics(flo52_run):
    """Fault counts seen by the VM match the accounting charges."""
    stats = flo52_run.fault_stats
    accounting = flo52_run.accounting
    seq_ns = accounting.activity_total_ns(OsActivity.PGFLT_SEQUENTIAL)
    params = flo52_run.kernel.params
    assert seq_ns == stats.sequential * params.pgflt_sequential_cost_ns
    assert stats.sequential + stats.concurrent == flo52_run.kernel.vm.resident_pages


def test_breakdowns_are_mutually_consistent(flo52_run):
    """User time from Q >= useful+overhead time from the traces."""
    q = ct_breakdown(flo52_run, 0)
    b = user_breakdown(flo52_run, 0)
    assert b.useful_ns + b.overhead_ns <= q[TimeCategory.USER] * 1.05


def test_load_tracker_drained_after_run(flo52_run):
    assert flo52_run.machine.load.active == 0


def test_cluster_only_app_runs_on_one_cluster():
    app = synthetic_app(
        construct=LoopConstruct.CLUSTER_ONLY,
        n_steps=2,
        loops_per_step=2,
        n_outer=1,
        n_inner=24,
        iter_time_ns=500_000,
    )
    result = run_application(app, 32, scale=1.0)
    intervals = extract_intervals(result.events, result.ct_ns)
    iter_ces = {
        iv.processor_id for iv in intervals if iv.kind is IntervalKind.ITERATION
    }
    assert iter_ces and all(ce < 8 for ce in iter_ces)


def test_deterministic_reruns():
    """Same app, same config, same seed: identical completion time."""
    app = synthetic_app(n_steps=1, loops_per_step=2, n_outer=4, n_inner=8)
    a = run_application(app, 16, scale=1.0)
    b = run_application(app, 16, scale=1.0)
    assert a.ct_ns == b.ct_ns
    assert len(a.events) == len(b.events)


def test_scale_extrapolation_roughly_linear():
    """Doubling the simulated steps doubles simulated CT (~)."""
    app = synthetic_app(n_steps=4, loops_per_step=2, n_outer=4, n_inner=16)
    half = run_application(app, 8, scale=0.5)
    full = run_application(app, 8, scale=1.0)
    assert full.ct_ns == pytest.approx(2 * half.ct_ns, rel=0.1)
    # Extrapolated CTs agree.
    assert half.ct_seconds == pytest.approx(full.ct_seconds, rel=0.1)
