"""Robustness tests: results are stable across seeds and scales."""

import pytest

from repro.apps import flo52
from repro.core import run_application
from repro.xylem import XylemParams


def test_results_stable_across_os_seeds():
    """Daemon jitter seeds shift completion time only marginally."""
    cts = []
    for seed in (1, 1994, 42):
        result = run_application(
            flo52(), 32, scale=0.01, os_params=XylemParams(seed=seed)
        )
        cts.append(result.ct_seconds)
    assert max(cts) < min(cts) * 1.1, cts


def test_results_stable_across_scales():
    """Extrapolated CT agrees between workload scales within ~15%."""
    a = run_application(flo52(), 32, scale=0.01).ct_seconds
    b = run_application(flo52(), 32, scale=0.03).ct_seconds
    assert a == pytest.approx(b, rel=0.15)


def test_no_jitter_is_fully_deterministic():
    params = XylemParams(interval_jitter=0.0)
    a = run_application(flo52(), 32, scale=0.01, os_params=params)
    b = run_application(flo52(), 32, scale=0.01, os_params=params)
    assert a.ct_ns == b.ct_ns
