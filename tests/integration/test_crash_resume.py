"""End-to-end crash recovery: kills, interrupts, resume byte-identity.

These tests execute real worker processes and real signals -- the
durable layer's whole value is that recovery happens at the process
level, so mocks would prove nothing.  Scales are tiny (the simulation
model is deterministic at any scale) to keep each scenario in CI-sized
wall time; the full harness lives in ``scripts/chaos_sweep.py``.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.core.experiments import table1, table3, table4
from repro.faults.host import HostChaosPlan, HostFault
from repro.parallel import (
    CampaignInterrupted,
    DurablePolicy,
    JournalMismatchError,
    durable_sweep,
    load_journal,
    parallel_sweep,
    resume_sweep,
)

APPS = ["FLO52", "OCEAN"]
CONFIGS = [1, 4]
SCALE = 0.002
SEED = 1994

FAST = DurablePolicy(
    backoff_base_s=0.05, backoff_cap_s=0.2, poll_interval_s=0.02
)


def _tables(results) -> str:
    return "\n".join(table(results)[1] for table in (table1, table3, table4))


@pytest.fixture(scope="module")
def reference_tables():
    outcome = parallel_sweep(APPS, configs=CONFIGS, scale=SCALE, seed=SEED, jobs=1)
    return _tables(outcome.results)


def test_worker_kill_is_retried_to_byte_identical_tables(
    tmp_path, reference_tables
):
    plan = HostChaosPlan(
        name="kill-one",
        seed=SEED,
        faults=(
            HostFault(
                kind="worker_kill", app="FLO52", n_processors=1, delay_s=0.02
            ),
        ),
    )
    outcome = durable_sweep(
        APPS,
        tmp_path / "kill.journal",
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=2,
        policy=FAST,
        chaos=plan,
        handle_signals=False,
    )
    assert outcome.ok
    recovery = outcome.recovery["recovery"]
    assert recovery["worker_deaths"] >= 1
    assert recovery["respawns"] >= 1
    assert recovery["retries"] >= 1
    assert _tables(outcome.results) == reference_tables


def test_hung_cell_is_rescued_by_speculation(tmp_path, reference_tables):
    # No deadline and a tiny straggler floor: the ONLY way this campaign
    # can complete is a speculative duplicate winning first-result-wins
    # against the hung original.
    plan = HostChaosPlan(
        name="hang-one",
        seed=SEED,
        faults=(
            HostFault(kind="worker_hang", app="OCEAN", n_processors=4),
        ),
    )
    policy = DurablePolicy(
        backoff_base_s=0.05,
        backoff_cap_s=0.2,
        poll_interval_s=0.02,
        straggler_min_samples=1,
        straggler_floor_s=0.1,
        straggler_factor=3.0,
    )
    outcome = durable_sweep(
        APPS,
        tmp_path / "hang.journal",
        configs=CONFIGS,
        scale=SCALE,
        seed=SEED,
        jobs=2,
        policy=policy,
        chaos=plan,
        handle_signals=False,
    )
    assert outcome.ok
    recovery = outcome.recovery["recovery"]
    assert recovery["stragglers"] >= 1
    assert recovery["speculative_wins"] >= 1
    assert _tables(outcome.results) == reference_tables


def test_sigint_checkpoints_then_resume_is_byte_identical(
    tmp_path, reference_tables
):
    journal = tmp_path / "interrupted.journal"
    # Fire a real SIGINT at the coordinator mid-campaign (OCEAN P=1 is
    # the long pole, so 0.2s lands well inside the sweep).
    timer = threading.Timer(0.2, os.kill, args=(os.getpid(), signal.SIGINT))
    timer.daemon = True
    timer.start()
    try:
        with pytest.raises(CampaignInterrupted, match="cedar-repro resume"):
            durable_sweep(
                APPS,
                journal,
                configs=CONFIGS,
                scale=SCALE,
                seed=SEED,
                jobs=2,
                policy=FAST,
            )
    finally:
        timer.cancel()

    state = load_journal(journal)
    assert state.checkpointed
    assert len(state.done) < len(state.specs)

    outcome = resume_sweep(journal, jobs=2, policy=FAST, handle_signals=False)
    assert outcome.ok
    cells = outcome.recovery["cells"]
    assert cells["completed"] == len(APPS) * len(CONFIGS)
    assert cells["resumed_from_journal"] == len(state.done)
    assert _tables(outcome.results) == reference_tables


def test_resume_refuses_foreign_fingerprint(tmp_path, monkeypatch, capsys):
    journal = tmp_path / "foreign.journal"
    durable_sweep(
        ["FLO52"],
        journal,
        configs=[1],
        scale=SCALE,
        seed=SEED,
        jobs=1,
        policy=FAST,
        handle_signals=False,
    )

    from repro.parallel import cache as cache_mod

    monkeypatch.setattr(cache_mod, "_code_fingerprint", "0" * 32)
    with pytest.raises(JournalMismatchError):
        resume_sweep(journal, jobs=1, handle_signals=False)

    # Same refusal through the CLI: a usage-style error, exit code 2.
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["resume", str(journal)])
    assert excinfo.value.code == 2
    assert "error:" in capsys.readouterr().err
