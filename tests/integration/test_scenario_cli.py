"""CLI contract for scenarios: byte-identity, verdict lines, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "scenarios"


def _capture(capsys, argv: list[str]) -> str:
    main(argv)
    return capsys.readouterr().out


def test_run_scenario_is_byte_identical_to_run_app(capsys):
    via_scenario = _capture(
        capsys,
        ["run", "--scenario", str(EXAMPLES / "flo52.json"), "--p", "8", "--scale", "0.01"],
    )
    via_app = _capture(capsys, ["run", "flo52", "8", "--scale", "0.01"])
    via_app_flag = _capture(
        capsys, ["run", "--app", "flo52", "--p", "8", "--scale", "0.01"]
    )
    assert via_scenario == via_app == via_app_flag
    assert "FLO52 on 8 processors" in via_scenario


def test_run_scenario_uses_document_defaults(capsys, tmp_path):
    doc = {
        "schema": "cedar-repro/scenario/v1",
        "name": "tiny",
        "defaults": {"n_processors": 4, "scale": 1.0, "seed": 3},
        "n_steps": 1,
        "loops": [
            {"construct": "sdoall", "n_outer": 2, "n_inner": 8, "iter_time_ns": 200_000}
        ],
    }
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(doc))
    out = _capture(capsys, ["run", "--scenario", str(path)])
    assert "tiny on 4 processors (scale 1.0)" in out


def test_run_rejects_scenario_plus_app(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "flo52", "8", "--scenario", str(EXAMPLES / "flo52.json")])
    assert excinfo.value.code == 2
    assert "error:" in capsys.readouterr().err


def test_run_rejects_missing_workload(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run"])
    assert excinfo.value.code == 2


def test_run_malformed_scenario_exits_2(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "nope"}))
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--scenario", str(path)])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: schema:")


def test_scenario_validate_reports_each_file(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    with pytest.raises(SystemExit) as excinfo:
        main(["scenario", "validate", str(EXAMPLES / "ocean.json"), str(bad)])
    assert excinfo.value.code == 1
    out = capsys.readouterr().out
    assert "ocean.json: ok -- OCEAN" in out
    assert "INVALID" in out
    assert "1 of 2 scenario(s) invalid" in out


def test_scenario_validate_all_committed_examples(capsys):
    files = sorted(str(p) for p in EXAMPLES.glob("*.json"))
    out = _capture(capsys, ["scenario", "validate", *files])
    assert out.count(": ok -- ") == len(files) == 7


def test_scenario_export_single_app(capsys, tmp_path):
    target = tmp_path / "mdg.json"
    out = _capture(capsys, ["scenario", "export", "--app", "mdg", "-o", str(target)])
    assert "wrote MDG scenario" in out
    assert target.read_bytes() == (EXAMPLES / "mdg.json").read_bytes()


def test_scenario_export_all(capsys, tmp_path):
    out = _capture(capsys, ["scenario", "export", "--all", "-o", str(tmp_path)])
    assert out.count("wrote ") == 7
    assert (tmp_path / "flo52.json").exists()
    assert (tmp_path / "topology-sweep.json").exists()


def test_scenario_generate_then_run(capsys, tmp_path):
    _capture(
        capsys,
        ["scenario", "generate", "-o", str(tmp_path), "--seed", "7", "-n", "2"],
    )
    written = sorted(tmp_path.glob("*.json"))
    assert [p.name for p in written] == ["fuzz-7-0000.json", "fuzz-7-0001.json"]
    out = _capture(capsys, ["run", "--scenario", str(written[0])])
    assert "completion time" in out


def test_scenario_generate_rejects_bad_count(capsys, tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["scenario", "generate", "-o", str(tmp_path), "-n", "0"])
    assert excinfo.value.code == 2
