"""Seed-determinism regression: same seed => bit-identical runs.

The paper's methodology only holds if contention *emerges* identically
from identical inputs: two runs of the same application, configuration
and seed must produce the same completion time, the same breakdowns and
-- stronger -- the same processed-event schedule, verified via the
:class:`~repro.analyze.sanitize.DeterminismSink` schedule hash.
"""

from __future__ import annotations

import pytest

from repro.analyze import DeterminismSink
from repro.apps import flo52, ocean
from repro.core import ct_breakdown, run_application, user_breakdown
from repro.obs import Observability
from repro.xylem.categories import TimeCategory
from repro.xylem.params import XylemParams

SEED = 20260805
SCALE = 0.01


def _run_once(builder):
    sink = DeterminismSink()
    obs = Observability(extra_sinks=[sink])
    result = run_application(
        builder(), 8, scale=SCALE, os_params=XylemParams(seed=SEED), obs=obs
    )
    return result, sink


@pytest.mark.parametrize("builder", [flo52, ocean], ids=["FLO52", "OCEAN"])
def test_same_seed_identical_breakdowns_and_schedule(builder):
    first, sink_a = _run_once(builder)
    second, sink_b = _run_once(builder)

    # Completion time and every reported breakdown must match exactly.
    assert first.ct_ns == second.ct_ns
    for cluster in range(first.config.n_clusters):
        a, b = ct_breakdown(first, cluster), ct_breakdown(second, cluster)
        assert {c: a[c] for c in TimeCategory} == {c: b[c] for c in TimeCategory}
    for task in range(first.config.n_clusters):
        assert (
            user_breakdown(first, task).as_dict()
            == user_breakdown(second, task).as_dict()
        )

    # And the schedules themselves must be event-for-event identical.
    assert sink_a.events_processed == sink_b.events_processed
    assert sink_a.schedule_hash == sink_b.schedule_hash
    assert sink_a.first_divergence(sink_b) is None


def test_parallel_sweep_equals_serial_runs():
    """A ``jobs=4`` cached sweep is indistinguishable from serial runs.

    The full FLO52+OCEAN sweep over every paper configuration, executed
    through the process pool and the result cache, must reproduce the
    exact completion times, per-cluster breakdowns and schedule hashes
    of plain serial :func:`run_application` calls -- parallelism and
    snapshotting must be invisible to the analysis.
    """
    import tempfile

    from repro.core import reference
    from repro.parallel import parallel_sweep

    scale, seed = 0.005, SEED
    builders = {"FLO52": flo52, "OCEAN": ocean}

    serial: dict[str, dict[int, tuple]] = {}
    for app, builder in builders.items():
        serial[app] = {}
        for n_proc in reference.CONFIGS:
            sink = DeterminismSink()
            result = run_application(
                builder(),
                n_proc,
                scale=scale,
                os_params=XylemParams(seed=seed),
                obs=Observability(extra_sinks=[sink]),
            )
            serial[app][n_proc] = (result, sink.schedule_hash)

    with tempfile.TemporaryDirectory() as cache_dir:
        pooled = parallel_sweep(
            list(builders),
            configs=reference.CONFIGS,
            scale=scale,
            seed=seed,
            jobs=4,
            cache_dir=cache_dir,
        )
    assert pooled.ok, f"parallel sweep failed: {pooled.failures}"

    for app in builders:
        for n_proc in reference.CONFIGS:
            live, schedule_hash = serial[app][n_proc]
            snap = pooled.results[app][n_proc]
            assert snap.ct_ns == live.ct_ns, (app, n_proc)
            assert snap.schedule_hash == schedule_hash, (app, n_proc)
            for cluster in range(live.config.n_clusters):
                assert ct_breakdown(snap, cluster) == ct_breakdown(live, cluster)
                assert (
                    user_breakdown(snap, cluster).as_dict()
                    == user_breakdown(live, cluster).as_dict()
                )


def test_different_seeds_differ():
    """Sanity check: the seed actually reaches the model."""
    sink_a = DeterminismSink()
    first = run_application(
        flo52(),
        8,
        scale=SCALE,
        os_params=XylemParams(seed=1),
        obs=Observability(extra_sinks=[sink_a]),
    )
    sink_b = DeterminismSink()
    second = run_application(
        flo52(),
        8,
        scale=SCALE,
        os_params=XylemParams(seed=2),
        obs=Observability(extra_sinks=[sink_b]),
    )
    assert first.ct_ns != second.ct_ns or (
        sink_a.schedule_hash != sink_b.schedule_hash
    )
