"""Differential regression: scenario-compiled apps against the golden tables.

The exported scenarios must not merely *resemble* the hand-coded
models -- driving FLO52 and OCEAN through the scenario compiler and
splicing those runs into the golden sweep must reproduce
``tables_v1.json`` exactly.  Any divergence means the DSL changed the
workload, which would silently fork the paper reproduction.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps import PAPER_APPS
from repro.core import reference
from repro.core.golden import compare_golden, golden_payload, load_golden
from repro.scenario import compile_scenario, export_app, scenario_from_model

GOLDEN_PATH = Path(__file__).parent / "tables_v1.json"

#: The apps re-driven through the scenario compiler (one regular, one
#: paging-heavy); the other three are pinned by model equality below.
RECOMPILED = ("FLO52", "OCEAN")


@pytest.mark.parametrize("app", reference.APPS)
def test_exported_scenario_recompiles_to_the_hand_coded_model(app):
    recompiled = compile_scenario(export_app(app)).model
    assert scenario_from_model(recompiled) == scenario_from_model(PAPER_APPS[app]())


@pytest.fixture(scope="module")
def spliced_sweep(golden_sweep):
    """The golden sweep with RECOMPILED apps re-run from scenarios."""
    sweep = {app: dict(by_config) for app, by_config in golden_sweep.items()}
    for app in RECOMPILED:
        compiled = compile_scenario(export_app(app))
        for n_processors in reference.CONFIGS:
            sweep[app][n_processors] = compiled.run(
                n_processors, scale=0.02, seed=1994
            )
    return sweep


def test_scenario_driven_tables_match_the_committed_golden(spliced_sweep):
    baseline = load_golden(GOLDEN_PATH)
    actual = golden_payload(spliced_sweep, scale=0.02, seed=1994)
    problems = compare_golden(baseline, actual)
    assert not problems, "scenario-compiled drift:\n" + "\n".join(problems)


def test_scenario_runs_fingerprint_like_the_sweep(golden_sweep):
    from repro.analyze.race import fingerprint_result

    compiled = compile_scenario(export_app("FLO52"))
    scenario_run = compiled.run(32, scale=0.02, seed=1994)
    assert (
        fingerprint_result(scenario_run).digest
        == fingerprint_result(golden_sweep["FLO52"][32]).digest
    )
