"""Session fixtures for the golden-table tests.

The full sweep at the baseline point (scale 0.02, seed 1994) is the
expensive part, so it runs once per session through
:func:`repro.parallel.parallel_sweep` against the shared result cache
(``CEDAR_REPRO_CACHE``, default ``.cedar-cache``) -- a warm cache makes
the whole golden suite run in seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.core import reference
from repro.parallel import default_cache_dir, parallel_sweep


def _jobs() -> int:
    override = os.environ.get("CEDAR_REPRO_JOBS")
    if override:
        return max(1, int(override))
    return min(4, os.cpu_count() or 1)


@pytest.fixture(scope="session")
def golden_sweep():
    """The full ``apps x configs`` sweep at the golden baseline point."""
    outcome = parallel_sweep(
        reference.APPS,
        scale=0.02,
        seed=1994,
        jobs=_jobs(),
        cache_dir=default_cache_dir(),
    )
    assert outcome.ok, f"golden sweep failed: {outcome.failures}"
    return outcome.results
