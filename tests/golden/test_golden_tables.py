"""Golden-table regression: the tables must match the committed baseline.

``tables_v1.json`` freezes Tables 1-4 and Figure 3 at scale 0.02 /
seed 1994.  The positive test recomputes the full table set and
requires every numeric cell to agree within a tight tolerance; the
negative tests prove the comparator actually bites (a perturbed value
or a reshaped table must be reported, never silently accepted).
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.core.golden import (
    GOLDEN_SCHEMA,
    compare_golden,
    golden_payload,
    load_golden,
)

GOLDEN_PATH = Path(__file__).parent / "tables_v1.json"


@pytest.fixture(scope="module")
def baseline():
    return load_golden(GOLDEN_PATH)


def test_baseline_document_shape(baseline):
    assert baseline["schema"] == GOLDEN_SCHEMA
    assert baseline["scale"] == 0.02
    assert baseline["seed"] == 1994
    assert set(baseline["tables"]) == {
        "table1",
        "table2",
        "table3",
        "table4",
        "figure3",
    }
    for name, rows in baseline["tables"].items():
        assert rows, f"{name} is empty"


def test_tables_match_golden(golden_sweep, baseline):
    actual = golden_payload(golden_sweep, scale=0.02, seed=1994)
    problems = compare_golden(baseline, actual)
    assert not problems, "golden drift:\n" + "\n".join(problems)


def test_comparator_catches_value_perturbation(baseline):
    perturbed = copy.deepcopy(baseline)
    # Nudge one numeric cell by far more than the tolerance.
    row = perturbed["tables"]["table1"][0]
    col = next(i for i, cell in enumerate(row) if isinstance(cell, float))
    row[col] = row[col] * (1 + 1e-6) + 1e-9
    problems = compare_golden(baseline, perturbed)
    assert problems and any("table1[0]" in p for p in problems)


def test_comparator_catches_shape_perturbation(baseline):
    missing_row = copy.deepcopy(baseline)
    missing_row["tables"]["figure3"].pop()
    assert any("figure3" in p for p in compare_golden(baseline, missing_row))

    missing_table = copy.deepcopy(baseline)
    del missing_table["tables"]["table4"]
    assert any("table set" in p for p in compare_golden(baseline, missing_table))

    short_row = copy.deepcopy(baseline)
    short_row["tables"]["table2"][0].pop()
    assert any("table2[0]" in p for p in compare_golden(baseline, short_row))


def test_comparator_catches_metadata_drift(baseline):
    reseeded = copy.deepcopy(baseline)
    reseeded["seed"] = 2026
    assert any(p.startswith("seed") for p in compare_golden(baseline, reseeded))


def test_comparator_accepts_roundtrip(baseline):
    rt = json.loads(json.dumps(baseline))
    assert compare_golden(baseline, rt) == []


def test_load_golden_rejects_wrong_schema(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "something-else", "tables": {}}))
    with pytest.raises(ValueError, match="golden-tables"):
        load_golden(bogus)
