"""Suppression parsing edge cases and the ``lint --stats`` audit.

Directives are accepted, documented debt -- so the parser must neither
over-match (prose and docstrings that merely mention the syntax) nor
silently drop malformed directives (which suppress nothing and surface
as un-suppressible CDR000 findings).
"""

from __future__ import annotations

import json

import pytest

from repro.analyze import (
    lint_paths,
    lint_source,
    parse_suppressions,
    render_json,
    render_suppression_stats,
)
from repro.analyze.findings import SuppressionRecord


# -- well-formed directives ---------------------------------------------------


def test_multiple_codes_in_one_directive():
    sup = parse_suppressions("x = 1  # cdr: noqa[CDR001, CDR002]\n")
    assert sup.line_codes[1] == {"CDR001", "CDR002"}
    assert not sup.malformed
    assert sup.records == [
        SuppressionRecord(lineno=1, codes=("CDR001", "CDR002"), file_level=False)
    ]


def test_file_level_versus_trailing_records():
    source = "# cdr: noqa[CDR001]\nx = 1  # cdr: noqa\n"
    sup = parse_suppressions(source)
    assert sup.file_codes == {"CDR001"}
    assert 2 in sup.line_all
    assert [r.file_level for r in sup.records] == [True, False]
    assert sup.records[1].codes == ()  # bare directive: every rule


def test_whitespace_tolerant_forms():
    sup = parse_suppressions("x = 1  #cdr:noqa[ CDR003 ]\n")
    assert sup.line_codes[1] == {"CDR003"}


# -- malformed directives suppress nothing ------------------------------------


@pytest.mark.parametrize(
    ("source", "reason_part"),
    [
        ("import time  # cdr: noqa[CDR001\nstamp = time.time()\n", "unclosed"),
        ("import time  # cdr: noqa[]\nstamp = time.time()\n", "empty"),
        ("import time  # cdr: noqa[BOGUS]\nstamp = time.time()\n", "invalid"),
    ],
)
def test_malformed_directive_does_not_suppress(source, reason_part):
    sup = parse_suppressions(source)
    assert not sup  # suppresses nothing
    assert len(sup.malformed) == 1
    lineno, reason = sup.malformed[0]
    assert lineno == 1
    assert reason_part in reason

    findings = lint_source(source, path="bad.py")
    codes = sorted(f.code for f in findings)
    # The original violation still fires AND the bad directive is called out.
    assert codes == ["CDR000", "CDR001"]
    cdr000 = next(f for f in findings if f.code == "CDR000")
    assert "suppresses nothing" in cdr000.message


def test_malformed_directive_finding_cannot_be_suppressed():
    source = "# cdr: noqa\nimport time  # cdr: noqa[CDR001\nstamp = time.time()\n"
    findings = lint_source(source, path="bad.py")
    # The file-wide bare noqa silences CDR001 but not the CDR000 audit.
    assert [f.code for f in findings] == ["CDR000"]


# -- prose is not a directive -------------------------------------------------


def test_docstring_mention_is_not_a_directive():
    source = '"""Docs: write ``# cdr: noqa[CDR001]`` to suppress."""\nx = 1\n'
    sup = parse_suppressions(source)
    assert not sup
    assert not sup.records
    assert not sup.malformed


def test_string_literal_mention_is_not_a_directive():
    sup = parse_suppressions('text = "# cdr: noqa"\n')
    assert not sup


def test_mid_comment_mention_is_not_a_directive():
    # The directive must *start* the comment; a comment discussing the
    # syntax mid-sentence is prose.
    sup = parse_suppressions("#: well-formed # cdr: noqa directives count\nx = 1\n")
    assert not sup
    assert not sup.records


def test_unparseable_source_yields_no_suppressions():
    assert not parse_suppressions("def broken(:\n")


# -- the --stats audit --------------------------------------------------------


@pytest.fixture
def audited_tree(tmp_path):
    (tmp_path / "clean.py").write_text("x = 1\n")
    (tmp_path / "one.py").write_text(
        "import time\nstamp = time.time()  # cdr: noqa[CDR001]\n"
    )
    (tmp_path / "two.py").write_text(
        "# cdr: noqa[CDR002]\n"
        "import random\n"
        "import time\n"
        "value = random.random()\n"
        "stamp = time.time()  # cdr: noqa\n"
    )
    return tmp_path


def test_suppression_stats_per_file_and_total(audited_tree):
    result = lint_paths([audited_tree])
    assert result.findings == []
    stats = result.suppression_stats()
    assert stats == {
        str(audited_tree / "one.py"): {"CDR001": 1},
        str(audited_tree / "two.py"): {"ALL": 1, "CDR002": 1},
    }

    text = render_suppression_stats(result)
    assert f"{audited_tree / 'one.py'}: CDR001 x1" in text
    assert "3 suppression(s) in 2 of 3 file(s): ALL x1, CDR001 x1, CDR002 x1" in text


def test_suppression_stats_embedded_in_json(audited_tree):
    result = lint_paths([audited_tree])
    document = json.loads(render_json(result))
    assert document["suppressions"][str(audited_tree / "one.py")] == {"CDR001": 1}


def test_stats_render_with_no_suppressions(tmp_path):
    (tmp_path / "clean.py").write_text("x = 1\n")
    result = lint_paths([tmp_path])
    assert render_suppression_stats(result) == "0 suppressions in 1 file(s)"
