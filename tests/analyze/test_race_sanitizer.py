"""Tie-break perturbation sanitizer: acceptance and self-test.

The contract under test: every published result must be a pure
function of the model, never of same-tick event insertion order.  The
sanitizer permutes `(time, priority)`-tied dequeue order with K seeded
runs and asserts byte-identical result fingerprints; the planted
hazard proves the detector actually detects.
"""

from __future__ import annotations

import pytest

from repro.analyze import (
    fingerprint_result,
    plant_order_hazard,
    race_app,
)
from repro.core.runner import run_application
from repro.xylem.params import XylemParams

PERFECT_APPS = ("ADM", "ARC2D", "FLO52", "MDG", "OCEAN")
SMALL_SCALE = 0.002


def _flo52():
    from repro.apps import PAPER_APPS

    return PAPER_APPS["FLO52"]()


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_is_deterministic_across_runs():
    a = fingerprint_result(
        run_application(_flo52(), 4, scale=SMALL_SCALE, os_params=XylemParams(seed=7))
    )
    b = fingerprint_result(
        run_application(_flo52(), 4, scale=SMALL_SCALE, os_params=XylemParams(seed=7))
    )
    assert a.digest == b.digest
    assert a.diff(b) == []


def test_fingerprint_distinguishes_configurations():
    a = fingerprint_result(
        run_application(_flo52(), 4, scale=SMALL_SCALE, os_params=XylemParams(seed=7))
    )
    b = fingerprint_result(
        run_application(_flo52(), 8, scale=SMALL_SCALE, os_params=XylemParams(seed=7))
    )
    assert a.digest != b.digest
    assert a.diff(b)  # at least one located mismatch


def test_perturbed_schedule_differs_but_results_do_not():
    """The permutation really permutes; the results really hold still."""
    from repro.analyze.sanitize import DeterminismSink
    from repro.obs.instrument import Observability

    def one(tie_break_seed):
        sink = DeterminismSink()
        result = run_application(
            _flo52(),
            8,
            scale=SMALL_SCALE,
            os_params=XylemParams(seed=7),
            obs=Observability(extra_sinks=[sink]),
            tie_break_seed=tie_break_seed,
        )
        return result, sink

    base, base_sink = one(None)
    perturbed, pert_sink = one(3)
    assert base_sink.schedule_hash != pert_sink.schedule_hash
    assert fingerprint_result(base).digest == fingerprint_result(perturbed).digest


# -- acceptance: the five Perfect-Club apps ----------------------------------


@pytest.mark.parametrize("app", PERFECT_APPS)
def test_paper_apps_are_order_independent(app):
    report = race_app(app, n_processors=8, scale=SMALL_SCALE, seeds=(1, 2, 3, 4, 5))
    assert report.hazard_free, report.format()
    assert report.tie_breaks > 0  # the permutation had ties to permute
    assert "PASS" in report.format()


def test_synthetic_app_is_order_independent():
    report = race_app("synthetic", n_processors=4, scale=0.02, seeds=(1, 2))
    assert report.hazard_free, report.format()


def test_race_app_rejects_unknown_app():
    with pytest.raises(ValueError):
        race_app("NOSUCH", n_processors=4, seeds=(1,))


def test_report_lists_hot_tie_sites():
    report = race_app("FLO52", n_processors=8, scale=SMALL_SCALE, seeds=(1,))
    assert report.hot_sites
    assert all(count > 0 for _, _, count in report.hot_sites)
    assert "hottest tie sites" in report.format()


# -- self-test: the planted hazard must be caught ----------------------------


def test_planted_hazard_is_detected():
    report = race_app(
        "FLO52",
        n_processors=8,
        scale=SMALL_SCALE,
        seeds=(1, 2, 3),
        pre_run_hook=plant_order_hazard(),
    )
    assert not report.hazard_free
    text = report.format()
    assert "FAIL" in text
    divergence = report.divergences[0]
    assert divergence.seed in (1, 2, 3)
    assert divergence.mismatches  # names the diverged result keys
    # The schedule hashes localise the first divergent event.
    assert divergence.divergence_index is not None
    assert divergence.baseline_token != divergence.perturbed_token
