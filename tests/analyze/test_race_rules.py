"""Per-rule tests for the CDR100 concurrency-hazard rules.

Each positive fixture contains exactly one simulated-race hazard; the
linter must report it with the right code and location, and must stay
silent on the compliant twin (guarded, re-read, sorted, owner-mediated).
"""

from __future__ import annotations

import pytest

from repro.analyze import LintConfig, lint_source

# -- fixtures: one hazard each ----------------------------------------------

HAZARDS = {
    "CDR101": (
        "def proc(self, sim):\n"
        "    count = self.tracker.active\n"
        "    yield sim.timeout(10)\n"
        "    self.tracker.active = count + 1\n"
    ),
    "CDR102": "import heapq\n\ndef hack(pending, entry):\n    heapq.heappush(pending, entry)\n",
    "CDR103": (
        "def drain(waiters, ready):\n"
        "    pending = set(waiters)\n"
        "    for proc in pending:\n"
        "        ready.append(proc)\n"
    ),
    "CDR104": (
        "def proc(self, sim, bank):\n"
        "    yield sim.timeout(5)\n"
        "    bank._pending.append(self)\n"
    ),
}

CLEAN = {
    # Re-reads the state after resuming instead of using the snapshot.
    "CDR101": (
        "def proc(self, sim):\n"
        "    count = self.tracker.active\n"
        "    yield sim.timeout(10)\n"
        "    self.tracker.active = self.tracker.active + 1\n"
    ),
    # Schedules through the public API.
    "CDR102": "def ok(sim):\n    return sim.timeout(10)\n",
    # Orders the set before iterating.
    "CDR103": (
        "def drain(waiters, ready):\n"
        "    pending = set(waiters)\n"
        "    for proc in sorted(pending):\n"
        "        ready.append(proc)\n"
    ),
    # Mutates its *own* state, which no other process owns.
    "CDR104": (
        "def proc(self, sim):\n"
        "    yield sim.timeout(5)\n"
        "    self._pending.append(1)\n"
    ),
}


@pytest.mark.parametrize("code", sorted(HAZARDS))
def test_each_rule_fires_with_location(code):
    findings = lint_source(HAZARDS[code], path=f"hazard_{code}.py")
    assert [f.code for f in findings] == [code]
    assert findings[0].line >= 1
    assert f"hazard_{code}.py:{findings[0].line}" in findings[0].format()


@pytest.mark.parametrize("code", sorted(CLEAN))
def test_each_rule_stays_silent_on_compliant_code(code):
    assert lint_source(CLEAN[code], path=f"clean_{code}.py") == []


# -- CDR101 shapes -----------------------------------------------------------


def test_cdr101_acquisition_guard_silences():
    source = (
        "def proc(self, sim):\n"
        "    yield self.lock.request()\n"
        "    count = self.tracker.active\n"
        "    yield sim.timeout(10)\n"
        "    self.tracker.active = count + 1\n"
    )
    assert lint_source(source, path="guarded.py") == []


def test_cdr101_with_request_guard_silences():
    source = (
        "def proc(self, sim):\n"
        "    with self.lock.request() as req:\n"
        "        yield req\n"
        "    count = self.tracker.active\n"
        "    yield sim.timeout(10)\n"
        "    self.tracker.active = count + 1\n"
    )
    assert lint_source(source, path="guarded_with.py") == []


def test_cdr101_no_yield_between_is_atomic():
    source = (
        "def proc(self, sim):\n"
        "    yield sim.timeout(10)\n"
        "    count = self.tracker.active\n"
        "    self.tracker.active = count + 1\n"
    )
    assert lint_source(source, path="atomic.py") == []


def test_cdr101_augmented_assign_is_atomic():
    source = (
        "def proc(self, sim):\n"
        "    yield sim.timeout(10)\n"
        "    self.tracker.active += 1\n"
    )
    assert lint_source(source, path="augassign.py") == []


def test_cdr101_plain_function_not_checked():
    # Only process generators interleave; a plain callback runs atomically.
    source = (
        "def callback(self):\n"
        "    count = self.tracker.active\n"
        "    self.tracker.active = count + 1\n"
    )
    assert lint_source(source, path="plain.py") == []


# -- CDR102 shapes -----------------------------------------------------------


def test_cdr102_resolves_from_import():
    source = (
        "from heapq import heappush\n"
        "\n"
        "def hack(sim, entry):\n"
        "    heappush(sim._queue, entry)\n"
    )
    findings = lint_source(source, path="fromimport.py")
    assert [f.code for f in findings] == ["CDR102", "CDR102"]  # call + _queue


def test_cdr102_internal_attribute_read_flagged():
    findings = lint_source(
        "def peek(sim):\n    return sim._eid_next\n", path="peek.py"
    )
    assert [f.code for f in findings] == ["CDR102"]


def test_cdr102_kernel_module_is_exempt():
    source = "import heapq\n\ndef push(queue, entry):\n    heapq.heappush(queue, entry)\n"
    assert lint_source(source, path="repro/sim/core.py") == []


# -- CDR103 shapes -----------------------------------------------------------


def test_cdr103_set_literal_and_comprehension():
    source = (
        "names = [n for n in {'a', 'b'}]\n"
        "for item in frozenset((1, 2)):\n"
        "    print(item)\n"
    )
    findings = lint_source(source, path="sets.py")
    assert [f.code for f in findings] == ["CDR103", "CDR103"]


def test_cdr103_set_pop_flagged():
    source = (
        "def take(items):\n"
        "    live = set(items)\n"
        "    live.pop()\n"
    )
    findings = lint_source(source, path="pop.py")
    assert [f.code for f in findings] == ["CDR103"]


def test_cdr103_reassigned_local_forgotten():
    source = (
        "def drain(items):\n"
        "    live = set(items)\n"
        "    live = sorted(live)\n"
        "    for item in live:\n"
        "        print(item)\n"
    )
    assert lint_source(source, path="reassigned.py") == []


def test_cdr103_set_operation_result():
    source = "for item in left.union(right):\n    print(item)\n"
    findings = lint_source(source, path="union.py")
    assert [f.code for f in findings] == ["CDR103"]


# -- CDR104 shapes -----------------------------------------------------------


def test_cdr104_assignment_and_del_flagged():
    source = (
        "def proc(self, sim, gate):\n"
        "    yield sim.timeout(1)\n"
        "    gate._owner = self\n"
        "    del gate._waiters[0]\n"
    )
    findings = lint_source(source, path="foreign.py")
    assert [f.code for f in findings] == ["CDR104", "CDR104"]


def test_cdr104_acquisition_guard_silences():
    source = (
        "def proc(self, sim, bank):\n"
        "    yield bank.lock.acquire()\n"
        "    bank._pending.append(self)\n"
    )
    assert lint_source(source, path="guarded104.py") == []


def test_cdr104_public_method_call_allowed():
    source = (
        "def proc(self, sim, bank):\n"
        "    yield sim.timeout(1)\n"
        "    bank.enqueue(self)\n"
    )
    assert lint_source(source, path="owner.py") == []


# -- select / suppression integration ---------------------------------------


def test_select_restricts_to_cdr100_series():
    cfg = LintConfig(select=frozenset({"CDR101", "CDR104"}))
    source = HAZARDS["CDR101"] + "\n" + HAZARDS["CDR103"]
    findings = lint_source(source, path="mixed.py", config=cfg)
    assert [f.code for f in findings] == ["CDR101"]


def test_trailing_noqa_suppresses_cdr101():
    source = (
        "def proc(self, sim):\n"
        "    count = self.tracker.active\n"
        "    yield sim.timeout(10)\n"
        "    self.tracker.active = count + 1  # cdr: noqa[CDR101]\n"
    )
    assert lint_source(source, path="suppressed.py") == []
