"""Tests for the dynamic schedule-order sanitizer."""

from __future__ import annotations

import pytest

from repro.analyze import (
    SCHEDULE_HASH_DOMAIN,
    DeterminismSink,
    ScheduleHashDomainError,
    same_schedule,
    sanitize_app,
    split_schedule_hash,
)
from repro.sim import Simulator


def _workload(sim):
    def worker(sim, delay):
        yield sim.timeout(delay)
        yield sim.timeout(delay * 2)

    for delay in (3, 5, 7):
        sim.process(worker(sim, delay), name=f"w{delay}")


def test_same_program_same_hash():
    hashes = []
    for _ in range(2):
        sink = DeterminismSink()
        sim = Simulator(trace_sink=sink)
        _workload(sim)
        sim.run()
        hashes.append(sink.schedule_hash)
    assert hashes[0] == hashes[1]
    domain, digest = split_schedule_hash(hashes[0])
    assert domain == SCHEDULE_HASH_DOMAIN
    assert len(digest) == 32  # blake2b/16 hex


def test_different_schedule_different_hash():
    sink_a = DeterminismSink()
    sim = Simulator(trace_sink=sink_a)
    _workload(sim)
    sim.run()

    sink_b = DeterminismSink()
    sim = Simulator(trace_sink=sink_b)

    def other(sim):
        yield sim.timeout(4)

    sim.process(other(sim), name="other")
    sim.run()
    assert sink_a.schedule_hash != sink_b.schedule_hash


def test_injected_tie_break_ambiguity_is_detected():
    """Two events scheduled for the same (time, priority) must be flagged."""
    sink = DeterminismSink()
    sim = Simulator(trace_sink=sink)

    def racer(sim, name):
        yield sim.timeout(10)  # both reach t=10 at NORMAL priority

    sim.process(racer(sim, "a"), name="a")
    sim.process(racer(sim, "b"), name="b")
    sim.run()
    assert sink.ambiguity_count > 0
    assert sink.ambiguities
    record = sink.ambiguities[0]
    assert record.t_ns >= 0
    assert "before" in record.format()


def test_no_ambiguity_when_times_differ():
    sink = DeterminismSink()
    sim = Simulator(trace_sink=sink)

    def lone(sim):
        yield sim.timeout(5)
        yield sim.timeout(11)

    sim.process(lone(sim), name="lone")
    sim.run()
    # A single process never has two pending events at the same instant
    # beyond its Initialize (which is alone at t=0).
    assert sink.ambiguity_count == 0


def test_first_divergence_located():
    sink_a = DeterminismSink()
    sim = Simulator(trace_sink=sink_a)
    _workload(sim)
    sim.run()

    sink_b = DeterminismSink()
    sim = Simulator(trace_sink=sink_b)

    def near_workload(sim):
        # Same first events, then diverges.
        def worker(sim, delay):
            yield sim.timeout(delay)
            yield sim.timeout(delay * 3)

        for delay in (3, 5, 7):
            sim.process(worker(sim, delay), name=f"w{delay}")

    near_workload(sim)
    sim.run()
    index = sink_a.first_divergence(sink_b)
    assert index is not None
    assert sink_a.order[:index] == sink_b.order[:index]


def test_order_capacity_bounds_memory():
    sink = DeterminismSink(order_capacity=4)
    sim = Simulator(trace_sink=sink)
    _workload(sim)
    sim.run()
    assert len(sink.order) == 4
    assert sink.order_dropped == sink.events_processed - 4
    with pytest.raises(ValueError):
        DeterminismSink(order_capacity=-1)


def test_sanitize_app_synthetic_is_deterministic():
    report = sanitize_app("synthetic", 4, scale=0.004, seed=7, runs=2)
    assert report.deterministic
    assert len(report.digests) == 2
    assert report.digests[0].schedule_hash == report.digests[1].schedule_hash
    assert report.digests[0].ct_ns == report.digests[1].ct_ns
    assert report.digests[0].events_processed > 0
    text = report.format()
    assert "identical" in text
    assert report.digests[0].schedule_hash in text


def test_sanitize_app_rejects_single_run_and_unknown_app():
    with pytest.raises(ValueError):
        sanitize_app("synthetic", 4, runs=1)
    with pytest.raises(ValueError, match="unknown application"):
        sanitize_app("no-such-app", 4)


def test_schedule_hash_domain_comparisons():
    """Same-domain hashes compare; cross-domain comparisons fail loudly."""
    v2_a = f"{SCHEDULE_HASH_DOMAIN}:aaaa"
    v2_b = f"{SCHEDULE_HASH_DOMAIN}:bbbb"
    assert same_schedule(v2_a, v2_a)
    assert not same_schedule(v2_a, v2_b)
    # A bare digest is an implicit legacy (v1) hash: comparing it with a
    # v2 hash must raise with a re-record message, not report mismatch.
    assert split_schedule_hash("cafe")[0] == "cedar-repro/schedule/v1"
    with pytest.raises(ScheduleHashDomainError, match="Re-record"):
        same_schedule(v2_a, "cafe")
    with pytest.raises(ScheduleHashDomainError, match="not nondeterminism"):
        same_schedule("cedar-repro/schedule/v1:cafe", v2_a)


def test_sanitize_report_flags_divergence():
    from repro.analyze.sanitize import RunDigest, SanitizeReport

    report = SanitizeReport(app="X", n_processors=4, scale=1.0, seed=1)
    report.digests = [
        RunDigest("aaaa", 10, 100, 0),
        RunDigest("bbbb", 10, 100, 0),
    ]
    report.divergence_index = 3
    report.divergence_tokens = ("5|Timeout|", "5|Event|")
    assert not report.deterministic
    text = report.format()
    assert "DIFFER" in text
    assert "#3" in text
