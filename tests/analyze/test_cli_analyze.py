"""CLI-level tests for ``cedar-repro lint`` / ``cedar-repro sanitize``,
and the acceptance gate: the repo's own sources lint clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_lint_src_exits_zero_on_the_repo(capsys):
    """The repository itself carries no unsuppressed determinism findings."""
    main(["lint", str(REPO_SRC)])
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_lint_flags_violation_and_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\nx = time.time()\n")
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", str(bad)])
    assert excinfo.value.code == 1
    out = capsys.readouterr().out
    assert f"{bad}:3:" in out
    assert "CDR001" in out


def test_lint_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n\nx = random.random()\n")
    with pytest.raises(SystemExit):
        main(["lint", str(bad), "--format", "json"])
    document = json.loads(capsys.readouterr().out)
    assert document["by_code"] == {"CDR002": 1}
    assert document["findings"][0]["code"] == "CDR002"


def test_lint_select_restricts_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time, random\n\na = time.time()\nb = random.random()\n")
    with pytest.raises(SystemExit):
        main(["lint", str(bad), "--select", "CDR002"])
    out = capsys.readouterr().out
    assert "CDR002" in out
    assert "CDR001" not in out


def test_sanitize_reports_identical_hashes(capsys):
    main(["sanitize", "--app", "synthetic", "--p", "4", "--scale", "0.004"])
    out = capsys.readouterr().out
    assert "identical" in out
    assert "run 0: hash" in out
    assert "run 1: hash" in out
