"""CLI-level tests for ``cedar-repro lint`` / ``cedar-repro sanitize``,
and the acceptance gate: the repo's own sources lint clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_lint_src_exits_zero_on_the_repo(capsys):
    """The repository itself carries no unsuppressed determinism findings."""
    main(["lint", str(REPO_SRC)])
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_lint_flags_violation_and_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\nx = time.time()\n")
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", str(bad)])
    assert excinfo.value.code == 1
    out = capsys.readouterr().out
    assert f"{bad}:3:" in out
    assert "CDR001" in out


def test_lint_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n\nx = random.random()\n")
    with pytest.raises(SystemExit):
        main(["lint", str(bad), "--format", "json"])
    document = json.loads(capsys.readouterr().out)
    assert document["by_code"] == {"CDR002": 1}
    assert document["findings"][0]["code"] == "CDR002"


def test_lint_select_restricts_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time, random\n\na = time.time()\nb = random.random()\n")
    with pytest.raises(SystemExit):
        main(["lint", str(bad), "--select", "CDR002"])
    out = capsys.readouterr().out
    assert "CDR002" in out
    assert "CDR001" not in out


def test_lint_stats_appends_suppression_audit(tmp_path, capsys):
    src = tmp_path / "ok.py"
    src.write_text("import time\nstamp = time.time()  # cdr: noqa[CDR001]\n")
    main(["lint", str(src), "--stats"])
    out = capsys.readouterr().out
    assert "0 findings" in out
    assert f"{src}: CDR001 x1" in out
    assert "1 suppression(s) in 1 of 1 file(s)" in out


def test_race_cli_passes_on_synthetic(capsys):
    main(["race", "--app", "synthetic", "--p", "4", "--scale", "0.02", "-k", "2"])
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "byte-identical" in out or "identical" in out


def test_race_cli_self_test_detects_planted_hazard(capsys):
    main(
        [
            "race",
            "--app",
            "FLO52",
            "--p",
            "8",
            "--scale",
            "0.002",
            "-k",
            "2",
            "--self-test",
        ]
    )
    out = capsys.readouterr().out
    assert "FAIL" in out  # the report flags the hazard...
    assert "self-test passed" in out  # ...which is exactly what the self-test wants


def test_race_cli_unknown_app_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["race", "--app", "NOSUCH", "-k", "1"])
    assert excinfo.value.code == 2


def test_sanitize_reports_identical_hashes(capsys):
    main(["sanitize", "--app", "synthetic", "--p", "4", "--scale", "0.004"])
    out = capsys.readouterr().out
    assert "identical" in out
    assert "run 0: hash" in out
    assert "run 1: hash" in out
