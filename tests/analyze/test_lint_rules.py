"""Per-rule tests for the determinism linter.

Each fixture contains exactly one violation of one rule; the linter
must report it with the right ``CDR`` code and a ``file:line`` anchor,
and must stay silent on the compliant twin.
"""

from __future__ import annotations

import json

import pytest

from repro.analyze import (
    RULE_REGISTRY,
    LintConfig,
    LintResult,
    all_rules,
    lint_paths,
    lint_source,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.analyze.findings import Finding

# -- fixtures: one violation each -------------------------------------------

VIOLATIONS = {
    "CDR001": "import time\n\nstamp = time.time()\n",
    "CDR002": "import random\n\nvalue = random.randint(0, 7)\n",
    "CDR003": "def proc(sim):\n    yield sim.timeout(100 / 3)\n",
    "CDR004": "def signal(event):\n    event.succeed(42)\n",
    "CDR005": (
        "def work(sim):\n"
        "    return 3\n"
        "\n"
        "def main(sim):\n"
        "    sim.process(work(sim))\n"
    ),
}

CLEAN = {
    "CDR001": "from repro.obs.hostclock import host_clock_s\n\nstamp = host_clock_s()\n",
    "CDR002": "import numpy as np\n\nrng = np.random.default_rng(1994)\n",
    "CDR003": "def proc(sim):\n    yield sim.timeout(int(100 / 3))\n",
    "CDR004": "def signal(gate):\n    gate.open()\n",
    "CDR005": (
        "def work(sim):\n"
        "    yield sim.timeout(1)\n"
        "\n"
        "def main(sim):\n"
        "    sim.process(work(sim))\n"
    ),
}


@pytest.mark.parametrize("code", sorted(VIOLATIONS))
def test_each_rule_fires_with_location(code):
    findings = lint_source(VIOLATIONS[code], path=f"fixture_{code}.py")
    assert [f.code for f in findings] == [code]
    finding = findings[0]
    assert finding.line >= 1
    assert f"fixture_{code}.py:{finding.line}" in finding.format()
    assert finding.code in finding.format()


@pytest.mark.parametrize("code", sorted(CLEAN))
def test_each_rule_stays_silent_on_compliant_code(code):
    assert lint_source(CLEAN[code], path=f"clean_{code}.py") == []


def test_unparseable_file_reports_cdr000():
    findings = lint_source("def broken(:\n", path="broken.py")
    assert [f.code for f in findings] == ["CDR000"]
    assert "does not parse" in findings[0].message


# -- additional rule shapes ---------------------------------------------------


def test_wallclock_resolves_import_aliases():
    source = "from time import perf_counter as pc\n\nbegin = pc()\n"
    assert [f.code for f in lint_source(source, path="alias.py")] == ["CDR001"]


def test_wallclock_whitelist_applies_to_kernel_and_obs():
    source = "from time import perf_counter\n\nbegin = perf_counter()\n"
    for rel in ("repro/sim/core.py", "repro/obs/hostclock.py"):
        assert lint_source(source, path=rel, relpath=rel) == []
    assert lint_source(source, path="repro/core/x.py", relpath="repro/core/x.py")


def test_rng_flags_unseeded_and_legacy_constructions():
    flagged = (
        "import random\nrng = random.Random(3)\n",
        "import random\nrng = random.SystemRandom()\n",
        "import numpy as np\nnp.random.seed(1)\n",
        "import numpy as np\nx = np.random.rand(4)\n",
        "from random import shuffle\nshuffle([1, 2])\n",
    )
    for source in flagged:
        assert [f.code for f in lint_source(source, path="m.py")] == ["CDR002"], source
    allowed = (
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        "import numpy as np\nseq = np.random.SeedSequence(7)\n",
    )
    for source in allowed:
        assert lint_source(source, path="m.py") == [], source


def test_float_time_flags_literals_and_division_but_not_calls():
    assert lint_source("def p(sim):\n    yield sim.timeout(1.5)\n", path="m.py")
    assert lint_source(
        "def p(sim, t):\n    yield sim.timeout(t / 2)\n", path="m.py"
    )
    # Guarded conversions and opaque helper calls are fine.
    assert lint_source(
        "def p(sim, t):\n    yield sim.timeout(round(t / 2))\n", path="m.py"
    ) == []
    assert lint_source(
        "def p(sim, t):\n    yield sim.timeout(cost_ns(1.0))\n", path="m.py"
    ) == []


def test_float_time_checks_schedule_delay_keyword():
    source = "def p(sim, ev):\n    sim.schedule(ev, delay=0.5)\n"
    codes = {f.code for f in lint_source(source, path="m.py")}
    assert "CDR003" in codes


def test_kernel_only_trigger_allows_the_kernel_itself():
    source = "def grant(req):\n    req.succeed()\n"
    rel = "repro/sim/resources.py"
    assert lint_source(source, path=rel, relpath=rel) == []
    assert lint_source(source, path="repro/xylem/vm.py", relpath="repro/xylem/vm.py")


def test_process_rule_flags_uncalled_function_reference():
    source = (
        "def work(sim):\n"
        "    yield sim.timeout(1)\n"
        "\n"
        "def main(sim):\n"
        "    sim.process(work)\n"
    )
    findings = lint_source(source, path="m.py")
    assert [f.code for f in findings] == ["CDR005"]
    assert "without being called" in findings[0].message


def test_process_rule_resolves_self_methods():
    source = (
        "class Model:\n"
        "    def tick(self):\n"
        "        return 1\n"
        "\n"
        "    def start(self, sim):\n"
        "        sim.process(self.tick())\n"
    )
    assert [f.code for f in lint_source(source, path="m.py")] == ["CDR005"]


# -- suppression --------------------------------------------------------------


def test_trailing_noqa_suppresses_only_its_line():
    source = (
        "import random\n"
        "a = random.random()  # cdr: noqa[CDR002]\n"
        "b = random.random()\n"
    )
    findings = lint_source(source, path="m.py")
    assert [(f.code, f.line) for f in findings] == [("CDR002", 3)]


def test_file_level_noqa_suppresses_whole_file():
    source = (
        "# cdr: noqa[CDR002]\n"
        "import random\n"
        "a = random.random()\n"
        "b = random.random()\n"
    )
    assert lint_source(source, path="m.py") == []


def test_bare_noqa_suppresses_all_codes():
    source = "import time\n\nx = time.time()  # cdr: noqa\n"
    assert lint_source(source, path="m.py") == []


def test_parse_suppressions_distinguishes_levels():
    sup = parse_suppressions(
        "# cdr: noqa[CDR001, CDR003]\nx = 1  # cdr: noqa[CDR002]\ny = 2  # cdr: noqa\n"
    )
    assert sup.file_codes == {"CDR001", "CDR003"}
    assert not sup.file_all
    assert sup.line_codes == {2: {"CDR002"}}
    assert sup.line_all == {3}


def test_noqa_does_not_hide_other_codes():
    source = "import time\n\nx = time.time()  # cdr: noqa[CDR002]\n"
    assert [f.code for f in lint_source(source, path="m.py")] == ["CDR001"]


# -- registry, selection, engine ---------------------------------------------


def test_registry_has_all_rules_with_stable_codes():
    assert set(RULE_REGISTRY) == {
        "CDR001",
        "CDR002",
        "CDR003",
        "CDR004",
        "CDR005",
        # The CDR100 series: concurrency-hazard rules (repro.analyze.race).
        "CDR101",
        "CDR102",
        "CDR103",
        "CDR104",
    }
    for code, cls in RULE_REGISTRY.items():
        assert cls.code == code
        assert cls.summary


def test_select_restricts_rules():
    rules = all_rules(frozenset({"CDR002"}))
    assert [r.code for r in rules] == ["CDR002"]
    with pytest.raises(ValueError):
        all_rules(frozenset({"CDR999"}))


def test_select_via_config():
    source = "import time, random\n\na = time.time()\nb = random.random()\n"
    config = LintConfig(select=frozenset({"CDR001"}))
    findings = lint_source(source, path="m.py", config=config)
    assert [f.code for f in findings] == ["CDR001"]


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text("import time\nx = time.time()\n")
    (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "skipme.py").write_text(
        "import time\nx = time.time()\n"
    )
    result = lint_paths([tmp_path])
    assert result.files_checked == 2
    assert [f.code for f in result.findings] == ["CDR001"]
    assert not result.ok


def test_lint_paths_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        lint_paths([tmp_path / "nowhere"])


# -- reporters ----------------------------------------------------------------


def _result_with(*findings):
    result = LintResult(findings=list(findings), files_checked=3)
    return result


def test_text_reporter_lists_findings_and_tally():
    finding = Finding("a.py", 3, 1, "CDR001", "wall-clock read")
    text = render_text(_result_with(finding))
    assert "a.py:3:1: CDR001 wall-clock read" in text
    assert "1 finding(s) in 3 file(s)" in text
    assert "CDR001 x1" in text


def test_text_reporter_clean_run():
    assert "0 findings in 3 file(s)" in render_text(_result_with())


def test_json_reporter_round_trips():
    finding = Finding("a.py", 3, 1, "CDR002", "global RNG")
    document = json.loads(render_json(_result_with(finding)))
    assert document["finding_count"] == 1
    assert document["files_checked"] == 3
    assert document["by_code"] == {"CDR002": 1}
    assert document["findings"][0]["path"] == "a.py"
    assert document["findings"][0]["line"] == 3
