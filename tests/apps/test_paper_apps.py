"""Structural tests of the five Perfect Benchmark models.

Checks that each model encodes the construct usage and calibration
anchors the paper describes, without running full simulations.
"""

import pytest

from repro.apps import PAPER_APPS, adm, arc2d, flo52, mdg, ocean
from repro.core import reference
from repro.runtime import LoopConstruct, ParallelLoop


def constructs_of(app):
    return {shape.construct for shape in app.loops_per_step}


def test_registry_matches_reference_apps():
    assert tuple(PAPER_APPS) == reference.APPS


def test_flo52_uses_only_sdoall():
    """FLO52 only uses the hierarchical construct (Section 2)."""
    assert constructs_of(flo52()) == {LoopConstruct.SDOALL}


def test_adm_uses_only_xdoall():
    """ADM uses only the flat construct (Section 2)."""
    assert constructs_of(adm()) == {LoopConstruct.XDOALL}


def test_other_apps_use_both_constructs():
    """ARC2D, MDG and OCEAN use both constructs (Section 2)."""
    for builder in (arc2d, mdg, ocean):
        constructs = constructs_of(builder())
        assert LoopConstruct.SDOALL in constructs
        assert LoopConstruct.XDOALL in constructs


def test_some_apps_have_main_cluster_only_loops():
    """The applications have a few main cluster-only loops."""
    mc = {LoopConstruct.CLUSTER_ONLY, LoopConstruct.CDOACROSS}
    with_mc = [name for name, b in PAPER_APPS.items() if constructs_of(b()) & mc]
    assert with_mc  # at least some models carry them


def test_calibration_anchor_parallel_time():
    """Single-CE parallel time within ~10% of the paper's T1 (Table 4)."""
    for name, builder in PAPER_APPS.items():
        app = builder()
        t1_paper = reference.TABLE4[name][1][0]
        t1_model = app.nominal_parallel_ns() / 1e9
        assert t1_model == pytest.approx(t1_paper, rel=0.10), (
            f"{name}: model T1 {t1_model:.0f}s vs paper {t1_paper:.0f}s"
        )


def test_calibration_anchor_completion_time():
    """Single-CE CT within ~12% of the paper's Table 1 column."""
    for name, builder in PAPER_APPS.items():
        app = builder()
        ct_paper = reference.TABLE1[name][1][0]
        ct_model = app.nominal_ct_ns() / 1e9
        assert ct_model == pytest.approx(ct_paper, rel=0.12), (
            f"{name}: model CT1 {ct_model:.0f}s vs paper {ct_paper:.0f}s"
        )


def test_mdg_loops_divide_evenly():
    """MDG's near-linear speedup needs evenly-dividing trip counts."""
    for shape in mdg().loops_per_step:
        if shape.construct is LoopConstruct.SDOALL:
            assert shape.n_outer % 4 == 0
            assert shape.n_inner % 8 == 0


def test_flo52_loops_divide_unevenly():
    """FLO52's poor concurrency comes from awkward trip counts."""
    awkward = [
        shape
        for shape in flo52().loops_per_step
        if shape.n_outer % 4 != 0 or shape.n_inner % 8 != 0
    ]
    assert awkward


def test_flo52_is_most_memory_intensive():
    def mean_fraction(app):
        shapes = app.loops_per_step
        return sum(s.mem_fraction for s in shapes) / len(shapes)

    fractions = {name: mean_fraction(b()) for name, b in PAPER_APPS.items()}
    assert max(fractions, key=fractions.get) == "FLO52"


def test_adm_iterations_are_fine_grained():
    """ADM's xdoall saturation needs sub-millisecond iterations."""
    for shape in adm().loops_per_step:
        assert shape.iter_time_ns < 1_000_000


def test_every_app_has_some_paged_loop():
    for name, builder in PAPER_APPS.items():
        shapes = builder().loops_per_step
        assert any(s.iters_per_page > 0 for s in shapes), name


def test_phases_materialise_at_all_scales():
    for name, builder in PAPER_APPS.items():
        app = builder()
        for scale in (1.0, 0.1, 0.01):
            phases = app.phases(scale)
            assert phases
            assert any(isinstance(p, ParallelLoop) for p in phases)
