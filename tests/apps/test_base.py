"""Unit tests for the application-model machinery."""

import pytest

from repro.apps import AppModel, LoopShape, PageSpace, loop_timing, synthetic_app
from repro.hardware import CedarConfig
from repro.runtime import LoopConstruct, ParallelLoop, SerialPhase


def test_loop_timing_splits_to_target():
    """work + stream time reproduces the calibrated iteration time."""
    config = CedarConfig()
    for iter_ns in (500_000, 5_000_000, 30_000_000):
        for fraction in (0.1, 0.3, 0.6):
            work, words = loop_timing(iter_ns, fraction, mem_rate=0.5)
            stream = ((words - 1) / 0.5 + config.min_memory_round_trip_cycles) * config.cycle_ns
            assert work + stream == pytest.approx(iter_ns, rel=0.02)


def test_loop_timing_zero_fraction_all_work():
    work, words = loop_timing(1_000_000, 0.0, 0.5)
    assert work == 1_000_000
    assert words == 0


def test_loop_timing_validation():
    with pytest.raises(ValueError):
        loop_timing(0, 0.3, 0.5)
    with pytest.raises(ValueError):
        loop_timing(1000, 1.0, 0.5)


def test_page_space_sequential():
    pages = PageSpace()
    assert pages.allocate(10) == 0
    assert pages.allocate(5) == 10
    assert pages.allocated == 15


def test_loop_shape_build():
    shape = LoopShape(
        construct=LoopConstruct.SDOALL,
        n_outer=4,
        n_inner=16,
        iter_time_ns=1_000_000,
        iters_per_page=8,
        work_skew=0.3,
    )
    loop = shape.build(page_base=100)
    assert isinstance(loop, ParallelLoop)
    assert loop.page_base == 100
    assert loop.work_skew == 0.3
    assert shape.total_single_ce_ns == 64_000_000


def test_loop_shape_build_without_paging():
    shape = LoopShape(
        construct=LoopConstruct.XDOALL, n_outer=1, n_inner=8, iter_time_ns=1_000_000
    )
    assert shape.build(page_base=5).page_base == -1


def make_app(n_steps=10):
    shape = LoopShape(
        construct=LoopConstruct.SDOALL,
        n_outer=4,
        n_inner=8,
        iter_time_ns=1_000_000,
        iters_per_page=8,
    )
    fresh = LoopShape(
        construct=LoopConstruct.SDOALL,
        n_outer=4,
        n_inner=8,
        iter_time_ns=1_000_000,
        iters_per_page=8,
        fresh_pages_each_step=True,
    )
    return AppModel(
        name="T",
        n_steps=n_steps,
        serial_per_step_ns=5_000_000,
        loops_per_step=[shape, fresh],
        init_serial_ns=100_000_000,
        init_pages=4,
    )


def test_steps_at_scale_and_extrapolation():
    app = make_app(n_steps=10)
    assert app.steps_at_scale(1.0) == 10
    assert app.steps_at_scale(0.2) == 2
    assert app.steps_at_scale(0.01) == 1
    assert app.extrapolation(0.2) == 5.0
    with pytest.raises(ValueError):
        app.steps_at_scale(0.0)
    with pytest.raises(ValueError):
        app.steps_at_scale(1.5)


def test_phases_structure_at_full_scale():
    app = make_app(n_steps=3)
    phases = app.phases(1.0)
    serial = [p for p in phases if isinstance(p, SerialPhase)]
    loops = [p for p in phases if isinstance(p, ParallelLoop)]
    # init + 3 per-step serial sections; 2 loops per step.
    assert len(serial) == 4
    assert len(loops) == 6


def test_init_serial_scales_with_steps():
    app = make_app(n_steps=10)
    init_full = app.phases(1.0)[0]
    init_scaled = app.phases(0.2)[0]
    assert init_scaled.work_ns == pytest.approx(init_full.work_ns * 0.2, rel=0.01)


def test_warm_loops_share_pages_across_steps():
    app = make_app(n_steps=3)
    loops = [p for p in app.phases(1.0) if isinstance(p, ParallelLoop)]
    warm = loops[0::2]
    fresh = loops[1::2]
    assert len({loop.page_base for loop in warm}) == 1
    assert len({loop.page_base for loop in fresh}) == 3


def test_nominal_anchors():
    app = make_app(n_steps=10)
    assert app.nominal_parallel_ns() == 2 * 32 * 1_000_000 * 10
    assert app.nominal_serial_ns() == 100_000_000 + 5_000_000 * 10
    assert app.nominal_ct_ns() == app.nominal_parallel_ns() + app.nominal_serial_ns()


def test_n_steps_validation():
    with pytest.raises(ValueError):
        AppModel("X", n_steps=0, serial_per_step_ns=0, loops_per_step=[])


def test_synthetic_app_constructs():
    sdo = synthetic_app(construct=LoopConstruct.SDOALL, n_outer=4, n_inner=8)
    xdo = synthetic_app(construct=LoopConstruct.XDOALL, n_outer=4, n_inner=8)
    sdo_loop = sdo.loops_per_step[0]
    xdo_loop = xdo.loops_per_step[0]
    assert sdo_loop.n_outer == 4 and sdo_loop.n_inner == 8
    # XDOALL flattens the trip count.
    assert xdo_loop.n_outer == 1 and xdo_loop.n_inner == 32


def test_synthetic_app_serial_fraction():
    app = synthetic_app(serial_fraction_of_step=0.5, loops_per_step=2)
    per_step_parallel = sum(s.total_single_ce_ns for s in app.loops_per_step)
    assert app.serial_per_step_ns == pytest.approx(per_step_parallel * 0.5)
