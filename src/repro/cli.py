"""Command-line interface for the reproduction.

Run as ``python -m repro.cli <command>``:

* ``run APP N_PROC`` -- run one application on one configuration and
  print every decomposition the paper reports for it.  ``run
  --scenario FILE`` runs a declarative scenario document instead
  (``docs/scenarios.md``); processor count, scale and seed then
  default to the scenario's own ``defaults`` section, and the output
  is byte-identical to running the equivalent built-in app.
* ``scenario validate FILES...`` -- parse + compile scenario
  documents, printing one verdict line per file; ``scenario export
  (--app NAME | --all) [-o PATH]`` writes the built-in apps as
  scenario files; ``scenario generate -o DIR --seed S -n N`` writes
  seeded fuzz scenarios.
* ``sweep APP`` -- run one application on all five configurations and
  print its Table 1/3/4 columns.
* ``tables`` -- run everything and print Tables 1-4 and Figure 3.
* ``trace APP N_PROC -o FILE`` -- run and off-load the cedarhpm trace
  buffer to a JSON-lines file whose first line is a ``{"meta": ...}``
  header recording the machine configuration, seed and application.
* ``stats APP N_PROC -o FILE`` -- run and write the JSON run report
  (config, seed, git revision, wall time, full metrics snapshot).
* ``profile APP N_PROC`` -- run with the kernel profiler attached and
  print the top simulation processes by host wall time and by
  simulated time.
* ``lint [PATHS]`` -- statically check the determinism invariants
  (``CDR`` rule codes, ``docs/static-analysis.md``); exits non-zero on
  any finding.  ``--stats`` appends the suppression audit: counts of
  ``# cdr: noqa[CODE]`` directives per rule per file.
* ``sanitize --app APP --p N`` -- run a workload twice under one seed
  and diff the processed-event schedule hashes; exits non-zero if the
  runs diverge.
* ``race --app APP --p N`` -- the tie-break perturbation sanitizer:
  run a baseline plus K seeded runs with same-instant event order
  permuted and assert byte-identical breakdowns and tables; any
  divergence is a confirmed order-dependence hazard.  ``--self-test``
  plants a deliberate hazard and exits non-zero unless it is caught.
* ``inject APP N_PROC --campaign FILE`` -- run one application under a
  fault campaign and print the fault log plus the degraded breakdown.
* ``campaign FILE`` -- run (or, with ``--generate``, create) a fault
  campaign over its app/config grid with per-cell failure isolation.
* ``report LOG`` -- distil a campaign event log into the SLO report
  (sustained cells/s, p50/p95/p99 cell latency, utilization, cache and
  failure breakdown, recovery events; ``docs/observability.md``).
* ``resume JOURNAL`` -- resume an interrupted campaign from its
  write-ahead journal: completed cells come from the result cache,
  only incomplete cells re-run, and a code-fingerprint mismatch is
  refused (``docs/resilience.md``).

``run``, ``sweep`` and ``tables`` additionally accept ``--stats FILE``
to write the run report(s) of the runs they perform.  ``run``,
``sweep``, ``tables``, ``stats`` and ``campaign`` accept ``--jobs N``
(fan the sweep cells out across N worker processes), ``--cache-dir
DIR`` (a content-addressed result cache: warm reruns skip simulation
entirely; see ``docs/parallel-execution.md``), and the campaign
telemetry flags ``--log FILE`` (JSONL event log), ``--progress`` (force
the live progress line) and ``--perfetto FILE`` (campaign-wide Chrome
trace).  ``sweep``, ``tables`` and ``campaign`` additionally accept the
durable-execution flags ``--checkpoint JOURNAL`` (crash-safe journaled
execution; SIGINT/SIGTERM checkpoint and exit 130 with the resume
command), ``--chaos FILE`` (a host-chaos plan), ``--cell-deadline S``
and ``--recovery-report FILE``.  Bad inputs (unknown application,
malformed campaign file, resuming across a code change) exit with
status 2 and a one-line ``error:`` message.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.apps import PAPER_APPS
from repro.core import (
    contention_overhead,
    ct_breakdown,
    parallel_loop_concurrency,
    render_partial_table,
    resilient_sweep,
    run_application,
    save_failure_report,
    user_breakdown,
)
from repro.core.experiments import (
    figure3,
    table1,
    table2,
    table3,
    table4,
)
from repro.hpm import save_trace, trace_summary
from repro.obs import (
    Observability,
    build_run_report,
    save_report,
)
from repro.sim import DeadlockSuspected, RunawaySimulation
from repro.xylem.categories import TimeCategory
from repro.xylem.params import XylemParams

__all__ = ["CLIError", "main"]


class CLIError(Exception):
    """Bad user input: the CLI prints one line and exits with status 2."""


def _app_builder(name: str):
    key = name.upper()
    if key not in PAPER_APPS:
        raise CLIError(f"unknown application {name!r}; pick from {list(PAPER_APPS)}")
    return PAPER_APPS[key]


def _os_params(args: argparse.Namespace) -> XylemParams:
    return XylemParams(seed=args.seed)


def _write_stats(results, path, registry=None) -> None:
    """Write the run report(s) for one result or a list of them."""
    if isinstance(results, list):
        save_report([build_run_report(r) for r in results], path)
        print(f"wrote {len(results)} run reports to {path}")
    else:
        save_report(build_run_report(results, registry), path)
        print(f"wrote run report to {path}")


def _parallel_requested(args: argparse.Namespace) -> bool:
    return getattr(args, "jobs", 1) != 1 or getattr(args, "cache_dir", None) is not None


def _telemetry_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "log", None)
        or getattr(args, "perfetto", None)
        or getattr(args, "progress", False)
    )


def _durable_options(args: argparse.Namespace):
    """``(checkpoint, chaos, policy)`` from the durable-execution flags.

    Loads the host-chaos plan and builds the
    :class:`~repro.parallel.durable.DurablePolicy` when the relevant
    flags are set; enforces that chaos and deadlines make sense only
    with a checkpoint journal (the crash-safe layer owns recovery).
    """
    checkpoint = getattr(args, "checkpoint", None)
    chaos_path = getattr(args, "chaos", None)
    deadline = getattr(args, "cell_deadline", None)
    chaos = None
    if chaos_path:
        if not checkpoint:
            raise CLIError("--chaos requires --checkpoint (journaled execution)")
        from repro.faults.host import HostChaosError, load_host_chaos

        try:
            chaos = load_host_chaos(chaos_path)
        except HostChaosError as exc:
            raise CLIError(str(exc)) from exc
    policy = None
    if deadline is not None:
        if not checkpoint:
            raise CLIError("--cell-deadline requires --checkpoint")
        from repro.parallel import DurablePolicy

        policy = DurablePolicy(cell_deadline_s=deadline)
    return checkpoint, chaos, policy


def _write_recovery_report(args: argparse.Namespace, outcome) -> None:
    """Write ``outcome.recovery`` when ``--recovery-report`` asked for it."""
    path = getattr(args, "recovery_report", None)
    if not path:
        return
    if outcome.recovery is None:
        print("no recovery report: the sweep did not run durably")
        return
    from repro.parallel import save_recovery_report

    save_recovery_report(outcome.recovery, path)
    print(f"wrote recovery report to {path}")


def _make_telemetry(args: argparse.Namespace, label: str):
    """A :class:`~repro.obs.campaign.CampaignTelemetry` per the flags."""
    from repro.obs.campaign import CampaignTelemetry

    return CampaignTelemetry(
        log_path=getattr(args, "log", None),
        progress=True if getattr(args, "progress", False) else None,
        label=label,
    )


def _finish_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Print the campaign summary; write the requested artifacts."""
    if telemetry is None:
        return
    from repro.obs.campaign import render_campaign_report, save_campaign_trace

    print(render_campaign_report(telemetry.report()))
    if getattr(args, "log", None):
        print(f"wrote campaign log to {args.log}")
    if getattr(args, "perfetto", None):
        save_campaign_trace(
            telemetry.spans, args.perfetto, t0=telemetry.header.get("t0")
        )
        print(f"wrote campaign trace to {args.perfetto}")


def _print_metric_block(registry, prefixes, title: str) -> None:
    """Print the scalar/histogram metrics under *prefixes*, if any."""
    names = [name for prefix in prefixes for name in registry.names(prefix)]
    if not names:
        return
    print(f"\n{title}:")
    for name in names:
        metric = registry.get(name)
        if metric is None:
            continue
        if metric.kind in ("counter", "gauge"):
            value = metric.value
            text = f"{value:.4g}" if isinstance(value, float) else str(value)
        elif metric.kind == "histogram":
            p95 = metric.quantile(0.95)
            text = (
                f"count {metric.count}  mean {metric.mean:.4g}"
                + (f"  p95 <= {p95:.4g}" if p95 is not None else "")
            )
        else:
            continue
        print(f"  {name:40s} {text}")


def _resolve_run_workload(args: argparse.Namespace):
    """``(compiled, builder, app_name, processors, scale, seed)`` for ``run``.

    The workload comes either from a named built-in application
    (positional ``APP`` or ``--app``) or from a scenario document
    (``--scenario``); processor count, scale and seed fall back to the
    scenario's ``defaults`` section when a scenario supplies them, and
    to the historical CLI defaults (0.02, 1994) otherwise.  Exactly one
    of *compiled* / *builder* is non-``None``.
    """
    if args.app is not None and args.app_opt is not None:
        raise CLIError("give the application positionally or via --app, not both")
    app = args.app if args.app is not None else args.app_opt
    if args.processors is not None and args.processors_opt is not None:
        raise CLIError("give the processor count positionally or via --p, not both")
    processors = (
        args.processors if args.processors is not None else args.processors_opt
    )
    if args.scenario is not None:
        if app is not None:
            raise CLIError("--scenario replaces the application; drop APP/--app")
        from repro.scenario import compile_scenario, load_scenario

        doc = load_scenario(args.scenario)
        compiled = compile_scenario(doc)
        return (
            compiled,
            None,
            doc.name,
            processors if processors is not None else doc.defaults.n_processors,
            args.scale if args.scale is not None else doc.defaults.scale,
            args.seed if args.seed is not None else doc.defaults.seed,
        )
    if app is None:
        raise CLIError("give an application (APP or --app) or --scenario FILE")
    if processors is None:
        raise CLIError("give a processor count (N_PROC or --p N)")
    builder = _app_builder(app)
    return (
        None,
        builder,
        app.upper(),
        processors,
        args.scale if args.scale is not None else 0.02,
        args.seed if args.seed is not None else 1994,
    )


def _cmd_run(args: argparse.Namespace) -> None:
    compiled, builder, app_name, processors, scale, seed = _resolve_run_workload(args)

    def run_serial(n_proc: int):
        if compiled is not None:
            return compiled.run(n_proc, scale, seed)
        return run_application(
            builder(), n_proc, scale=scale, os_params=XylemParams(seed=seed)
        )

    telemetry = None
    if _parallel_requested(args) or _telemetry_requested(args):
        from repro.parallel import CellSpec, ResultCache, execute_cells

        if _telemetry_requested(args):
            telemetry = _make_telemetry(args, label=f"run {app_name}")
        scenario_json = None
        if compiled is not None:
            from repro.scenario import canonical_scenario_json

            scenario_json = canonical_scenario_json(compiled.doc)
        spec = CellSpec(
            app=app_name,
            n_processors=processors,
            scale=scale,
            seed=seed,
            scenario=scenario_json,
        )
        specs = [spec]
        if processors > 1:
            specs.append(
                CellSpec(
                    app=app_name,
                    n_processors=1,
                    scale=scale,
                    seed=seed,
                    scenario=scenario_json,
                )
            )
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
        cells, failures = execute_cells(
            specs, jobs=args.jobs, cache=cache, telemetry=telemetry
        )
        if failures:
            failure = failures[0]
            print(
                f"error: {failure.app} P={failure.n_processors} failed after "
                f"{failure.attempts} attempt(s): {failure.error_type}: "
                f"{failure.message}",
                file=sys.stderr,
            )
            raise SystemExit(1)
        result = cells[specs[0]]
        base = cells[specs[1]] if processors > 1 else None
    else:
        result = run_serial(processors)
        base = None
    if args.stats:
        _write_stats(result, args.stats)
    print(f"{result.app_name} on {processors} processors (scale {scale})")
    print(f"completion time: {result.ct_seconds:.1f} s (extrapolated)")
    if result.fastpath_modes:
        modes = " ".join(f"{k}={v}" for k, v in sorted(result.fastpath_modes.items()))
        print(f"fast paths: {modes}")
    print("\ncompletion-time breakdown (main cluster):")
    breakdown = ct_breakdown(result, 0)
    for category in TimeCategory:
        print(f"  {category.value:10s} {breakdown[category] / result.ct_ns:7.2%}")
    print("\nuser-time breakdown (main task):")
    b = user_breakdown(result, 0)
    for name, ns in b.as_dict().items():
        print(f"  {name:14s} {b.fraction(ns):7.2%}")
    if processors > 1:
        if base is None:
            base = run_serial(1)
        row = contention_overhead(result, base)
        print(f"\ncontention overhead: {row.ov_cont_pct:.1f} % of CT")
        for task in range(result.config.n_clusters):
            name = "Main" if task == 0 else f"helper{task}"
            print(f"  par_concurr {name}: {parallel_loop_concurrency(result, task):.2f}")
    _finish_telemetry(args, telemetry)


def _report_failures(outcome) -> None:
    """Print the partial table and failure lines; exit with status 1."""
    print(render_partial_table(outcome))
    print()
    for failure in outcome.failures:
        print(
            f"FAILED {failure.app} P={failure.n_processors} after "
            f"{failure.attempts} attempt(s): {failure.error_type}: {failure.message}"
        )
    raise SystemExit(1)


def _cmd_sweep(args: argparse.Namespace) -> None:
    _app_builder(args.app)  # validate
    app = args.app.upper()
    checkpoint, chaos, policy = _durable_options(args)
    telemetry = (
        _make_telemetry(args, label=f"sweep {app}")
        if _telemetry_requested(args)
        else None
    )
    outcome = resilient_sweep(
        [app],
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        telemetry=telemetry,
        checkpoint=checkpoint,
        chaos=chaos,
        durable_policy=policy,
    )
    results = outcome.results[app]
    if outcome.ok:
        wrapped = {app: results}
        for build in (table1, table3, table4):
            _, text = build(wrapped)
            print(text)
            print()
    if args.stats:
        _write_stats([results[n] for n in sorted(results)], args.stats)
    _finish_telemetry(args, telemetry)
    _write_recovery_report(args, outcome)
    if not outcome.ok:
        _report_failures(outcome)


def _cmd_tables(args: argparse.Namespace) -> None:
    from repro.core import reference

    checkpoint, chaos, policy = _durable_options(args)
    telemetry = (
        _make_telemetry(args, label="tables")
        if _telemetry_requested(args)
        else None
    )
    outcome = resilient_sweep(
        reference.APPS,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        telemetry=telemetry,
        checkpoint=checkpoint,
        chaos=chaos,
        durable_policy=policy,
    )
    sweep = outcome.results
    if outcome.ok:
        sweep32 = {app: by_config[32] for app, by_config in sweep.items()}
        for build, payload in (
            (table1, sweep),
            (table2, {a: sweep32[a] for a in ("FLO52", "ARC2D", "MDG")}),
            (table3, sweep),
            (table4, sweep),
            (figure3, sweep),
        ):
            _, text = build(payload)
            print(text)
            print()
    if args.stats:
        reports = [
            sweep[app][n] for app in sorted(sweep) for n in sorted(sweep[app])
        ]
        _write_stats(reports, args.stats)
    _finish_telemetry(args, telemetry)
    _write_recovery_report(args, outcome)
    if not outcome.ok:
        _report_failures(outcome)


def _cmd_resume(args: argparse.Namespace) -> None:
    from repro.parallel import resume_sweep

    telemetry = (
        _make_telemetry(args, label=f"resume {Path(args.journal).name}")
        if _telemetry_requested(args)
        else None
    )
    outcome = resume_sweep(
        args.journal,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        telemetry=telemetry,
    )
    print(render_partial_table(outcome))
    recovery = outcome.recovery or {}
    cells = recovery.get("cells", {})
    print(
        f"\nresumed {cells.get('resumed_from_journal', 0)} of "
        f"{cells.get('total', 0)} cell(s) from the journal; "
        f"{cells.get('completed', 0)} completed"
    )
    _finish_telemetry(args, telemetry)
    _write_recovery_report(args, outcome)
    if not outcome.ok:
        _report_failures(outcome)


def _cmd_trace(args: argparse.Namespace) -> None:
    import dataclasses

    builder = _app_builder(args.app)
    result = run_application(
        builder(), args.processors, scale=args.scale, os_params=_os_params(args)
    )
    header = {
        "app": result.app_name,
        "n_processors": result.config.n_processors,
        "scale": result.scale,
        "seed": result.kernel.params.seed,
        "ct_ns": result.ct_ns,
        "config": dataclasses.asdict(result.config),
    }
    count = save_trace(result.events, args.output, header=header)
    summary = trace_summary(result.events)
    print(f"wrote {count} events to {args.output}")
    print(f"span: {summary['span_ns'] / 1e6:.1f} ms simulated")
    for name, value in sorted(summary["by_type"].items()):
        print(f"  {name:20s} {value}")


def _cmd_stats(args: argparse.Namespace) -> None:
    builder = _app_builder(args.app)
    registry = None
    if _parallel_requested(args) or _telemetry_requested(args):
        # Through the pool + cache: the run report is built from the
        # campaign registry, so ``parallel.*`` / ``cache.*`` counters
        # (hits, misses, corruption-as-miss, utilization) and the
        # ``campaign.*``-merged worker metrics are part of the output.
        from repro.parallel import CellSpec, ResultCache, execute_cells

        telemetry = _make_telemetry(args, label=f"stats {args.app.upper()}")
        spec = CellSpec(
            app=args.app.upper(),
            n_processors=args.processors,
            scale=args.scale,
            seed=args.seed,
        )
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
        cells, failures = execute_cells(
            [spec], jobs=args.jobs, cache=cache, telemetry=telemetry
        )
        if failures:
            failure = failures[0]
            print(
                f"error: {failure.app} P={failure.n_processors} failed after "
                f"{failure.attempts} attempt(s): {failure.error_type}: "
                f"{failure.message}",
                file=sys.stderr,
            )
            raise SystemExit(1)
        result = cells[spec]
        registry = telemetry.registry
    else:
        telemetry = None
        obs = Observability()
        result = run_application(
            builder(),
            args.processors,
            scale=args.scale,
            obs=obs,
            os_params=_os_params(args),
        )
        registry = obs.registry
    report = build_run_report(result, registry)
    save_report(report, args.output)
    print(f"wrote run report to {args.output}")
    print(
        f"{result.app_name} on {args.processors} processors: "
        f"CT {result.ct_seconds:.1f} s extrapolated, "
        f"{result.wall_s:.2f} s host wall time, "
        f"{len(report['metrics'])} metrics"
    )
    _print_metric_block(
        registry, ("parallel", "cache"), "parallel execution counters"
    )
    _finish_telemetry(args, telemetry)


def _cmd_profile(args: argparse.Namespace) -> None:
    builder = _app_builder(args.app)
    obs = Observability(profile=True)
    result = run_application(
        builder(), args.processors, scale=args.scale, obs=obs, os_params=_os_params(args)
    )
    print(
        f"{result.app_name} on {args.processors} processors: "
        f"{result.wall_s:.2f} s host wall time, "
        f"{result.ct_ns / 1e6:.1f} ms simulated"
    )
    print(obs.profiler.report(args.top))


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.obs.campaign import (
        build_campaign_report,
        load_campaign_log,
        render_campaign_report,
        save_campaign_report,
        save_campaign_trace,
        spans_from_log,
    )

    try:
        header, events = load_campaign_log(args.log)
    except (OSError, ValueError) as exc:
        raise CLIError(str(exc)) from exc
    report = build_campaign_report(header, events)
    print(render_campaign_report(report))
    if args.json:
        save_campaign_report(report, args.json)
        print(f"wrote campaign report to {args.json}")
    if args.perfetto:
        save_campaign_trace(
            spans_from_log(events), args.perfetto, t0=header.get("t0")
        )
        print(f"wrote campaign trace to {args.perfetto}")


def _cmd_lint(args: argparse.Namespace) -> None:
    from repro.analyze import (
        LintConfig,
        lint_paths,
        render_json,
        render_suppression_stats,
        render_text,
    )

    select = (
        frozenset(code.strip().upper() for code in args.select.split(","))
        if args.select
        else None
    )
    config = LintConfig(select=select)
    try:
        result = lint_paths([Path(p) for p in args.paths], config=config)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from None
    if args.format == "json":
        # The JSON document always embeds the suppression stats.
        print(render_json(result))
    else:
        print(render_text(result))
        if args.stats:
            print(render_suppression_stats(result))
    if not result.ok:
        raise SystemExit(1)


def _cmd_race(args: argparse.Namespace) -> None:
    from repro.analyze import plant_order_hazard, race_app

    seeds = tuple(range(1, args.perturbations + 1))
    hook = plant_order_hazard() if args.self_test else None
    try:
        report = race_app(
            args.app,
            args.processors,
            scale=args.scale,
            seeds=seeds,
            os_seed=args.seed,
            pre_run_hook=hook,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    print(report.format())
    if args.self_test:
        if report.hazard_free:
            print("self-test FAILED: the planted hazard went undetected")
            raise SystemExit(1)
        print("self-test passed: the planted hazard was detected")
        return
    if not report.hazard_free:
        raise SystemExit(1)


def _cmd_sanitize(args: argparse.Namespace) -> None:
    from repro.analyze import sanitize_app

    try:
        report = sanitize_app(
            args.app,
            args.processors,
            scale=args.scale,
            seed=args.seed,
            runs=args.runs,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    print(report.format())
    if not report.deterministic:
        raise SystemExit(1)


def _cmd_inject(args: argparse.Namespace) -> None:
    from repro.faults import CampaignError, load_campaign, run_with_campaign

    _app_builder(args.app)  # validate before the expensive run
    try:
        spec = load_campaign(args.campaign)
    except CampaignError as exc:
        raise CLIError(str(exc)) from exc
    obs = Observability()
    try:
        outcome = run_with_campaign(
            spec,
            args.app.upper(),
            args.processors,
            scale=args.scale,
            seed=args.seed,
            obs=obs,
            max_events=args.max_events,
            max_sim_time=args.max_sim_time,
        )
    except (RunawaySimulation, DeadlockSuspected) as exc:
        # A tripped watchdog is a *finding* about the campaign, not an
        # operator error: report it cleanly and exit 1 (not 2).
        print(f"aborted: {type(exc).__name__}: {exc}", file=sys.stderr)
        raise SystemExit(1) from exc
    result = outcome.result
    ledger = outcome.ledger
    print(
        f"{result.app_name} on {args.processors} processors under campaign "
        f"{spec.name!r} (seed {args.seed})"
    )
    print(f"completion time: {result.ct_seconds:.1f} s (extrapolated)")
    print(
        f"faults: {ledger.injected} injected, {ledger.reverted} reverted, "
        f"{ledger.skipped} skipped"
    )
    for record in ledger.records:
        when = f"t={record.applied_ns}ns" if record.applied_ns >= 0 else "not applied"
        print(f"  {record.kind:16s} {when:>16s}  {record.note}")
    print("\ncompletion-time breakdown (main cluster):")
    breakdown = ct_breakdown(result, 0)
    for category in TimeCategory:
        print(f"  {category.value:10s} {breakdown[category] / result.ct_ns:7.2%}")
    print("\nfaults.* metrics:")
    for name in obs.registry.names("faults"):
        print(f"  {name:40s} {obs.registry.value(name)}")
    if args.stats:
        _write_stats(result, args.stats, registry=obs.registry)


def _cmd_campaign(args: argparse.Namespace) -> None:
    from repro.faults import (
        CampaignError,
        generate_campaign,
        load_campaign,
        run_with_campaign,
        save_campaign,
    )

    if args.generate:
        seed = args.seed if args.seed is not None else 1994
        try:
            spec = generate_campaign(seed=seed, n_faults=args.faults)
        except CampaignError as exc:
            raise CLIError(str(exc)) from exc
        save_campaign(spec, args.file)
        print(f"wrote campaign {spec.name!r} ({len(spec.faults)} faults) to {args.file}")
        return
    try:
        spec = load_campaign(args.file)
    except CampaignError as exc:
        raise CLIError(str(exc)) from exc
    seed = args.seed if args.seed is not None else spec.seed
    apps = spec.apps or ("FLO52",)
    configs = spec.configs or (4,)
    for app in apps:
        _app_builder(app)

    checkpoint, chaos, policy = _durable_options(args)
    telemetry = (
        _make_telemetry(args, label=f"campaign {spec.name}")
        if _telemetry_requested(args)
        else None
    )
    if _parallel_requested(args) or telemetry is not None or checkpoint is not None:
        outcome = resilient_sweep(
            apps,
            configs=configs,
            scale=args.scale,
            seed=seed,
            campaign=spec,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            telemetry=telemetry,
            checkpoint=checkpoint,
            chaos=chaos,
            durable_policy=policy,
        )
    else:

        def run_cell(app: str, n_proc: int):
            return run_with_campaign(
                spec, app, n_proc, scale=args.scale, seed=seed
            ).result

        outcome = resilient_sweep(
            apps, configs=configs, scale=args.scale, seed=seed, run_cell=run_cell
        )
    print(f"campaign {spec.name!r}: {len(spec.faults)} faults, seed {seed}")
    print(render_partial_table(outcome))
    _finish_telemetry(args, telemetry)
    _write_recovery_report(args, outcome)
    if args.report:
        save_failure_report(outcome, args.report)
        print(f"wrote failure report to {args.report}")
    if not outcome.ok:
        for failure in outcome.failures:
            print(
                f"FAILED {failure.app} P={failure.n_processors}: "
                f"{failure.error_type}: {failure.message}"
            )
        raise SystemExit(1)


def _cmd_scenario_validate(args: argparse.Namespace) -> None:
    from repro.scenario import ScenarioError, compile_scenario, load_scenario

    invalid = 0
    for path in args.files:
        try:
            doc = load_scenario(path)
            compiled = compile_scenario(doc)
        except ScenarioError as exc:
            invalid += 1
            print(f"{path}: INVALID: {exc}")
            continue
        print(
            f"{path}: ok -- {doc.name} [{compiled.digest[:12]}] "
            f"{doc.n_steps} step(s) x {len(doc.loops)} loop(s), "
            f"defaults P={doc.defaults.n_processors} "
            f"scale={doc.defaults.scale} seed={doc.defaults.seed}"
        )
    if invalid:
        print(f"{invalid} of {len(args.files)} scenario(s) invalid")
        raise SystemExit(1)


def _cmd_scenario_export(args: argparse.Namespace) -> None:
    from repro.scenario import export_app, save_scenario, write_examples

    if args.all:
        directory = args.output if args.output else "examples/scenarios"
        for path in write_examples(directory):
            print(f"wrote {path}")
        return
    doc = export_app(args.export_app)
    path = Path(args.output) if args.output else Path(f"{doc.name.lower()}.json")
    save_scenario(doc, path)
    print(f"wrote {doc.name} scenario to {path}")


def _cmd_scenario_generate(args: argparse.Namespace) -> None:
    from repro.scenario import generate_scenarios, save_scenario

    if args.n < 1:
        raise CLIError(f"-n must be >= 1, got {args.n}")
    directory = Path(args.output)
    directory.mkdir(parents=True, exist_ok=True)
    for doc in generate_scenarios(args.seed, args.n):
        save_scenario(doc, directory / f"{doc.name}.json")
    print(f"wrote {args.n} scenario(s) (seed {args.seed}) to {directory}")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ISCA'94 Cedar overhead characterization, in simulation",
    )
    def add_no_fastpath(target, *, trailing: bool) -> None:
        target.add_argument(
            "--no-fastpath",
            action="store_true",
            # Trailing registrations must not clobber a value the main
            # parser already parsed (the subparser's default would win
            # otherwise -- the classic argparse parent/child pitfall).
            default=argparse.SUPPRESS if trailing else False,
            help="route every layer through its exact path (sets "
            "CEDAR_REPRO_FASTPATH=off for this invocation; results are "
            "bit-identical either way, see docs/benchmarking.md)"
            if not trailing
            else argparse.SUPPRESS,
        )

    add_no_fastpath(parser, trailing=False)
    sub = parser.add_subparsers(dest="command", required=True)

    # Accept the switch in either position: ``repro --no-fastpath run
    # ...`` and ``repro run ... --no-fastpath`` both work.
    _add_parser = sub.add_parser

    def add_parser(*args_, **kwargs):  # type: ignore[no-untyped-def]
        command = _add_parser(*args_, **kwargs)
        add_no_fastpath(command, trailing=True)
        return command

    sub.add_parser = add_parser  # type: ignore[method-assign]

    def add_parallel_flags(command) -> None:
        command.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for the sweep cells (1 = in-process)",
        )
        command.add_argument(
            "--cache-dir",
            metavar="DIR",
            default=None,
            help="content-addressed result cache; warm reruns skip simulation",
        )
        command.add_argument(
            "--log",
            metavar="FILE",
            default=None,
            help="write a campaign event log (JSONL; feed to `report`)",
        )
        command.add_argument(
            "--progress",
            action="store_true",
            help="force the live progress line (default: only on a TTY)",
        )
        command.add_argument(
            "--perfetto",
            metavar="FILE",
            default=None,
            help="write a campaign-wide Chrome/Perfetto trace",
        )

    def add_durable_flags(command) -> None:
        command.add_argument(
            "--checkpoint",
            metavar="JOURNAL",
            default=None,
            help="write-ahead journal: crash-safe execution, resumable "
            "with `resume JOURNAL` (docs/resilience.md)",
        )
        command.add_argument(
            "--chaos",
            metavar="FILE",
            default=None,
            help="host-chaos plan JSON: kill/hang/straggle workers "
            "(requires --checkpoint)",
        )
        command.add_argument(
            "--cell-deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall budget per cell attempt; over-deadline cells are "
            "killed and retried (requires --checkpoint)",
        )
        command.add_argument(
            "--recovery-report",
            metavar="FILE",
            default=None,
            help="write the cedar-repro/recovery-report/v1 JSON",
        )

    run = sub.add_parser(
        "run", help="run one application or scenario on one configuration"
    )
    run.add_argument("app", nargs="?", default=None, metavar="APP")
    run.add_argument(
        "processors",
        nargs="?",
        type=int,
        choices=(1, 4, 8, 16, 32),
        default=None,
        metavar="N_PROC",
    )
    run.add_argument(
        "--app",
        dest="app_opt",
        default=None,
        metavar="APP",
        help="application by name (same as the positional)",
    )
    run.add_argument(
        "--p",
        "--processors",
        dest="processors_opt",
        type=int,
        choices=(1, 4, 8, 16, 32),
        default=None,
        metavar="N",
        help="processor count (same as the positional)",
    )
    run.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="run a scenario document (docs/scenarios.md) instead of a "
        "named app; P/scale/seed default to the scenario's own defaults",
    )
    run.add_argument(
        "--scale", type=float, default=None, help="problem scale (default 0.02)"
    )
    run.add_argument(
        "--seed", type=int, default=None, help="OS jitter seed (default 1994)"
    )
    run.add_argument("--stats", metavar="FILE", help="also write the JSON run report")
    add_parallel_flags(run)
    run.set_defaults(func=_cmd_run)

    scenario = sub.add_parser(
        "scenario", help="validate, export or generate scenario documents"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    validate = scenario_sub.add_parser(
        "validate", help="parse + compile scenario files; one verdict line each"
    )
    validate.add_argument("files", nargs="+", metavar="FILE")
    validate.set_defaults(func=_cmd_scenario_validate)
    export = scenario_sub.add_parser(
        "export", help="write built-in application models as scenario files"
    )
    export_which = export.add_mutually_exclusive_group(required=True)
    export_which.add_argument(
        "--app", dest="export_app", metavar="NAME", help="one application"
    )
    export_which.add_argument(
        "--all",
        action="store_true",
        help="all five apps plus the synthetic examples",
    )
    export.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="output file for --app (default NAME.json) or directory for "
        "--all (default examples/scenarios)",
    )
    export.set_defaults(func=_cmd_scenario_export)
    generate = scenario_sub.add_parser(
        "generate", help="write seeded fuzz scenarios (docs/scenarios.md)"
    )
    generate.add_argument("-o", "--output", required=True, metavar="DIR")
    generate.add_argument("--seed", type=int, default=1994)
    generate.add_argument(
        "-n", "--count", dest="n", type=int, default=10, help="how many to write"
    )
    generate.set_defaults(func=_cmd_scenario_generate)

    sweep = sub.add_parser("sweep", help="run one application on all configurations")
    sweep.add_argument("app")
    sweep.add_argument("--scale", type=float, default=0.02)
    sweep.add_argument("--seed", type=int, default=1994, help="OS jitter seed")
    sweep.add_argument(
        "--stats", metavar="FILE", help="also write the JSON run reports"
    )
    add_parallel_flags(sweep)
    add_durable_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    tables = sub.add_parser("tables", help="regenerate Tables 1-4 and Figure 3")
    tables.add_argument("--scale", type=float, default=0.02)
    tables.add_argument("--seed", type=int, default=1994, help="OS jitter seed")
    tables.add_argument(
        "--stats", metavar="FILE", help="also write the JSON run reports"
    )
    add_parallel_flags(tables)
    add_durable_flags(tables)
    tables.set_defaults(func=_cmd_tables)

    resume = sub.add_parser(
        "resume", help="resume an interrupted campaign from its journal"
    )
    resume.add_argument("journal", help="write-ahead journal (from --checkpoint)")
    add_parallel_flags(resume)
    resume.add_argument(
        "--recovery-report",
        metavar="FILE",
        default=None,
        help="write the cedar-repro/recovery-report/v1 JSON",
    )
    resume.set_defaults(func=_cmd_resume)

    trace = sub.add_parser("trace", help="off-load a run's event trace to a file")
    trace.add_argument("app")
    trace.add_argument("processors", type=int, choices=(1, 4, 8, 16, 32))
    trace.add_argument("-o", "--output", default="trace.jsonl")
    trace.add_argument("--scale", type=float, default=0.02)
    trace.add_argument("--seed", type=int, default=1994, help="OS jitter seed")
    trace.set_defaults(func=_cmd_trace)

    stats = sub.add_parser("stats", help="run and write the JSON run report")
    stats.add_argument("app")
    stats.add_argument("processors", type=int, choices=(1, 4, 8, 16, 32))
    stats.add_argument("-o", "--output", default="stats.json")
    stats.add_argument("--scale", type=float, default=0.02)
    stats.add_argument("--seed", type=int, default=1994, help="OS jitter seed")
    add_parallel_flags(stats)
    stats.set_defaults(func=_cmd_stats)

    report = sub.add_parser(
        "report", help="distil a campaign event log into the SLO report"
    )
    report.add_argument("log", help="campaign log JSONL (written via --log)")
    report.add_argument(
        "--json", metavar="FILE", help="also write the CampaignReport JSON"
    )
    report.add_argument(
        "--perfetto", metavar="FILE", help="also write the campaign Chrome trace"
    )
    report.set_defaults(func=_cmd_report)

    profile = sub.add_parser(
        "profile", help="run with the kernel profiler and print hot processes"
    )
    profile.add_argument("app")
    profile.add_argument("processors", type=int, choices=(1, 4, 8, 16, 32))
    profile.add_argument("-k", "--top", type=int, default=10)
    profile.add_argument("--scale", type=float, default=0.02)
    profile.add_argument("--seed", type=int, default=1994, help="OS jitter seed")
    profile.set_defaults(func=_cmd_profile)

    inject = sub.add_parser(
        "inject", help="run one application under a fault campaign"
    )
    inject.add_argument("app")
    inject.add_argument("processors", type=int, choices=(1, 4, 8, 16, 32))
    inject.add_argument(
        "--campaign", metavar="FILE", required=True, help="campaign JSON file"
    )
    inject.add_argument("--scale", type=float, default=0.02)
    inject.add_argument("--seed", type=int, default=1994, help="OS jitter seed")
    inject.add_argument(
        "--max-events", type=int, default=None, help="runaway watchdog: event budget"
    )
    inject.add_argument(
        "--max-sim-time", type=int, default=None, help="runaway watchdog: sim-time cap (ns)"
    )
    inject.add_argument("--stats", metavar="FILE", help="also write the JSON run report")
    inject.set_defaults(func=_cmd_inject)

    campaign = sub.add_parser(
        "campaign",
        help="run a fault campaign over its app/config grid (or --generate one)",
    )
    campaign.add_argument("file", help="campaign JSON file to run (or write)")
    campaign.add_argument(
        "--generate", action="store_true", help="generate a random campaign instead"
    )
    campaign.add_argument(
        "--seed",
        type=int,
        default=None,
        help="OS jitter seed (defaults to the campaign's own seed)",
    )
    campaign.add_argument(
        "--faults", type=int, default=4, help="fault count for --generate"
    )
    campaign.add_argument("--scale", type=float, default=0.02)
    campaign.add_argument(
        "--report", metavar="FILE", help="also write the JSON failure report"
    )
    add_parallel_flags(campaign)
    add_durable_flags(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    lint = sub.add_parser(
        "lint", help="statically check the determinism invariants (CDR rules)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to run"
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help="append the suppression audit (noqa directives per rule per file)",
    )
    lint.set_defaults(func=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="run a workload twice under one seed and diff the schedule hashes",
    )
    sanitize.add_argument("--app", default="synthetic")
    sanitize.add_argument(
        "--p", "--processors", dest="processors", type=int, default=8
    )
    sanitize.add_argument("--scale", type=float, default=0.02)
    sanitize.add_argument("--seed", type=int, default=1994)
    sanitize.add_argument("--runs", type=int, default=2)
    sanitize.set_defaults(func=_cmd_sanitize)

    race = sub.add_parser(
        "race",
        help="perturb same-instant event order and assert identical results",
    )
    race.add_argument("--app", default="synthetic")
    race.add_argument("--p", "--processors", dest="processors", type=int, default=8)
    race.add_argument("--scale", type=float, default=0.02)
    race.add_argument("--seed", type=int, default=1994, help="OS model seed")
    race.add_argument(
        "--perturbations",
        "-k",
        type=int,
        default=5,
        metavar="K",
        help="number of seeded tie-break permutations to compare",
    )
    race.add_argument(
        "--self-test",
        action="store_true",
        help="plant a deliberate order-dependence hazard and require detection",
    )
    race.set_defaults(func=_cmd_race)
    return parser


def main(argv: list[str] | None = None) -> None:
    """CLI entry point.

    Bad inputs raise :class:`CLIError` inside the command handlers and
    are reported uniformly: one ``error:`` line on stderr, exit 2.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_fastpath", False):
        # One switch kills every fast path -- the policy module and the
        # per-layer engines all consult this variable.
        os.environ["CEDAR_REPRO_FASTPATH"] = "off"
    from repro.parallel.durable import CampaignInterrupted
    from repro.parallel.journal import JournalError
    from repro.scenario import ScenarioError

    try:
        args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    except ScenarioError as exc:
        # A malformed scenario document is bad input like any other:
        # the message already carries the precise document path.
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    except JournalError as exc:
        # Covers JournalMismatchError: resume across a code change is
        # refused, like any other bad input.
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    except CampaignInterrupted as exc:
        # The conventional 128+SIGINT exit; the message carries the
        # exact resume command.
        print(f"interrupted: {exc}", file=sys.stderr)
        raise SystemExit(130) from exc


if __name__ == "__main__":
    main(sys.argv[1:])
