"""Workload models of the five Perfect Benchmark applications.

FLO52, ARC2D, MDG, OCEAN and ADM as characterized in the paper, plus a
synthetic workload generator.  Each model is calibrated against the
paper's 1-processor measurements; multi-processor behaviour emerges
from the simulated machine, OS and runtime mechanisms.
"""

from repro.apps.adm import adm
from repro.apps.arc2d import arc2d
from repro.apps.base import AppModel, LoopShape, PageSpace, loop_timing
from repro.apps.flo52 import flo52
from repro.apps.mdg import mdg
from repro.apps.ocean import ocean
from repro.apps.synthetic import synthetic_app

#: Builders of the five paper applications, in the paper's order.
PAPER_APPS = {
    "FLO52": flo52,
    "ARC2D": arc2d,
    "MDG": mdg,
    "OCEAN": ocean,
    "ADM": adm,
}

__all__ = [
    "AppModel",
    "LoopShape",
    "PAPER_APPS",
    "PageSpace",
    "adm",
    "arc2d",
    "flo52",
    "loop_timing",
    "mdg",
    "ocean",
    "synthetic_app",
]
