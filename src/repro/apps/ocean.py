"""Workload model of OCEAN (2-D ocean basin simulation).

OCEAN speeds up nearly linearly to 8 processors, then falls off
(11.85 at 16, 15.58 at 32) because the *available* concurrency of its
loops shrinks relative to the machine: the paper's Table 3 shows its
per-cluster parallel-loop concurrency dropping from ~7.5 on two
clusters to ~5.6 on four.  The model encodes this with flat loops whose
trip counts (around 50) are comfortable for 16 CEs but starve 32.
Contention stays the lowest of the five codes at 32 processors (7.4 %).
Calibrated to T1 = 2647 s.
"""

from __future__ import annotations

from repro.apps.base import AppModel, LoopShape
from repro.runtime.loops import LoopConstruct

__all__ = ["ocean"]


def ocean() -> AppModel:
    """Build the OCEAN model (full scale: 98 time steps)."""
    loops = [
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=12,
            n_inner=16,
            iter_time_ns=37_500_000,
            mem_fraction=0.17,
            mem_rate=0.45,
            work_skew=0.3,
            label="stream-function",
        ),
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=12,
            n_inner=16,
            iter_time_ns=37_500_000,
            mem_fraction=0.17,
            mem_rate=0.45,
            work_skew=0.3,
            iters_per_page=64,
            fresh_pages_each_step=True,
            label="vorticity",
        ),
        # Flat FFT-style loops with limited trip counts: 56 and 48
        # iterations feed 16 processors well but leave 32 underfed.
        LoopShape(
            construct=LoopConstruct.XDOALL,
            n_outer=1,
            n_inner=40,
            iter_time_ns=150_000_000,
            mem_fraction=0.17,
            mem_rate=0.45,
            work_skew=0.7,
            label="fft-rows",
        ),
        LoopShape(
            construct=LoopConstruct.XDOALL,
            n_outer=1,
            n_inner=44,
            iter_time_ns=150_000_000,
            mem_fraction=0.17,
            mem_rate=0.45,
            work_skew=0.7,
            label="fft-columns",
        ),
        LoopShape(
            construct=LoopConstruct.CLUSTER_ONLY,
            n_outer=1,
            n_inner=16,
            iter_time_ns=8_000_000,
            mem_fraction=0.17,
            mem_rate=0.45,
            label="boundary-update",
        ),
    ]
    return AppModel(
        name="OCEAN",
        n_steps=98,
        serial_per_step_ns=130_000_000,
        loops_per_step=loops,
        serial_pages_per_step=2,
        serial_syscalls_per_step=1,
        init_serial_ns=1_200_000_000,
        init_pages=10,
        serial_mem_fraction=0.2,
    )
