"""Synthetic workload generator.

Builds parameterised loop-parallel applications for experiments that
sweep a single property -- loop granularity, memory intensity,
construct choice, trip-count balance -- the way the paper's discussion
sections reason about them.  Used by the ablation benchmarks and the
``examples/custom_workload.py`` example.
"""

from __future__ import annotations

from repro.apps.base import AppModel, LoopShape
from repro.runtime.loops import LoopConstruct

__all__ = ["synthetic_app"]


def synthetic_app(
    name: str = "SYNTH",
    construct: LoopConstruct = LoopConstruct.SDOALL,
    n_steps: int = 10,
    loops_per_step: int = 4,
    n_outer: int = 8,
    n_inner: int = 64,
    iter_time_ns: int = 5_000_000,
    mem_fraction: float = 0.3,
    mem_rate: float = 0.5,
    serial_fraction_of_step: float = 0.05,
    pages: bool = False,
) -> AppModel:
    """Build a single-knob synthetic application.

    Parameters mirror :class:`repro.apps.base.LoopShape`;
    ``serial_fraction_of_step`` sets serial time as a fraction of the
    step's single-CE parallel time.
    """
    if construct is LoopConstruct.XDOALL:
        outer, inner = 1, n_outer * n_inner
    else:
        outer, inner = n_outer, n_inner
    shape = LoopShape(
        construct=construct,
        n_outer=outer,
        n_inner=inner,
        iter_time_ns=iter_time_ns,
        mem_fraction=mem_fraction,
        mem_rate=mem_rate,
        iters_per_page=32 if pages else 0,
        fresh_pages_each_step=pages,
        label="synthetic",
    )
    parallel_per_step = loops_per_step * shape.total_single_ce_ns
    serial_per_step = int(parallel_per_step * serial_fraction_of_step)
    return AppModel(
        name=name,
        n_steps=n_steps,
        serial_per_step_ns=serial_per_step,
        loops_per_step=[shape] * loops_per_step,
        serial_syscalls_per_step=1,
    )
