"""Workload model of ARC2D (implicit finite-difference fluid dynamics).

ARC2D uses both the hierarchical SDOALL/CDOALL construct and the flat
XDOALL construct.  Its measured profile in the paper: good but
sub-linear speedup (15.06 at 32 processors, concurrency 20.56),
moderate contention growing from 3.4 % to 14.1 % of completion time,
and noticeable xdoall distribution overhead from its finer-grained flat
loops.  Calibrated to T1 = 2067 s of single-CE parallel-loop time.
"""

from __future__ import annotations

from repro.apps.base import AppModel, LoopShape
from repro.runtime.loops import LoopConstruct

__all__ = ["arc2d"]


def arc2d() -> AppModel:
    """Build the ARC2D model (full scale: 100 time steps)."""
    loops = [
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=8,
            n_inner=30,
            iter_time_ns=22_000_000,
            mem_fraction=0.30,
            mem_rate=0.45,
            work_skew=0.25,
            label="x-sweep",
        ),
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=9,
            n_inner=24,
            iter_time_ns=22_000_000,
            mem_fraction=0.30,
            mem_rate=0.45,
            work_skew=0.25,
            iters_per_page=24,
            fresh_pages_each_step=True,
            label="y-sweep",
        ),
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=8,
            n_inner=36,
            iter_time_ns=22_000_000,
            mem_fraction=0.30,
            mem_rate=0.45,
            work_skew=0.25,
            label="rhs-assembly",
        ),
        # The flat loops are finer grained: picking iterations by
        # test&set in global memory is where the xdoall distribution
        # overhead comes from.
        LoopShape(
            construct=LoopConstruct.XDOALL,
            n_outer=1,
            n_inner=1536,
            iter_time_ns=1_300_000,
            mem_fraction=0.30,
            mem_rate=0.45,
            label="pentadiagonal",
        ),
        LoopShape(
            construct=LoopConstruct.XDOALL,
            n_outer=1,
            n_inner=1536,
            iter_time_ns=1_300_000,
            mem_fraction=0.30,
            mem_rate=0.45,
            iters_per_page=384,
            fresh_pages_each_step=True,
            label="update",
        ),
        LoopShape(
            construct=LoopConstruct.CLUSTER_ONLY,
            n_outer=1,
            n_inner=24,
            iter_time_ns=8_000_000,
            mem_fraction=0.30,
            mem_rate=0.45,
            label="boundary",
        ),
    ]
    return AppModel(
        name="ARC2D",
        n_steps=100,
        serial_per_step_ns=190_000_000,
        loops_per_step=loops,
        serial_pages_per_step=4,
        serial_syscalls_per_step=2,
        init_serial_ns=1_500_000_000,
        init_pages=12,
        serial_mem_fraction=0.2,
    )
