"""Workload model of FLO52 (transonic flow past an airfoil).

FLO52 is the Perfect Benchmark that exercises *only* the hierarchical
SDOALL/CDOALL construct (Section 2).  Its distinguishing measured
behaviour in the paper:

* the worst global-memory/network contention of the five codes
  (17-27 % of completion time, Table 4) -- its loops are memory-heavy
  vector sweeps;
* poor speedup (8.40 at 32 processors) and low concurrency (14.82),
  driven by small loop trip counts;
* large multi-cluster barrier wait times (7-16 % of CT on 4 clusters),
  driven by outer trip counts that do not divide evenly among clusters.

The model encodes exactly those structural properties: four SDOALL
loops per time step with small, unevenly-dividing trip counts and a
high memory fraction, calibrated so the single-CE parallel-loop time
matches the paper's T1 = 574 s (Table 4).
"""

from __future__ import annotations

from repro.apps.base import AppModel, LoopShape
from repro.runtime.loops import LoopConstruct

__all__ = ["flo52"]


def flo52() -> AppModel:
    """Build the FLO52 model (full scale: 100 time steps)."""
    loops = [
        # Small trip counts: 5 outer iterations over 4 clusters and 14
        # inner iterations over 8 CEs guarantee imbalance.
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=5,
            n_inner=14,
            iter_time_ns=11_900_000,
            mem_fraction=0.55,
            mem_rate=0.60,
            work_skew=0.5,
            label="flux-sweep",
        ),
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=7,
            n_inner=10,
            iter_time_ns=11_900_000,
            mem_fraction=0.55,
            mem_rate=0.60,
            work_skew=0.5,
            label="dissipation",
        ),
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=6,
            n_inner=18,
            iter_time_ns=11_900_000,
            mem_fraction=0.55,
            mem_rate=0.60,
            work_skew=0.5,
            iters_per_page=32,
            fresh_pages_each_step=True,
            label="runge-kutta",
        ),
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=9,
            n_inner=26,
            iter_time_ns=11_900_000,
            mem_fraction=0.55,
            mem_rate=0.60,
            work_skew=0.5,
            iters_per_page=32,
            fresh_pages_each_step=True,
            label="multigrid",
        ),
    ]
    return AppModel(
        name="FLO52",
        n_steps=100,
        serial_per_step_ns=200_000_000,
        loops_per_step=loops,
        serial_pages_per_step=2,
        serial_syscalls_per_step=1,
        init_serial_ns=1_000_000_000,
        init_pages=12,
        serial_mem_fraction=0.2,
    )
