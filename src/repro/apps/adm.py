"""Workload model of ADM (air pollution / atmospheric diffusion).

ADM is the paper's pure-XDOALL code and its worst scaler: speedup
saturates almost completely between 16 and 32 processors (8.52 to
8.84).  The cause the paper identifies is the flat construct's
iteration distribution: every one of the 32 CEs individually issues
test&set requests to the global-memory lock protecting the loop index,
so with ADM's fine-grained iterations the lock serialises distribution
and the xdoall overhead reaches ~10 % of completion time -- amplified
because memory contention inflates the lock's round trips.  The model
uses ~0.6 ms iterations to put the lock near saturation at 32 CEs,
exactly the regime the paper describes.  Calibrated to T1 = 663 s.
"""

from __future__ import annotations

from repro.apps.base import AppModel, LoopShape
from repro.runtime.loops import LoopConstruct

__all__ = ["adm"]


def adm() -> AppModel:
    """Build the ADM model (full scale: 120 time steps)."""
    loops = [
        LoopShape(
            construct=LoopConstruct.XDOALL,
            n_outer=1,
            n_inner=4600,
            iter_time_ns=400_000,
            mem_fraction=0.30,
            mem_rate=0.50,
            label="horizontal-transport",
        ),
        LoopShape(
            construct=LoopConstruct.XDOALL,
            n_outer=1,
            n_inner=4600,
            iter_time_ns=400_000,
            mem_fraction=0.30,
            mem_rate=0.50,
            iters_per_page=1024,
            fresh_pages_each_step=True,
            label="vertical-diffusion",
        ),
        LoopShape(
            construct=LoopConstruct.XDOALL,
            n_outer=1,
            n_inner=4600,
            iter_time_ns=400_000,
            mem_fraction=0.30,
            mem_rate=0.50,
            label="chemistry",
        ),
    ]
    return AppModel(
        name="ADM",
        n_steps=120,
        serial_per_step_ns=250_000_000,
        loops_per_step=loops,
        serial_pages_per_step=2,
        serial_syscalls_per_step=1,
        init_serial_ns=800_000_000,
        init_pages=8,
        serial_mem_fraction=0.2,
    )
