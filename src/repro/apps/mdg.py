"""Workload model of MDG (molecular dynamics of water).

MDG is the best-scaling code in the paper: nearly linear speedup
(24.43 at 32 processors) and the highest concurrency (28.82), because
its loops have large, evenly-dividing trip counts; contention is the
lowest of the five codes at small configurations (1.3 % at 4
processors) because the force computation is compute-bound, but grows
to 13.4 % at 32.  Calibrated to T1 = 4800 s.
"""

from __future__ import annotations

from repro.apps.base import AppModel, LoopShape
from repro.runtime.loops import LoopConstruct

__all__ = ["mdg"]


def mdg() -> AppModel:
    """Build the MDG model (full scale: 55 time steps)."""
    loops = [
        # Large, evenly-dividing trip counts: 16 outer iterations over
        # 4 clusters and 64 inner over 8 CEs leave almost no imbalance.
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=16,
            n_inner=64,
            iter_time_ns=30_000_000,
            mem_fraction=0.15,
            mem_rate=0.50,
            work_skew=0.05,
            label="intermolecular-forces",
        ),
        LoopShape(
            construct=LoopConstruct.SDOALL,
            n_outer=16,
            n_inner=64,
            iter_time_ns=30_000_000,
            mem_fraction=0.15,
            mem_rate=0.50,
            work_skew=0.05,
            iters_per_page=128,
            fresh_pages_each_step=True,
            label="intramolecular-forces",
        ),
        # Coarse-grained flat loop: the pickup cost is negligible
        # relative to 13 ms iterations.
        LoopShape(
            construct=LoopConstruct.XDOALL,
            n_outer=1,
            n_inner=2048,
            iter_time_ns=13_000_000,
            mem_fraction=0.15,
            mem_rate=0.50,
            label="pair-interactions",
        ),
    ]
    return AppModel(
        name="MDG",
        n_steps=55,
        serial_per_step_ns=145_000_000,
        loops_per_step=loops,
        serial_pages_per_step=2,
        serial_syscalls_per_step=1,
        init_serial_ns=1_000_000_000,
        init_pages=10,
        serial_mem_fraction=0.15,
    )
