"""Base machinery for the Perfect Benchmark application models.

The paper's applications (FLO52, ARC2D, MDG, OCEAN, ADM) are
compute-intensive, loop-parallel, time-stepping scientific codes.  Each
model here is a *phase program*: an initialisation section followed by
``n_steps`` repetitions of a step template of serial sections and
parallel loops.

Calibration discipline
----------------------
Model parameters are chosen against the paper's **1-processor** column
only (completion time and parallel-loop time, Tables 1 and 4), which by
construction contains no contention or multi-cluster parallelization
overhead.  Everything the paper measures on 2-32 processors (speedup,
concurrency, barrier/helper waits, xdoall distribution overhead, memory
and network contention) must then *emerge* from the simulated
mechanisms.

Because a full run is hundreds to thousands of Cedar-seconds, models
are usually simulated at a reduced ``scale`` (fewer time steps, same
per-step structure); steps are homogeneous, so results extrapolate
linearly and :meth:`AppModel.extrapolation` gives the factor.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.hardware.config import CedarConfig
from repro.runtime.loops import LoopConstruct, ParallelLoop, Phase, SerialPhase

__all__ = ["AppModel", "LoopShape", "loop_timing", "PageSpace"]

#: CE cycle time used when converting calibrated times to word counts.
_CYCLE_NS = CedarConfig.__dataclass_fields__["cycle_ns"].default
_MIN_RT_CYCLES = CedarConfig().min_memory_round_trip_cycles


def loop_timing(iter_time_ns: int, mem_fraction: float, mem_rate: float) -> tuple[int, int]:
    """Split a calibrated single-CE iteration time into work + memory.

    Returns ``(work_ns, mem_words)`` such that on an uncontended
    machine ``work_ns + stream_time(mem_words, rate)`` is approximately
    *iter_time_ns*, with the memory stream occupying ``mem_fraction``
    of it.

    Parameters
    ----------
    iter_time_ns:
        Total single-CE iteration time to calibrate to.
    mem_fraction:
        Fraction of the iteration spent streaming global memory.
    mem_rate:
        Stream request rate (requests per CE cycle).
    """
    if iter_time_ns <= 0:
        raise ValueError(f"iter_time_ns must be positive, got {iter_time_ns}")
    if not 0.0 <= mem_fraction < 1.0:
        raise ValueError(f"mem_fraction must be in [0, 1), got {mem_fraction}")
    mem_ns = iter_time_ns * mem_fraction
    if mem_ns <= 0:
        return iter_time_ns, 0
    # stream_time ~ ((words - 1)/rate + min_rt) * cycle
    words = 1 + (mem_ns / _CYCLE_NS - _MIN_RT_CYCLES) * mem_rate
    words = max(1, int(round(words)))
    stream_ns = ((words - 1) / mem_rate + _MIN_RT_CYCLES) * _CYCLE_NS
    work_ns = max(0, int(round(iter_time_ns - stream_ns)))
    return work_ns, words


@dataclass(frozen=True)
class LoopShape:
    """Reusable description of one parallel loop in a step template."""

    construct: LoopConstruct
    n_outer: int
    n_inner: int
    #: Calibrated single-CE time of one iteration (compute + memory).
    iter_time_ns: int
    #: Fraction of the iteration streaming global memory.
    mem_fraction: float = 0.3
    #: Stream request rate (requests per CE cycle).
    mem_rate: float = 0.5
    #: Iterations sharing one fresh data page; 0 disables paging.
    iters_per_page: int = 0
    #: If true, the loop sweeps fresh pages every step (cold data);
    #: otherwise its pages are warm after the first step.
    fresh_pages_each_step: bool = False
    #: Per-iteration work variation amplitude (see ParallelLoop).
    work_skew: float = 0.0
    #: Per-cluster working set for the optional cache model.
    cluster_ws_bytes: int = 0
    label: str = ""

    def build(self, page_base: int) -> ParallelLoop:
        """Materialise the loop with a concrete page placement."""
        work_ns, words = loop_timing(self.iter_time_ns, self.mem_fraction, self.mem_rate)
        return ParallelLoop(
            construct=self.construct,
            n_outer=self.n_outer,
            n_inner=self.n_inner,
            work_ns_per_iter=work_ns,
            mem_words_per_iter=words,
            mem_rate=self.mem_rate,
            page_base=page_base if self.iters_per_page > 0 else -1,
            iters_per_page=max(1, self.iters_per_page),
            work_skew=self.work_skew,
            cluster_ws_bytes=self.cluster_ws_bytes,
            label=self.label,
        )

    @property
    def total_single_ce_ns(self) -> int:
        """Single-CE time to execute the whole loop once."""
        return self.n_outer * self.n_inner * self.iter_time_ns


class PageSpace:
    """Sequential allocator of virtual data pages for an app model."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self, n_pages: int) -> int:
        """Reserve *n_pages* pages; returns the base page id."""
        base = self._next
        self._next += max(0, n_pages)
        return base

    @property
    def allocated(self) -> int:
        """Total pages allocated so far."""
        return self._next


class AppModel:
    """A Perfect-Benchmark-style time-stepping application model.

    Subclasses (or direct instantiations) provide the step template;
    :meth:`phases` unrolls it at a given scale.

    Parameters
    ----------
    name:
        Application name as used in the paper.
    n_steps:
        Full-scale number of time steps.
    serial_per_step_ns:
        Serial code per step (single-CE time).
    loops_per_step:
        The parallel loops of one step, in order.
    serial_pages_per_step, serial_syscalls_per_step:
        Paging and syscall behaviour of the serial sections.
    init_serial_ns, init_pages:
        One-off initialisation phase.
    serial_mem_fraction:
        Fraction of serial time streaming global memory.
    """

    def __init__(
        self,
        name: str,
        n_steps: int,
        serial_per_step_ns: int,
        loops_per_step: Sequence[LoopShape],
        serial_pages_per_step: int = 0,
        serial_syscalls_per_step: int = 0,
        init_serial_ns: int = 0,
        init_pages: int = 0,
        serial_mem_fraction: float = 0.0,
        serial_mem_rate: float = 0.3,
    ) -> None:
        if n_steps <= 0:
            raise ValueError(f"n_steps must be positive, got {n_steps}")
        self.name = name
        self.n_steps = n_steps
        self.serial_per_step_ns = serial_per_step_ns
        self.loops_per_step = list(loops_per_step)
        self.serial_pages_per_step = serial_pages_per_step
        self.serial_syscalls_per_step = serial_syscalls_per_step
        self.init_serial_ns = init_serial_ns
        self.init_pages = init_pages
        self.serial_mem_fraction = serial_mem_fraction
        self.serial_mem_rate = serial_mem_rate

    # -- unrolling ------------------------------------------------------------

    def steps_at_scale(self, scale: float) -> int:
        """Time steps actually simulated at *scale*."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        return max(1, round(self.n_steps * scale))

    def extrapolation(self, scale: float) -> float:
        """Multiplier from simulated totals to full-scale totals."""
        return self.n_steps / self.steps_at_scale(scale)

    def phases(self, scale: float = 1.0) -> list[Phase]:
        """Unroll the program at *scale* into a concrete phase list."""
        steps = self.steps_at_scale(scale)
        pages = PageSpace()
        phases: list[Phase] = []
        if self.init_serial_ns > 0 or self.init_pages > 0:
            # The one-off initialisation is scaled with the step count
            # so that extrapolating the simulated totals back to full
            # scale (multiplying by n_steps / steps) is exact.
            init_ns = int(round(self.init_serial_ns * steps / self.n_steps))
            phases.append(
                SerialPhase(
                    work_ns=init_ns,
                    page_base=pages.allocate(self.init_pages) if self.init_pages else -1,
                    n_pages=self.init_pages,
                    syscalls=2,
                    label="init",
                )
            )
        # Warm (step-invariant) loop data is allocated once.
        warm_bases: dict[int, int] = {}
        for index, shape in enumerate(self.loops_per_step):
            if shape.iters_per_page > 0 and not shape.fresh_pages_each_step:
                n_pages = math.ceil(shape.n_outer * shape.n_inner / shape.iters_per_page)
                warm_bases[index] = pages.allocate(n_pages)
        serial_work, serial_words = loop_timing(
            max(1, self.serial_per_step_ns), self.serial_mem_fraction, self.serial_mem_rate
        ) if self.serial_per_step_ns > 0 and self.serial_mem_fraction > 0 else (
            self.serial_per_step_ns,
            0,
        )
        for step in range(steps):
            if self.serial_per_step_ns > 0:
                phases.append(
                    SerialPhase(
                        work_ns=serial_work,
                        mem_words=serial_words,
                        mem_rate=self.serial_mem_rate,
                        page_base=pages.allocate(self.serial_pages_per_step)
                        if self.serial_pages_per_step
                        else -1,
                        n_pages=self.serial_pages_per_step,
                        syscalls=self.serial_syscalls_per_step,
                        label=f"step{step}-serial",
                    )
                )
            for index, shape in enumerate(self.loops_per_step):
                if index in warm_bases:
                    base = warm_bases[index]
                elif shape.iters_per_page > 0:
                    n_pages = math.ceil(
                        shape.n_outer * shape.n_inner / shape.iters_per_page
                    )
                    base = pages.allocate(n_pages)
                else:
                    base = -1
                phases.append(shape.build(base))
        return phases

    # -- calibration helpers ----------------------------------------------------

    def nominal_parallel_ns(self) -> int:
        """Full-scale single-CE parallel-loop time (calibration anchor)."""
        per_step = sum(shape.total_single_ce_ns for shape in self.loops_per_step)
        return per_step * self.n_steps

    def nominal_serial_ns(self) -> int:
        """Full-scale serial time (calibration anchor)."""
        return self.init_serial_ns + self.serial_per_step_ns * self.n_steps

    def nominal_ct_ns(self) -> int:
        """Full-scale single-CE completion-time anchor."""
        return self.nominal_parallel_ns() + self.nominal_serial_ns()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AppModel {self.name}: {self.n_steps} steps, {len(self.loops_per_step)} loops/step>"
