"""Observability for the simulator itself.

The rest of ``repro`` models Cedar's measurement apparatus (cedarhpm,
statfx, Xylem accounting); this package instruments the *simulation*:
a dependency-free metrics registry with hierarchical names, opt-in
kernel trace sinks (structured event tracing, per-process profiling),
collectors that harvest every subsystem's always-on counters after a
run, and exporters producing a JSON run report and a Perfetto-loadable
Chrome trace.  See ``docs/observability.md``.
"""

from repro.obs.campaign import (
    CAMPAIGN_LOG_SCHEMA,
    CAMPAIGN_REPORT_SCHEMA,
    CampaignTelemetry,
    CellSpan,
    ProgressReporter,
    build_campaign_report,
    campaign_chrome_trace,
    load_campaign_log,
    render_campaign_report,
    save_campaign_report,
    save_campaign_trace,
    spans_from_log,
)
from repro.obs.exporters import (
    REPORT_SCHEMA_VERSION,
    build_run_report,
    chrome_trace,
    git_revision,
    save_chrome_trace,
    save_report,
)
from repro.obs.hazard import TieBreakAuditSink
from repro.obs.hostclock import WallTimer, host_clock_s
from repro.obs.instrument import (
    Observability,
    collect_hpm_metrics,
    collect_run_metrics,
)
from repro.obs.profile import ProcessProfiler, ProcessProfileRecord, profile_key
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeseries,
    validate_name,
)
from repro.obs.tracing import (
    KernelTraceBuffer,
    KernelTraceRecord,
    MultiSink,
    TraceSink,
)

__all__ = [
    "CAMPAIGN_LOG_SCHEMA",
    "CAMPAIGN_REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "CampaignTelemetry",
    "CellSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelTraceBuffer",
    "KernelTraceRecord",
    "MetricsRegistry",
    "MultiSink",
    "Observability",
    "ProcessProfileRecord",
    "ProcessProfiler",
    "ProgressReporter",
    "TieBreakAuditSink",
    "Timeseries",
    "TraceSink",
    "WallTimer",
    "build_campaign_report",
    "build_run_report",
    "campaign_chrome_trace",
    "chrome_trace",
    "collect_hpm_metrics",
    "collect_run_metrics",
    "git_revision",
    "host_clock_s",
    "load_campaign_log",
    "profile_key",
    "render_campaign_report",
    "save_campaign_report",
    "save_campaign_trace",
    "save_chrome_trace",
    "save_report",
    "spans_from_log",
    "validate_name",
]
