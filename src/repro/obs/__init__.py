"""Observability for the simulator itself.

The rest of ``repro`` models Cedar's measurement apparatus (cedarhpm,
statfx, Xylem accounting); this package instruments the *simulation*:
a dependency-free metrics registry with hierarchical names, opt-in
kernel trace sinks (structured event tracing, per-process profiling),
collectors that harvest every subsystem's always-on counters after a
run, and exporters producing a JSON run report and a Perfetto-loadable
Chrome trace.  See ``docs/observability.md``.
"""

from repro.obs.exporters import (
    REPORT_SCHEMA_VERSION,
    build_run_report,
    chrome_trace,
    git_revision,
    save_chrome_trace,
    save_report,
)
from repro.obs.hostclock import WallTimer, host_clock_s
from repro.obs.instrument import (
    Observability,
    collect_hpm_metrics,
    collect_run_metrics,
)
from repro.obs.profile import ProcessProfiler, ProcessProfileRecord, profile_key
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeseries,
    validate_name,
)
from repro.obs.tracing import (
    KernelTraceBuffer,
    KernelTraceRecord,
    MultiSink,
    TraceSink,
)

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelTraceBuffer",
    "KernelTraceRecord",
    "MetricsRegistry",
    "MultiSink",
    "Observability",
    "ProcessProfileRecord",
    "ProcessProfiler",
    "Timeseries",
    "TraceSink",
    "WallTimer",
    "build_run_report",
    "chrome_trace",
    "collect_hpm_metrics",
    "collect_run_metrics",
    "git_revision",
    "host_clock_s",
    "profile_key",
    "save_chrome_trace",
    "save_report",
    "validate_name",
]
