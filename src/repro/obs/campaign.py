"""Campaign-scale telemetry for pooled sweep execution.

The paper's method is measurement-based characterization; this module
applies it to our own heaviest path, the ``repro.parallel`` sweep
executor.  Per-run metrics normally die inside worker processes -- here
every cell is wrapped in a :class:`CellSpan` (queue wait, attempt, run
wall, cache hit/miss, failure kind, schedule hash, kernel fast-path
counters) and ships a picklable snapshot of the worker's whole metric
registry back with its result.  The coordinator-side
:class:`CampaignTelemetry` then

* merges worker registries into one campaign-level registry
  (``campaign.*`` namespaced, via
  :meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`);
* appends a structured JSONL event log (schema
  ``cedar-repro/campaign-log/v1``: submit/start/finish/retry/cache-hit
  events with monotonic host timestamps, header tagged with
  ``code_fingerprint()`` and seed);
* drives a live TTY progress line (cells done/total, sustained cells/s,
  rolling p50/p95 cell wall, ETA, pool utilization, cache hit rate);
* exports a campaign-wide Perfetto trace (one track per worker PID,
  cells as slices, cache hits and failed attempts as instant events).

:func:`build_campaign_report` distils a finished log into the SLO
artifact -- sustained throughput, p50/p95/p99 cell latency, pool
utilization, retry/failure/cache breakdown -- surfaced by the
``cedar-repro report`` command.  All host timestamps come from
:mod:`repro.obs.hostclock` (``CDR001``): they describe the *harness*,
never the simulated machine.
"""

from __future__ import annotations

import json
import math
import os
import sys
from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Mapping, Sequence

from repro.obs.hostclock import host_clock_s
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runner import RunResult
    from repro.parallel.executor import CellSpec

__all__ = [
    "CAMPAIGN_LOG_SCHEMA",
    "CAMPAIGN_REPORT_SCHEMA",
    "CampaignTelemetry",
    "CellSpan",
    "ProgressReporter",
    "build_campaign_report",
    "campaign_chrome_trace",
    "load_campaign_log",
    "render_campaign_report",
    "save_campaign_report",
    "save_campaign_trace",
    "spans_from_log",
]

CAMPAIGN_LOG_SCHEMA = "cedar-repro/campaign-log/v1"
CAMPAIGN_REPORT_SCHEMA = "cedar-repro/campaign-report/v1"

#: Histogram boundaries (seconds) for campaign wall/wait distributions.
_SECONDS_BOUNDARIES = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0)

#: Cell walls kept for the progress line's rolling p50/p95.
_ROLLING_WINDOW = 32


@dataclass(frozen=True)
class CellSpan:
    """One attempt at one sweep cell, as the worker saw it.

    Picklable by construction (plain scalars and dicts): built inside
    the pool worker and shipped back beside -- never inside -- the cell
    result, so cached results stay byte-identical to serial ones.
    Timestamps are host-monotonic seconds
    (:func:`~repro.obs.hostclock.host_clock_s`), comparable across
    processes on one host.
    """

    app: str
    n_processors: int
    seed: int
    attempt: int
    worker_pid: int
    #: Coordinator clock when the cell was handed to the pool.
    submit_s: float
    #: Worker clock when execution actually began (queue wait ends).
    start_s: float
    #: Worker clock when the attempt finished (ok or not).
    end_s: float
    #: Host seconds inside the simulation event loop (``result.wall_s``).
    run_wall_s: float
    cache_hit: bool = False
    #: Exception type name for a failed attempt, ``None`` on success.
    failure_kind: str | None = None
    schedule_hash: str | None = None
    #: ``RunResult.kernel_stats``: Timeout-pool + fastpath counters.
    kernel_stats: Mapping[str, float] = field(default_factory=dict)
    #: The worker registry's :meth:`~repro.obs.registry.MetricsRegistry.
    #: snapshot`, when telemetry shipping was on.
    metrics: Mapping[str, Mapping[str, object]] | None = None

    @property
    def ok(self) -> bool:
        """Whether this attempt produced a result."""
        return self.failure_kind is None

    @property
    def queue_wait_s(self) -> float:
        """Host seconds between pool submission and worker pickup."""
        return max(0.0, self.start_s - self.submit_s)

    @property
    def span_s(self) -> float:
        """Host seconds the attempt occupied its worker."""
        return max(0.0, self.end_s - self.start_s)

    @property
    def label(self) -> str:
        """Human-readable cell identity (``FLO52 P=8``)."""
        return f"{self.app} P={self.n_processors}"


def percentile(values: Sequence[float], q: float) -> float | None:
    """Nearest-rank *q*-percentile (``0 <= q <= 1``) of *values*."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1], got {q}")
    if not values:
        return None
    ranked = sorted(values)
    index = min(len(ranked) - 1, max(0, math.ceil(q * len(ranked)) - 1))
    return ranked[index]


class ProgressReporter:
    """Single-line live progress for a running campaign.

    Renders ``[done/total]`` with sustained throughput, rolling p50/p95
    cell wall, pool utilization, cache hit count and an ETA.  Writes
    in-place (carriage return) to *stream* only when enabled; by
    default enabled exactly when the stream is a TTY, so piped and CI
    output stay clean.  :meth:`line` exposes the rendered text for
    tests and non-TTY callers.
    """

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        stream: IO[str] | None = None,
        enabled: bool | None = None,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.stream: IO[str] = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.busy_s = 0.0
        self._recent: deque[float] = deque(maxlen=_ROLLING_WINDOW)
        self._begin = host_clock_s()
        self._wrote = False

    def note_cell(self, wall_s: float, ok: bool, cache_hit: bool = False) -> None:
        """Record one finished cell attempt and repaint the line."""
        if ok:
            self.done += 1
        else:
            self.failed += 1
        if cache_hit:
            self.cache_hits += 1
        else:
            self.busy_s += wall_s
            if ok:
                self._recent.append(wall_s)
        self.emit()

    @property
    def elapsed_s(self) -> float:
        """Host seconds since the reporter was created."""
        return max(1e-9, host_clock_s() - self._begin)

    def line(self) -> str:
        """The current progress line (always computable, TTY or not)."""
        elapsed = self.elapsed_s
        rate = self.done / elapsed
        parts = [f"[{self.done}/{self.total}]", f"{rate:.2f} cells/s"]
        recent = list(self._recent)
        p50 = percentile(recent, 0.50)
        p95 = percentile(recent, 0.95)
        if p50 is not None and p95 is not None:
            parts.append(f"p50 {p50:.2f}s p95 {p95:.2f}s")
        parts.append(f"util {min(1.0, self.busy_s / (self.jobs * elapsed)):.0%}")
        if self.cache_hits:
            parts.append(f"cache {self.cache_hits}/{self.done}")
        if self.failed:
            parts.append(f"failed {self.failed}")
        remaining = self.total - self.done
        if 0 < remaining and rate > 0:
            parts.append(f"eta {remaining / rate:.0f}s")
        return " | ".join(parts)

    def emit(self) -> None:
        """Repaint the line in place (no-op when disabled)."""
        if not self.enabled:
            return
        self.stream.write("\r\x1b[2K" + self.line())
        self.stream.flush()
        self._wrote = True

    def close(self) -> None:
        """Finish the line with a newline (no-op if never painted)."""
        if self.enabled and self._wrote:
            self.stream.write("\n")
            self.stream.flush()


class CampaignTelemetry:
    """Coordinator-side telemetry for one pooled campaign.

    Hand an instance to :func:`repro.parallel.execute_cells` /
    :func:`~repro.parallel.parallel_sweep` (or the ``--log`` /
    ``--progress`` CLI flags).  It owns the campaign registry, the JSONL
    event log, the collected :class:`CellSpan` list and the progress
    reporter; after :meth:`end` it can render the report and the
    Perfetto trace.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        log_path: str | Path | None = None,
        progress: bool | None = None,
        stream: IO[str] | None = None,
        label: str = "campaign",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.log_path = Path(log_path) if log_path is not None else None
        self.label = label
        self._progress_flag = progress
        self._stream = stream
        self.spans: list[CellSpan] = []
        self.events: list[dict] = []
        self.header: dict = {}
        self.jobs = 1
        self.reporter: ProgressReporter | None = None
        self._log: IO[str] | None = None
        self._begun = False
        self._ended = False
        self._t0 = 0.0

    # -- lifecycle (called by the executor) ---------------------------------

    def begin(self, specs: "Sequence[CellSpec]", jobs: int) -> None:
        """Open the campaign: write the tagged log header, start progress."""
        if self._begun:
            raise RuntimeError("CampaignTelemetry.begin() called twice")
        from repro.parallel.cache import code_fingerprint

        self._begun = True
        self.jobs = jobs
        self._t0 = host_clock_s()
        seeds = {spec.seed for spec in specs}
        self.header = {
            "schema": CAMPAIGN_LOG_SCHEMA,
            "label": self.label,
            "code_fingerprint": code_fingerprint(),
            "seed": seeds.pop() if len(seeds) == 1 else None,
            "jobs": jobs,
            "n_cells": len(specs),
            "apps": sorted({spec.app for spec in specs}),
            "configs": sorted({spec.n_processors for spec in specs}),
            "t0": self._t0,
        }
        if self.log_path is not None:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log = open(self.log_path, "w", encoding="utf-8")
            self._write(self.header)
        self.reporter = ProgressReporter(
            total=len(specs),
            jobs=jobs,
            stream=self._stream,
            enabled=self._progress_flag,
        )

    def on_submit(self, spec: "CellSpec", attempt: int) -> float:
        """Log a cell handed to the pool; returns the submit timestamp."""
        now = host_clock_s()
        self._event(
            {
                "ev": "submit",
                "t": now,
                "app": spec.app,
                "p": spec.n_processors,
                "attempt": attempt,
            }
        )
        return now

    def on_cache_hit(self, spec: "CellSpec", result: "RunResult") -> None:
        """Log a cell served from the result cache (no simulation)."""
        now = host_clock_s()
        span = CellSpan(
            app=spec.app,
            n_processors=spec.n_processors,
            seed=spec.seed,
            attempt=1,
            worker_pid=os.getpid(),
            submit_s=now,
            start_s=now,
            end_s=now,
            run_wall_s=result.wall_s,
            cache_hit=True,
            schedule_hash=result.schedule_hash,
            kernel_stats=dict(result.kernel_stats),
        )
        self.spans.append(span)
        self._event(
            {
                "ev": "cache_hit",
                "t": now,
                "app": spec.app,
                "p": spec.n_processors,
                "schedule_hash": result.schedule_hash,
            }
        )
        self._aggregate(span)
        if self.reporter is not None:
            self.reporter.note_cell(0.0, ok=True, cache_hit=True)

    def on_span(self, span: CellSpan, will_retry: bool = False) -> None:
        """Record a worker-side attempt (successful or failed)."""
        self.spans.append(span)
        self._event(
            {
                "ev": "start",
                "t": span.start_s,
                "app": span.app,
                "p": span.n_processors,
                "attempt": span.attempt,
                "pid": span.worker_pid,
            }
        )
        self._event(
            {
                "ev": "finish",
                "t": span.end_s,
                "app": span.app,
                "p": span.n_processors,
                "attempt": span.attempt,
                "pid": span.worker_pid,
                "ok": span.ok,
                "wall_s": span.span_s,
                "run_wall_s": span.run_wall_s,
                "queue_wait_s": span.queue_wait_s,
                "error": span.failure_kind,
                "schedule_hash": span.schedule_hash,
            }
        )
        if will_retry:
            self._event(
                {
                    "ev": "retry",
                    "t": host_clock_s(),
                    "app": span.app,
                    "p": span.n_processors,
                    "attempt": span.attempt,
                    "error": span.failure_kind,
                }
            )
        self._aggregate(span)
        if self.reporter is not None and not will_retry:
            self.reporter.note_cell(span.span_s, ok=span.ok)

    def on_recovery(self, kind: str, **fields: object) -> None:
        """Log one recovery event (respawn, straggler, checkpoint, ...).

        The durable execution layer (:mod:`repro.parallel.durable`)
        narrates its self-healing through this seam: each event lands
        in the JSONL log as ``{"ev": "recovery", "kind": kind, ...}``
        and bumps the ``campaign.recovery.<kind>`` counter, so SLO
        reports and recovery reports read from one surface.
        """
        self._event({"ev": "recovery", "kind": kind, "t": host_clock_s(), **fields})
        self.registry.counter(f"campaign.recovery.{kind}").inc()

    def end(self) -> None:
        """Close the campaign: summary gauges, end event, log + TTY.

        Idempotent: the executor finalizes telemetry on *every* exit
        path (including exceptional ones), so a second call -- e.g.
        after a checkpoint already closed the campaign -- is a no-op.
        """
        if self._ended:
            return
        self._ended = True
        wall = max(1e-9, host_clock_s() - self._t0)
        reg = self.registry
        completed = sum(1 for s in self.spans if s.ok)
        failed_attempts = sum(1 for s in self.spans if not s.ok)
        cache_hits = sum(1 for s in self.spans if s.cache_hit)
        busy = sum(s.span_s for s in self.spans if not s.cache_hit)
        reg.gauge("campaign.wall_s").set(wall)
        reg.gauge("campaign.throughput_cells_per_s").set(completed / wall)
        reg.gauge("campaign.pool.utilization").set(
            min(1.0, busy / (self.jobs * wall))
        )
        self._event(
            {
                "ev": "end",
                "t": host_clock_s(),
                "completed": completed,
                "failed_attempts": failed_attempts,
                "cache_hits": cache_hits,
                "wall_s": wall,
            }
        )
        if self._log is not None:
            self._log.close()
            self._log = None
        if self.reporter is not None:
            self.reporter.close()

    # -- derived views -------------------------------------------------------

    def report(self) -> dict:
        """The :func:`build_campaign_report` of this campaign's log."""
        return build_campaign_report(self.header, self.events)

    def chrome_trace(self) -> dict:
        """The campaign-wide Perfetto trace of the collected spans."""
        return campaign_chrome_trace(self.spans, t0=self.header.get("t0"))

    # -- internals -----------------------------------------------------------

    def _write(self, payload: dict) -> None:
        if self._log is not None:
            self._log.write(json.dumps(payload, sort_keys=True) + "\n")
            self._log.flush()

    def _event(self, payload: dict) -> None:
        self.events.append(payload)
        self._write(payload)

    def _aggregate(self, span: CellSpan) -> None:
        reg = self.registry
        reg.counter("campaign.cells.attempts").inc()
        if span.ok:
            reg.counter("campaign.cells.completed").inc()
        else:
            reg.counter("campaign.cells.failed_attempts").inc()
        if span.cache_hit:
            reg.counter("campaign.cells.cache_hits").inc()
        else:
            reg.histogram("campaign.cell_wall_s", _SECONDS_BOUNDARIES).observe(
                span.span_s
            )
            reg.histogram("campaign.queue_wait_s", _SECONDS_BOUNDARIES).observe(
                span.queue_wait_s
            )
            reg.histogram("campaign.run_wall_s", _SECONDS_BOUNDARIES).observe(
                span.run_wall_s
            )
        if span.metrics is not None:
            reg.merge_snapshot(span.metrics, prefix="campaign")


# -- campaign log ------------------------------------------------------------


def load_campaign_log(path: str | Path) -> tuple[dict, list[dict]]:
    """Read a campaign-log JSONL file into ``(header, events)``.

    Validates the header's schema marker; blank lines are skipped.
    """
    header: dict | None = None
    events: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if header is None:
                if payload.get("schema") != CAMPAIGN_LOG_SCHEMA:
                    raise ValueError(
                        f"not a campaign log: expected schema "
                        f"{CAMPAIGN_LOG_SCHEMA!r}, got {payload.get('schema')!r}"
                    )
                header = payload
            else:
                events.append(payload)
    if header is None:
        raise ValueError(f"empty campaign log: {path}")
    return header, events


def build_campaign_report(header: dict, events: list[dict]) -> dict:
    """Distil a campaign log into the SLO report.

    Sustained throughput, p50/p95/p99 cell latency (host wall seconds of
    successful simulated cells), queue-wait percentiles, pool
    utilization, and the retry/failure/cache breakdown.  Carries the
    log header's ``code_fingerprint`` and ``seed`` so the report can be
    matched to the exact code state that produced it.
    """
    jobs = int(header.get("jobs", 1) or 1)
    times = [float(e["t"]) for e in events if "t" in e]
    t0 = float(header.get("t0", min(times) if times else 0.0))
    t_end = max(times) if times else t0
    wall_s = max(1e-9, t_end - t0)

    finishes = [e for e in events if e.get("ev") == "finish"]
    ok = [e for e in finishes if e.get("ok")]
    failed_attempts = [e for e in finishes if not e.get("ok")]
    cache_hits = sum(1 for e in events if e.get("ev") == "cache_hit")
    retries = sum(1 for e in events if e.get("ev") == "retry")
    completed = len(ok) + cache_hits

    succeeded = {(e["app"], e["p"]) for e in ok}
    succeeded |= {
        (e["app"], e["p"]) for e in events if e.get("ev") == "cache_hit"
    }
    failed_cells = sorted(
        {(e["app"], e["p"]) for e in failed_attempts} - succeeded
    )

    walls = [float(e["wall_s"]) for e in ok]
    waits = [float(e.get("queue_wait_s", 0.0)) for e in ok]
    busy_s = sum(float(e["wall_s"]) for e in finishes)

    per_worker: dict[str, dict] = {}
    for e in finishes:
        row = per_worker.setdefault(
            str(e.get("pid", "?")), {"attempts": 0, "busy_s": 0.0}
        )
        row["attempts"] += 1
        row["busy_s"] = round(row["busy_s"] + float(e["wall_s"]), 6)

    def _pct(values: list[float], q: float) -> float | None:
        value = percentile(values, q)
        return round(value, 6) if value is not None else None

    recovery: dict | None = None
    recovery_events = [e for e in events if e.get("ev") == "recovery"]
    if recovery_events:
        by_kind = _TallyCounter(str(e.get("kind")) for e in recovery_events)
        recovery = {
            "events": len(recovery_events),
            "by_kind": dict(sorted(by_kind.items())),
        }

    return {
        "schema": CAMPAIGN_REPORT_SCHEMA,
        "label": header.get("label"),
        "code_fingerprint": header.get("code_fingerprint"),
        "seed": header.get("seed"),
        "jobs": jobs,
        "cells": {
            "total": header.get("n_cells", completed + len(failed_cells)),
            "completed": completed,
            "simulated": len(ok),
            "cache_hits": cache_hits,
            "failed": len(failed_cells),
            "failed_cells": [list(cell) for cell in failed_cells],
            "retries": retries,
        },
        "wall_s": round(wall_s, 6),
        "throughput": {
            "sustained_cells_per_s": round(completed / wall_s, 6),
            "simulated_cells_per_s": round(len(ok) / wall_s, 6),
        },
        "latency_s": {
            "p50": _pct(walls, 0.50),
            "p95": _pct(walls, 0.95),
            "p99": _pct(walls, 0.99),
            "mean": round(sum(walls) / len(walls), 6) if walls else None,
            "max": round(max(walls), 6) if walls else None,
        },
        "queue_wait_s": {
            "p50": _pct(waits, 0.50),
            "p95": _pct(waits, 0.95),
        },
        "pool": {
            "utilization": round(min(1.0, busy_s / (jobs * wall_s)), 6),
            "busy_s": round(busy_s, 6),
            "workers": dict(sorted(per_worker.items())),
        },
        "cache": {
            "hits": cache_hits,
            "hit_rate": round(cache_hits / completed, 6) if completed else 0.0,
        },
        "failures": dict(
            sorted(
                _TallyCounter(
                    str(e.get("error")) for e in failed_attempts
                ).items()
            )
        ),
        "recovery": recovery,
    }


def render_campaign_report(report: dict) -> str:
    """Human-readable summary of a :func:`build_campaign_report` dict."""
    cells = report["cells"]
    latency = report["latency_s"]
    pool = report["pool"]

    def _s(value: float | None) -> str:
        return f"{value:.3f}s" if value is not None else "-"

    lines = [
        f"campaign {report.get('label') or '?'}: "
        f"{cells['completed']}/{cells['total']} cells in {report['wall_s']:.2f}s "
        f"({report['throughput']['sustained_cells_per_s']:.2f} cells/s sustained, "
        f"jobs={report['jobs']})",
        f"  latency   p50 {_s(latency['p50'])}  p95 {_s(latency['p95'])}  "
        f"p99 {_s(latency['p99'])}  mean {_s(latency['mean'])}",
        f"  pool      utilization {pool['utilization']:.0%}  "
        f"busy {pool['busy_s']:.2f}s across {len(pool['workers'])} worker(s)",
        f"  cache     {report['cache']['hits']} hits "
        f"({report['cache']['hit_rate']:.0%} of completed)",
        f"  failures  {cells['failed']} cell(s), {cells['retries']} retr"
        f"{'y' if cells['retries'] == 1 else 'ies'}",
    ]
    for kind, count in report.get("failures", {}).items():
        lines.append(f"    {kind}: {count} attempt(s)")
    recovery = report.get("recovery")
    if recovery:
        pieces = ", ".join(
            f"{kind} x{count}" for kind, count in recovery["by_kind"].items()
        )
        lines.append(f"  recovery  {recovery['events']} event(s): {pieces}")
    fingerprint = report.get("code_fingerprint")
    seed = report.get("seed")
    lines.append(f"  provenance code {fingerprint or '?'}  seed {seed}")
    return "\n".join(lines)


def save_campaign_report(report: dict, path: str | Path) -> None:
    """Write a campaign report as indented JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


# -- Perfetto export ---------------------------------------------------------


def spans_from_log(events: list[dict]) -> list[CellSpan]:
    """Reconstruct :class:`CellSpan` views from a loaded campaign log.

    Only the fields the trace exporter needs are recovered; worker
    metric snapshots are not logged and come back as ``None``.
    """
    spans: list[CellSpan] = []
    for e in events:
        if e.get("ev") == "finish":
            end = float(e["t"])
            wall = float(e.get("wall_s", 0.0))
            wait = float(e.get("queue_wait_s", 0.0))
            spans.append(
                CellSpan(
                    app=str(e["app"]),
                    n_processors=int(e["p"]),
                    seed=0,
                    attempt=int(e.get("attempt", 1)),
                    worker_pid=int(e.get("pid", 0)),
                    submit_s=end - wall - wait,
                    start_s=end - wall,
                    end_s=end,
                    run_wall_s=float(e.get("run_wall_s", wall)),
                    failure_kind=(
                        str(e["error"]) if e.get("error") is not None else None
                    ),
                    schedule_hash=e.get("schedule_hash"),
                )
            )
        elif e.get("ev") == "cache_hit":
            now = float(e["t"])
            spans.append(
                CellSpan(
                    app=str(e["app"]),
                    n_processors=int(e["p"]),
                    seed=0,
                    attempt=1,
                    worker_pid=int(e.get("pid", 0)),
                    submit_s=now,
                    start_s=now,
                    end_s=now,
                    run_wall_s=0.0,
                    cache_hit=True,
                    schedule_hash=e.get("schedule_hash"),
                )
            )
    return spans


def campaign_chrome_trace(
    spans: Sequence[CellSpan], t0: float | None = None
) -> dict:
    """Chrome trace-event JSON of a campaign: one track per worker PID.

    Cells appear as ``"X"`` (complete) slices on their worker's track;
    cache hits and failed attempts appear as ``"i"`` (instant) events.
    Timestamps are microseconds relative to the campaign start (*t0*,
    defaulting to the earliest span).  Load in ``ui.perfetto.dev`` --
    the same exporter family as
    :func:`repro.obs.exporters.chrome_trace`.
    """
    if t0 is None:
        t0 = min((s.submit_s for s in spans), default=0.0)
    events: list[dict] = []
    for pid in sorted({s.worker_pid for s in spans}):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "name": "process_name",
                "args": {"name": f"worker {pid}"},
            }
        )
    for span in spans:
        ts = (span.start_s - t0) * 1e6
        if span.cache_hit:
            events.append(
                {
                    "ph": "i",
                    "pid": span.worker_pid,
                    "tid": 0,
                    "ts": ts,
                    "s": "p",
                    "name": f"cache-hit {span.label}",
                    "cat": "cache",
                }
            )
            continue
        events.append(
            {
                "ph": "X",
                "pid": span.worker_pid,
                "tid": 0,
                "ts": ts,
                "dur": span.span_s * 1e6,
                "name": span.label,
                "cat": "cell",
                "args": {
                    "attempt": span.attempt,
                    "ok": span.ok,
                    "run_wall_s": span.run_wall_s,
                    "queue_wait_s": span.queue_wait_s,
                    "schedule_hash": span.schedule_hash,
                },
            }
        )
        if not span.ok:
            events.append(
                {
                    "ph": "i",
                    "pid": span.worker_pid,
                    "tid": 0,
                    "ts": (span.end_s - t0) * 1e6,
                    "s": "p",
                    "name": f"failed {span.label}: {span.failure_kind}",
                    "cat": "retry",
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"spans": len(spans)},
    }


def save_campaign_trace(
    spans: Sequence[CellSpan], path: str | Path, t0: float | None = None
) -> None:
    """Write :func:`campaign_chrome_trace` JSON to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(campaign_chrome_trace(spans, t0=t0), fh)
        fh.write("\n")
