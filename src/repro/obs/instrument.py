"""Wiring between the simulation stack and the metrics registry.

:class:`Observability` is the one object callers hand to
:func:`repro.core.runner.run_application` / ``run_phases``: it owns the
:class:`~repro.obs.registry.MetricsRegistry` and the optional kernel
sinks (process profiler, kernel trace buffer).  After the run the
collector functions harvest every always-on counter the stack keeps --
the machine's memory ledger, the load tracker, the packet-level bank
and switch statistics when present, the Xylem accounting ledger and
fault counters, the runtime protocol counters, the activity board and
the ``cedarhpm`` buffer -- into hierarchical metric names:

===========  ===========================================================
prefix       contents
===========  ===========================================================
``memory.``  per-cluster burst busy/ideal/stall time, per-bank service
             time and queue high-water (packet-level runs)
``network.`` streaming-CE load, scalar round trips, per-port switch
             traffic and queue depth high-water (packet-level runs)
``xylem.``   per-activity OS time and counts, page faults, kernel-lock
             spin
``runtime.`` loop protocol counters, CC-bus traffic, per-CE busy time,
             measured concurrency
``hpm.``     monitor buffer fill, drops, per-event-type counts
``kernel.``  event-kernel fast paths: Timeout-pool reuse counters and
             the batched/exact memory transaction split
``run.``     completion time, host wall time, event counts
===========  ===========================================================
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import TYPE_CHECKING

from repro.obs.profile import ProcessProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import KernelTraceBuffer, MultiSink, TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runner import RunResult
    from repro.hpm.events import TraceEvent
    from repro.hpm.monitor import CedarHpm
    from repro.parallel.snapshot import HpmView

__all__ = [
    "Observability",
    "collect_run_metrics",
    "collect_hpm_metrics",
]


class Observability:
    """Bundle of observation facilities for one run.

    Parameters
    ----------
    profile:
        Attach a :class:`~repro.obs.profile.ProcessProfiler` to the
        kernel (per-process host wall time and simulated time).
    kernel_trace:
        Attach a :class:`~repro.obs.tracing.KernelTraceBuffer`
        recording structured kernel occurrences.
    kernel_trace_capacity:
        Buffer bound for the kernel trace.
    extra_sinks:
        Additional :class:`~repro.obs.tracing.TraceSink` instances to
        attach to the kernel for the run (e.g. the schedule-order
        :class:`~repro.analyze.sanitize.DeterminismSink`).
    """

    def __init__(
        self,
        profile: bool = False,
        kernel_trace: bool = False,
        kernel_trace_capacity: int = 100_000,
        extra_sinks: "list[TraceSink] | tuple[TraceSink, ...]" = (),
    ) -> None:
        self.registry = MetricsRegistry()
        self.profiler = ProcessProfiler() if profile else None
        self.kernel_trace = (
            KernelTraceBuffer(kernel_trace_capacity) if kernel_trace else None
        )
        self.extra_sinks: list[TraceSink] = list(extra_sinks)

    @property
    def sink(self) -> TraceSink | None:
        """The kernel sink to register, or ``None`` when nothing is on.

        ``None`` keeps the simulator's hot loop on its no-dispatch
        path, so a metrics-only :class:`Observability` costs nothing
        during the run.
        """
        sinks = [
            s
            for s in (self.profiler, self.kernel_trace, *self.extra_sinks)
            if s is not None
        ]
        if not sinks:
            return None
        if len(sinks) == 1:
            return sinks[0]
        return MultiSink(sinks)

    def collect(self, result: "RunResult") -> MetricsRegistry:
        """Harvest all of *result*'s counters into the registry."""
        return collect_run_metrics(result, self.registry)


# -- collectors -------------------------------------------------------------


def _collect_memory(result: "RunResult", reg: MetricsRegistry) -> None:
    machine = result.machine
    ledger = machine.mem_ledger
    for cluster in range(result.config.n_clusters):
        prefix = f"memory.cluster{cluster}"
        reg.counter(f"{prefix}.busy_ns").inc(ledger.busy_ns[cluster])
        reg.counter(f"{prefix}.ideal_ns").inc(ledger.ideal_ns[cluster])
        reg.counter(f"{prefix}.stall_ns").inc(ledger.stall_ns(cluster))
        reg.counter(f"{prefix}.bursts").inc(ledger.bursts[cluster])
        reg.counter(f"{prefix}.words").inc(ledger.words[cluster])
    # Packet-level bank detail, when the packet memory system was used.
    memory = machine._memory
    if memory is not None and memory.stats.requests > 0:
        for bank in range(result.config.n_memory_modules):
            prefix = f"memory.bank{bank}"
            reg.counter(f"{prefix}.busy_ns").inc(memory.bank_busy_ns[bank])
            reg.counter(f"{prefix}.requests").inc(memory.bank_requests[bank])
            gauge = reg.gauge(f"{prefix}.queue_depth")
            gauge.set(memory.bank_queue_high_water[bank])
        reg.counter("memory.packet.requests").inc(memory.stats.requests)
        reg.counter("memory.packet.completions").inc(memory.stats.completions)
        reg.gauge("memory.packet.mean_round_trip_ns").set(
            memory.stats.mean_round_trip_ns
        )


def _collect_network(result: "RunResult", reg: MetricsRegistry) -> None:
    machine = result.machine
    load = machine.load
    ledger = machine.mem_ledger
    reg.gauge("network.streaming_ces.high_water").set(load.high_water)
    reg.gauge("network.streaming_ces.time_weighted_mean").set(
        load.time_weighted_mean()
    )
    for cluster in range(result.config.n_clusters):
        reg.gauge(f"network.cluster{cluster}.streaming_ces.high_water").set(
            load.cluster_high_water[cluster]
        )
    reg.counter("network.scalar_round_trips").inc(ledger.scalar_round_trips)
    reg.counter("network.scalar_round_trip_ns").inc(ledger.scalar_round_trip_ns)
    memory = machine._memory
    if memory is None:
        return
    for direction, net in (("fwd", memory.forward), ("bwd", memory.backward)):
        stats = net.stats
        if stats.packets_injected == 0:
            continue
        reg.counter(f"network.{direction}.packets_injected").inc(stats.packets_injected)
        reg.counter(f"network.{direction}.packets_delivered").inc(
            stats.packets_delivered
        )
        reg.gauge(f"network.{direction}.mean_latency_ns").set(stats.mean_latency_ns)
        for (stage, switch, port), count in sorted(stats.port_traffic.items()):
            reg.counter(
                f"network.{direction}.stage{stage}.sw{switch}.port{port}.forwarded"
            ).inc(count)
        for (stage, switch, port), depth in sorted(stats.queue_high_water.items()):
            reg.gauge(
                f"network.{direction}.stage{stage}.sw{switch}.port{port}.queue_depth"
            ).set(depth)


def _collect_xylem(result: "RunResult", reg: MetricsRegistry) -> None:
    accounting = result.accounting
    for activity, total_ns in accounting.table2_ns().items():
        name = activity.name.lower()
        reg.counter(f"xylem.{name}.ns").inc(total_ns)
        count = sum(
            accounting.activity_count(c, activity)
            for c in range(result.config.n_clusters)
        )
        reg.counter(f"xylem.{name}.count").inc(count)
    from repro.xylem.categories import TimeCategory

    for cluster in range(result.config.n_clusters):
        reg.counter(f"xylem.cluster{cluster}.kspin_ns").inc(
            accounting.category_ns(cluster, TimeCategory.KSPIN)
        )
    faults = result.fault_stats
    reg.counter("xylem.pagefault.sequential").inc(faults.sequential)
    reg.counter("xylem.pagefault.concurrent").inc(faults.concurrent)
    reg.counter("xylem.pagefault.joined").inc(faults.joined)
    reg.counter("xylem.pagefault.evictions").inc(faults.evictions)
    reg.counter("xylem.pagefault.count").inc(faults.sequential + faults.concurrent)
    sections = result.kernel.critical_sections
    reg.counter("xylem.locks.global.acquisitions").inc(
        sections.global_lock.acquisitions
    )
    reg.counter("xylem.locks.global.contended").inc(
        sections.global_lock.contended_acquisitions
    )
    cluster_acqs = sum(lock.acquisitions for lock in sections.cluster_locks)
    cluster_cont = sum(
        lock.contended_acquisitions for lock in sections.cluster_locks
    )
    reg.counter("xylem.locks.cluster.acquisitions").inc(cluster_acqs)
    reg.counter("xylem.locks.cluster.contended").inc(cluster_cont)


def _collect_runtime(result: "RunResult", reg: MetricsRegistry) -> None:
    stats = result.runtime.stats
    reg.counter("runtime.loops_posted").inc(stats.loops_posted)
    reg.counter("runtime.helper_joins").inc(stats.helper_joins)
    reg.counter("runtime.sdoall_pickups").inc(stats.sdoall_pickups)
    reg.counter("runtime.xdoall_pickups").inc(stats.xdoall_pickups)
    reg.counter("runtime.barriers").inc(stats.barriers)
    reg.counter("runtime.serial_sections").inc(stats.serial_sections)
    reg.counter("runtime.mc_loops").inc(stats.mc_loops)
    reg.counter("runtime.detaches").inc(stats.detaches)
    for cluster in result.machine.clusters:
        bus = cluster.ccbus
        prefix = f"runtime.ccbus.cluster{cluster.cluster_id}"
        reg.counter(f"{prefix}.dispatches").inc(bus.dispatches)
        reg.counter(f"{prefix}.synchronisations").inc(bus.synchronisations)
    board = result.board
    for ce_id in range(result.config.n_processors):
        reg.counter(f"runtime.ce{ce_id}.busy_ns").inc(board.busy_ns(ce_id))
    reg.gauge("runtime.concurrency.board_mean").set(board.mean_concurrency())
    reg.gauge("runtime.concurrency.statfx_total").set(
        result.statfx.total_concurrency()
    )


def collect_hpm_metrics(
    hpm: "CedarHpm | HpmView",
    reg: MetricsRegistry,
    events: "list[TraceEvent] | None" = None,
) -> MetricsRegistry:
    """Harvest a ``cedarhpm`` monitor's buffer state into ``hpm.*``.

    *events* overrides the event list to tally (e.g. the off-loaded
    buffer kept on a :class:`~repro.core.runner.RunResult`).
    """
    tallied = events if events is not None else hpm.offload()
    reg.counter("hpm.events_recorded").inc(len(tallied))
    reg.counter("hpm.dropped_events").inc(hpm.dropped)
    if hpm.buffer_capacity is not None:
        reg.gauge("hpm.buffer_capacity").set(hpm.buffer_capacity)
    for name, count in sorted(
        _TallyCounter(e.event_type.name.lower() for e in tallied).items()
    ):
        reg.counter(f"hpm.events.{name}").inc(count)
    return reg


def _collect_kernel(result: "RunResult", reg: MetricsRegistry) -> None:
    """Fold ``RunResult.kernel_stats`` into ``kernel.*`` metrics.

    Ratio-valued entries (``*_fraction``) become gauges; everything
    else is a monotone counter.
    """
    for key, value in sorted(result.kernel_stats.items()):
        name = f"kernel.{key}"
        if key.endswith("_fraction"):
            reg.gauge(name).set(value)
        else:
            reg.counter(name).inc(value)


def collect_run_metrics(
    result: "RunResult", registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Populate a registry with every metric a finished run exposes."""
    reg = registry if registry is not None else MetricsRegistry()
    reg.counter("run.ct_ns").inc(result.ct_ns)
    reg.gauge("run.wall_s").set(result.wall_s)
    reg.gauge("run.n_processors").set(result.config.n_processors)
    _collect_memory(result, reg)
    _collect_network(result, reg)
    _collect_xylem(result, reg)
    _collect_runtime(result, reg)
    _collect_kernel(result, reg)
    if result.hpm is not None:
        collect_hpm_metrics(result.hpm, reg, events=result.events)
    return reg
