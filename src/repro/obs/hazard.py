"""Tie-break audit: where same-instant ambiguity concentrates.

The perturbation sanitizer (:mod:`repro.analyze.race`) answers *whether*
a model's results depend on same-``(time, priority)`` event order; this
sink answers *where* the order pressure is.  It aggregates the kernel's
``on_tie_break`` notifications into per-site counts -- a site being the
unordered pair of event labels that tied -- so a diverging run can be
traced to the handful of model locations generating most of the
ambiguity, and a clean run documents how much ambiguity the sanitizer
actually exercised.

The sink is aggregation-only (counts, no per-occurrence records), so it
is safe to leave attached for full-length runs; capacity only bounds
the number of *distinct* sites tracked.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.obs.tracing import TraceSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Event

__all__ = ["TieBreakAuditSink"]


def _label(event: "Event") -> str:
    """Run-independent event label: class name plus process name."""
    name = getattr(event, "name", "")
    kind = type(event).__name__
    return f"{kind}:{name}" if name else kind


class TieBreakAuditSink(TraceSink):
    """Aggregate tie-break occurrences by site.

    Parameters
    ----------
    max_sites:
        Bound on distinct ``(first, second)`` label pairs tracked; ties
        at sites beyond the bound are still counted in :attr:`total`
        (and in :attr:`overflow`), just not attributed.
    """

    def __init__(self, max_sites: int = 4096) -> None:
        if max_sites <= 0:
            raise ValueError(f"max_sites must be positive, got {max_sites}")
        self.max_sites = max_sites
        #: Unordered label pair -> number of ties between the two.
        self.sites: Counter[tuple[str, str]] = Counter()
        #: Every tie observed, attributed or not.
        self.total = 0
        #: Ties not attributed because :attr:`max_sites` was reached.
        self.overflow = 0

    def on_tie_break(
        self, when: int, priority: int, first: "Event", second: "Event"
    ) -> None:
        self.total += 1
        a, b = sorted((_label(first), _label(second)))
        site = (a, b)
        if site not in self.sites and len(self.sites) >= self.max_sites:
            self.overflow += 1
            return
        self.sites[site] += 1

    def top_sites(self, n: int = 10) -> list[tuple[str, str, int]]:
        """The *n* hottest tie sites as ``(first, second, count)``.

        Sites with equal counts order lexicographically so the report
        is stable across runs.
        """
        ranked = sorted(self.sites.items(), key=lambda item: (-item[1], item[0]))
        return [(a, b, count) for (a, b), count in ranked[:n]]

    def report(self, top: int = 10) -> str:
        """Human-readable audit summary."""
        lines = [
            f"tie-break audit: {self.total} same-(time, priority) tie(s) "
            f"across {len(self.sites)} site(s)"
        ]
        if self.overflow:
            lines.append(
                f"  ({self.overflow} tie(s) unattributed: more than "
                f"{self.max_sites} distinct sites)"
            )
        for first, second, count in self.top_sites(top):
            lines.append(f"  {count:>8}  {first} <-> {second}")
        return "\n".join(lines)
