"""Per-process profiling of the simulation itself.

A :class:`ProcessProfiler` is a :class:`~repro.obs.tracing.TraceSink`
that attributes, to each *kind* of simulation process (``gm-request``,
``cdoall-ce*``, ``ctx-daemon-*``, ...):

* **host wall time** spent resuming the process's generator -- where
  the simulation spends real CPU time, i.e. what to optimise to reach
  the ROADMAP's "as fast as the hardware allows" goal;
* **simulated time** the process advances the clock by (the total
  delay of the timeouts it schedules) -- which model component
  dominates modelled time;
* resume and spawn counts.

Process names carry instance numbers (``cdoall-ce12``); the profiler
groups them by the name with trailing digits stripped, so the report
has one row per component kind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.tracing import TraceSink
from repro.sim.core import Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Event, Process

__all__ = ["ProcessProfileRecord", "ProcessProfiler"]

_DIGITS = "0123456789"


def profile_key(name: str) -> str:
    """Group key for a process name: trailing instance digits stripped."""
    stripped = name.rstrip(_DIGITS)
    if stripped != name:
        stripped = stripped.rstrip("-_.")
    return stripped or name


class ProcessProfileRecord:
    """Aggregated profile of one process kind."""

    __slots__ = ("key", "spawns", "resumes", "wall_s", "sim_ns")

    def __init__(self, key: str) -> None:
        self.key = key
        self.spawns = 0
        self.resumes = 0
        self.wall_s = 0.0
        self.sim_ns = 0

    def as_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "process": self.key,
            "spawns": self.spawns,
            "resumes": self.resumes,
            "wall_s": self.wall_s,
            "sim_ns": self.sim_ns,
        }


class ProcessProfiler(TraceSink):
    """Sink aggregating host-time and simulated-time per process kind."""

    def __init__(self) -> None:
        self.records: dict[str, ProcessProfileRecord] = {}
        #: Host seconds spent in callbacks not owned by any process
        #: (condition checks, stop callbacks...).
        self.other_wall_s = 0.0

    def _record(self, name: str) -> ProcessProfileRecord:
        key = profile_key(name)
        record = self.records.get(key)
        if record is None:
            record = ProcessProfileRecord(key)
            self.records[key] = record
        return record

    # -- TraceSink protocol -------------------------------------------------

    def on_process_started(self, process: "Process") -> None:
        self._record(process.name).spawns += 1

    def on_event_scheduled(
        self, event: "Event", when: int, by: "Process | None"
    ) -> None:
        # A Timeout scheduled from inside a process is that process
        # advancing simulated time.
        if by is not None and isinstance(event, Timeout):
            self._record(by.name).sim_ns += event.delay

    def on_callback(
        self, event: "Event", owner: "Process | None", wall_s: float
    ) -> None:
        if owner is None:
            self.other_wall_s += wall_s
            return
        record = self._record(owner.name)
        record.resumes += 1
        record.wall_s += wall_s

    # -- reporting ----------------------------------------------------------

    @property
    def total_wall_s(self) -> float:
        """Host seconds attributed across all process kinds."""
        return sum(r.wall_s for r in self.records.values()) + self.other_wall_s

    def top_by_wall(self, k: int = 10) -> list[ProcessProfileRecord]:
        """The *k* process kinds costing the most host time."""
        ranked = sorted(self.records.values(), key=lambda r: r.wall_s, reverse=True)
        return ranked[:k]

    def top_by_sim(self, k: int = 10) -> list[ProcessProfileRecord]:
        """The *k* process kinds advancing the most simulated time."""
        ranked = sorted(self.records.values(), key=lambda r: r.sim_ns, reverse=True)
        return ranked[:k]

    def report(self, k: int = 10) -> str:
        """Human-readable two-part top-K table."""
        lines = [
            f"{'process kind':24s} {'spawns':>8s} {'resumes':>9s} {'wall ms':>9s} {'sim ms':>9s}"
        ]
        lines.append("top by host wall time:")
        for record in self.top_by_wall(k):
            lines.append(
                f"  {record.key:22s} {record.spawns:8d} {record.resumes:9d} "
                f"{record.wall_s * 1e3:9.2f} {record.sim_ns / 1e6:9.2f}"
            )
        lines.append("top by simulated time:")
        for record in self.top_by_sim(k):
            lines.append(
                f"  {record.key:22s} {record.spawns:8d} {record.resumes:9d} "
                f"{record.wall_s * 1e3:9.2f} {record.sim_ns / 1e6:9.2f}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-serialisable profile (sorted by wall time, descending)."""
        ranked = sorted(self.records.values(), key=lambda r: r.wall_s, reverse=True)
        return {
            "other_wall_s": self.other_wall_s,
            "processes": [r.as_dict() for r in ranked],
        }
