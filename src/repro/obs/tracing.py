"""Structured tracing of the simulation kernel itself.

:class:`TraceSink` is the observer protocol the :class:`~repro.sim.Simulator`
dispatches to when -- and only when -- a sink is registered.  With no
sink the kernel's hot loop performs a single ``is None`` check per
event, so observability is strictly opt-in (measured in
``docs/observability.md``).

Two concrete sinks live here:

* :class:`MultiSink` -- fan-out to several sinks;
* :class:`KernelTraceBuffer` -- bounded structured buffer of kernel
  occurrences (event scheduled/processed, process started/ended), the
  raw material for debugging event-loop behaviour and for the Chrome
  trace exporter's kernel track.

The per-process profiler built on the same protocol lives in
:mod:`repro.obs.profile`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Event, Process

__all__ = ["TraceSink", "MultiSink", "KernelTraceRecord", "KernelTraceBuffer"]


class TraceSink:
    """Observer protocol for kernel occurrences (all methods no-op).

    Subclass and override what you need; the kernel only calls these
    when the sink is registered via ``Simulator.set_trace_sink``.

    Methods
    -------
    on_event_scheduled(event, when, by):
        *event* was pushed onto the queue for time *when*; *by* is the
        :class:`~repro.sim.Process` active at scheduling time (``None``
        when scheduled from outside any process).
    on_callback(event, owner, wall_s):
        One callback of *event* just ran, taking *wall_s* host seconds;
        *owner* is the :class:`~repro.sim.Process` the callback resumed
        (``None`` for non-process callbacks).
    on_event_processed(event, when):
        All callbacks of *event* have run at simulated time *when*.
    on_tie_break(when, priority, first, second):
        The kernel popped *first* ahead of *second* although both were
        scheduled for the same ``(when, priority)``: their relative
        order is decided only by queue insertion order.  The audit hook
        behind the schedule-order sanitizer
        (:class:`repro.analyze.sanitize.DeterminismSink`).
    on_process_started(process):
        A new simulation process was created.
    on_process_ended(process):
        A simulation process terminated (normally or by crash).
    """

    def on_event_scheduled(
        self, event: "Event", when: int, by: "Process | None"
    ) -> None:
        """Called when *event* is scheduled for time *when*."""

    def on_callback(self, event: "Event", owner: "Process | None", wall_s: float) -> None:
        """Called after each callback of a processed event has run."""

    def on_event_processed(self, event: "Event", when: int) -> None:
        """Called once all callbacks of *event* have run."""

    def on_tie_break(
        self, when: int, priority: int, first: "Event", second: "Event"
    ) -> None:
        """Called when two same-``(time, priority)`` events tie-break."""

    def on_process_started(self, process: "Process") -> None:
        """Called when a simulation process is created."""

    def on_process_ended(self, process: "Process") -> None:
        """Called when a simulation process terminates."""

    def overrides(self, hook: str) -> bool:
        """``True`` if this sink overrides *hook* from the no-op base.

        The kernel's run loops call this once, at sink registration,
        to skip dispatching hooks a sink inherits unchanged -- e.g. the
        two ``perf_counter()`` reads per callback are only paid when a
        sink actually overrides ``on_callback``.
        """
        return getattr(type(self), hook, None) is not getattr(TraceSink, hook, None)


class MultiSink(TraceSink):
    """Fan a kernel trace out to several sinks, in registration order."""

    def __init__(self, sinks: list[TraceSink]) -> None:
        self.sinks = list(sinks)

    def on_event_scheduled(
        self, event: "Event", when: int, by: "Process | None"
    ) -> None:
        for sink in self.sinks:
            sink.on_event_scheduled(event, when, by)

    def on_callback(
        self, event: "Event", owner: "Process | None", wall_s: float
    ) -> None:
        for sink in self.sinks:
            sink.on_callback(event, owner, wall_s)

    def on_event_processed(self, event: "Event", when: int) -> None:
        for sink in self.sinks:
            sink.on_event_processed(event, when)

    def on_tie_break(
        self, when: int, priority: int, first: "Event", second: "Event"
    ) -> None:
        for sink in self.sinks:
            sink.on_tie_break(when, priority, first, second)

    def on_process_started(self, process: "Process") -> None:
        for sink in self.sinks:
            sink.on_process_started(process)

    def on_process_ended(self, process: "Process") -> None:
        for sink in self.sinks:
            sink.on_process_ended(process)

    def overrides(self, hook: str) -> bool:
        """A fan-out needs *hook* if any child sink overrides it."""
        return any(sink.overrides(hook) for sink in self.sinks)


class KernelTraceRecord:
    """One structured kernel occurrence."""

    __slots__ = ("kind", "t_ns", "what", "detail")

    def __init__(self, kind: str, t_ns: int, what: str, detail: str = "") -> None:
        self.kind = kind
        self.t_ns = t_ns
        self.what = what
        self.detail = detail

    def as_dict(self) -> dict:
        """JSON-serialisable form."""
        return {"kind": self.kind, "t_ns": self.t_ns, "what": self.what, "detail": self.detail}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelTraceRecord {self.kind} {self.what} @ {self.t_ns}>"


class KernelTraceBuffer(TraceSink):
    """Bounded buffer of kernel occurrences.

    Parameters
    ----------
    capacity:
        Maximum records retained; once full, further records are
        dropped (and counted in :attr:`dropped`), mirroring the
        ``cedarhpm`` buffer semantics.
    record_scheduled:
        Also record event-scheduled occurrences (very high volume;
        off by default).
    """

    def __init__(self, capacity: int = 100_000, record_scheduled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.record_scheduled = record_scheduled
        self.records: list[KernelTraceRecord] = []
        self.dropped = 0

    def _append(self, kind: str, t_ns: int, what: str, detail: str = "") -> None:
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(KernelTraceRecord(kind, t_ns, what, detail))

    def on_event_scheduled(
        self, event: "Event", when: int, by: "Process | None"
    ) -> None:
        if self.record_scheduled:
            name = by.name if by is not None else ""
            self._append("scheduled", when, type(event).__name__, name)

    def on_event_processed(self, event: "Event", when: int) -> None:
        self._append("processed", when, type(event).__name__)

    def on_process_started(self, process: "Process") -> None:
        self._append("process_started", process.sim.now, process.name)

    def on_process_ended(self, process: "Process") -> None:
        self._append("process_ended", process.sim.now, process.name)

    def __len__(self) -> int:
        return len(self.records)
