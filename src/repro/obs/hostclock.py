"""Host wall-clock access for code outside the simulation kernel.

The determinism linter (rule ``CDR001``, see ``docs/static-analysis.md``)
bans direct wall-clock reads in model code: host time varies run to run,
so any model quantity derived from it breaks bit-for-bit
reproducibility.  Host timing is an *observability* concern, and this is
the one sanctioned place outside the kernel to obtain it.  Everything
measured through here is reported next to -- never mixed into -- the
simulated clock.
"""

from __future__ import annotations

from time import perf_counter
from types import TracebackType

__all__ = ["host_clock_s", "WallTimer"]


def host_clock_s() -> float:
    """Monotonic host timestamp in seconds (``time.perf_counter``)."""
    return perf_counter()


class WallTimer:
    """Measure the host wall-clock span of a ``with`` block.

    >>> with WallTimer() as timer:
    ...     pass
    >>> timer.elapsed_s >= 0.0
    True
    """

    __slots__ = ("_begin", "elapsed_s")

    def __init__(self) -> None:
        self._begin = 0.0
        #: Seconds spent inside the block (0.0 until the block exits).
        self.elapsed_s = 0.0

    def __enter__(self) -> "WallTimer":
        self._begin = host_clock_s()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_value: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        self.elapsed_s = host_clock_s() - self._begin
