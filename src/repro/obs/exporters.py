"""Run-report and Chrome-trace exporters.

Two machine-readable views of a finished run:

* :func:`build_run_report` / :func:`save_report` -- a single JSON
  document carrying the machine configuration, workload identity, RNG
  seed, git revision, host wall time and the full metrics snapshot
  (plus the per-process profile when one was collected).  This is the
  artifact the ``stats`` CLI writes and what regression tooling diffs.
* :func:`chrome_trace` / :func:`save_chrome_trace` -- the run's
  reconstructed activity intervals in Chrome trace-event JSON, loadable
  in Perfetto / ``chrome://tracing``: one track per CE under process 0
  showing serial/setup/pickup/iteration/barrier/... intervals, and one
  track per global-memory bank under process 1 (with busy-time counter
  samples when the packet-level memory system was exercised).
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs.instrument import collect_run_metrics
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runner import RunResult
    from repro.obs.profile import ProcessProfiler

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "build_run_report",
    "save_report",
    "chrome_trace",
    "save_chrome_trace",
    "git_revision",
]

#: Bump when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1

_CE_PID = 0
_BANK_PID = 1


def git_revision() -> str | None:
    """The repository's HEAD commit hash, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def build_run_report(
    result: "RunResult",
    registry: MetricsRegistry | None = None,
    profiler: "ProcessProfiler | None" = None,
) -> dict:
    """Assemble the JSON-serialisable run report for *result*.

    *registry* supplies the metrics snapshot; when omitted, a fresh
    registry is populated via
    :func:`~repro.obs.instrument.collect_run_metrics`.
    """
    if registry is None:
        registry = collect_run_metrics(result)
    report: dict[str, object] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "app": result.app_name,
        "n_processors": result.config.n_processors,
        "scale": result.scale,
        "extrapolation": result.extrapolation,
        "seed": result.kernel.params.seed,
        "git_sha": git_revision(),
        "config": dataclasses.asdict(result.config),
        "ct_ns": result.ct_ns,
        "ct_seconds": result.ct_seconds,
        "wall_s": result.wall_s,
        "fastpath_modes": dict(result.fastpath_modes),
        "n_trace_events": len(result.events),
        "metrics": registry.snapshot(),
    }
    if profiler is not None:
        report["profile"] = profiler.as_dict()
    return report


def save_report(report: "dict | list[dict]", path: "str | Path") -> None:
    """Write a run report (or a list of them) as indented JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


# -- Chrome trace-event export ---------------------------------------------


def _metadata_event(pid: int, tid: int, which: str, label: str) -> dict:
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "name": which,
        "args": {"name": label},
    }


def chrome_trace(result: "RunResult") -> dict:
    """Convert *result* into a Chrome trace-event JSON document.

    Timestamps are microseconds (the format's unit); one simulated
    nanosecond maps to 0.001 us.  Process 0 holds one track per CE with
    "X" (complete) events for every reconstructed activity interval;
    process 1 holds one track per global-memory bank, carrying "C"
    (counter) samples of cumulative bank busy time when the run used
    the packet-level memory system.
    """
    from repro.core.trace_analysis import extract_intervals

    config = result.config
    events: list[dict] = []
    events.append(_metadata_event(_CE_PID, 0, "process_name", "CEs"))
    events.append(_metadata_event(_BANK_PID, 0, "process_name", "global memory banks"))
    for ce_id in range(config.n_processors):
        events.append(_metadata_event(_CE_PID, ce_id, "thread_name", f"ce{ce_id}"))
    for bank in range(config.n_memory_modules):
        events.append(_metadata_event(_BANK_PID, bank, "thread_name", f"bank{bank}"))
    for interval in extract_intervals(result.events, end_ns=result.ct_ns):
        args: dict[str, object] = {"task_id": interval.task_id}
        if interval.construct is not None:
            args["construct"] = interval.construct
        events.append(
            {
                "ph": "X",
                "pid": _CE_PID,
                "tid": interval.processor_id,
                "ts": interval.start_ns / 1000,
                "dur": interval.duration_ns / 1000,
                "name": interval.kind.value,
                "cat": "activity",
                "args": args,
            }
        )
    memory = result.machine._memory
    if memory is not None and memory.stats.requests > 0:
        end_us = result.ct_ns / 1000
        for bank in range(config.n_memory_modules):
            for ts, value in ((0, 0), (end_us, memory.bank_busy_ns[bank])):
                events.append(
                    {
                        "ph": "C",
                        "pid": _BANK_PID,
                        "tid": bank,
                        "ts": ts,
                        "name": f"bank{bank}.busy_ns",
                        "args": {"busy_ns": value},
                    }
                )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "app": result.app_name,
            "n_processors": config.n_processors,
            "ct_ns": result.ct_ns,
        },
    }


def save_chrome_trace(result: "RunResult", path: "str | Path") -> None:
    """Write *result*'s Chrome trace-event JSON to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(result), fh)
        fh.write("\n")
