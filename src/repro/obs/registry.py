"""Dependency-free metrics registry for the simulator itself.

The rest of the reproduction measures the *modelled machine*; this
module measures the *model*.  Components register metrics under
hierarchical dotted names (``network.fwd.stage0.sw3.queue_depth``,
``memory.bank17.busy_ns``, ``xylem.pagefault.count``) so a whole run
can be snapshotted into one flat, JSON-serialisable dictionary and
diffed across runs -- the gem5-style statistics artifact.

Four metric kinds cover everything the stack needs:

* :class:`Counter` -- monotonically increasing count or total;
* :class:`Gauge` -- last-written value, with high/low water marks;
* :class:`Histogram` -- fixed-boundary bucket counts plus sum/min/max;
* :class:`Timeseries` -- ``(time, value)`` samples with bounded memory
  (the stride doubles when the buffer fills, keeping a uniform
  subsample).

All operations are a few dict/list operations; no locks, no I/O, no
third-party dependencies.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import TypeVar, cast

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timeseries",
    "MetricsRegistry",
    "validate_name",
]

#: Dotted hierarchical names: lowercase segments of [a-z0-9_] separated
#: by single dots, e.g. ``memory.cluster0.busy_ns``.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def validate_name(name: str) -> str:
    """Validate a hierarchical metric name; returns it unchanged."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: use dotted lowercase segments "
            "like 'memory.bank17.busy_ns'"
        )
    return name


class Counter:
    """A monotonically increasing counter (count or accumulated total)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another counter's :meth:`snapshot` into this one (sum)."""
        self.inc(cast("int | float", snapshot["value"]))

    def snapshot(self) -> dict:
        """JSON-serialisable state."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-value metric with high- and low-water marks."""

    __slots__ = ("name", "value", "high_water", "low_water", "_written")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0
        self.high_water: int | float = 0
        self.low_water: int | float = 0
        self._written = False

    def set(self, value: int | float) -> None:
        """Record the gauge's current value."""
        self.value = value
        if not self._written:
            self.high_water = self.low_water = value
            self._written = True
        else:
            if value > self.high_water:
                self.high_water = value
            if value < self.low_water:
                self.low_water = value

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another gauge's :meth:`snapshot` into this one.

        The merged gauge keeps the *last* value written and the extreme
        high/low water marks across both recordings.
        """
        self.set(cast("int | float", snapshot["high_water"]))
        self.set(cast("int | float", snapshot["low_water"]))
        self.set(cast("int | float", snapshot["value"]))

    def snapshot(self) -> dict:
        """JSON-serialisable state."""
        return {
            "kind": self.kind,
            "value": self.value,
            "high_water": self.high_water,
            "low_water": self.low_water,
        }


class Histogram:
    """Fixed-boundary histogram: counts per bucket plus sum/min/max.

    ``boundaries`` are the inclusive upper edges of the finite buckets;
    one implicit overflow bucket catches everything larger.
    """

    __slots__ = ("name", "boundaries", "counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, boundaries: Iterable[float]) -> None:
        edges = sorted(float(b) for b in boundaries)
        if not edges:
            raise ValueError(f"histogram {name} needs at least one bucket boundary")
        self.name = name
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        lo, hi = 0, len(self.boundaries)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.boundaries[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        The snapshot must carry identical bucket boundaries -- merged
        histograms are only meaningful bucket-for-bucket.
        """
        boundaries = [float(b) for b in cast("list[float]", snapshot["boundaries"])]
        if boundaries != self.boundaries:
            raise ValueError(
                f"histogram {self.name}: cannot merge boundaries "
                f"{boundaries} into {self.boundaries}"
            )
        counts = cast("list[int]", snapshot["counts"])
        for i, count in enumerate(counts):
            self.counts[i] += count
        merged = cast(int, snapshot["count"])
        self.count += merged
        self.total += cast(float, snapshot["total"])
        if merged:
            low = cast(float, snapshot["min"])
            high = cast(float, snapshot["max"])
            if low < self.min:
                self.min = low
            if high > self.max:
                self.max = high

    def quantile(self, q: float) -> float | None:
        """Approximate *q*-quantile (0..1) from the bucket counts.

        Returns the upper edge of the bucket holding the quantile rank
        (``max`` for the overflow bucket), or ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                return self.max
        return self.max

    def snapshot(self) -> dict:
        """JSON-serialisable state."""
        return {
            "kind": self.kind,
            "boundaries": self.boundaries,
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Timeseries:
    """Bounded ``(time, value)`` sampler.

    When the buffer reaches *max_samples* every other retained sample
    is dropped and the acceptance stride doubles, so memory stays
    bounded while the kept samples remain uniformly spaced in arrival
    order.
    """

    __slots__ = ("name", "max_samples", "samples", "_stride", "_pending")

    kind = "timeseries"

    def __init__(self, name: str, max_samples: int = 1024) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self.samples: list[tuple[int | float, int | float]] = []
        self._stride = 1
        self._pending = 0

    def sample(self, time: int | float, value: int | float) -> None:
        """Record one sample (decimated once the buffer is full)."""
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        self.samples.append((time, value))
        if len(self.samples) >= self.max_samples:
            self.samples = self.samples[::2]
            self._stride *= 2

    def snapshot(self) -> dict:
        """JSON-serialisable state."""
        return {
            "kind": self.kind,
            "stride": self._stride,
            "samples": [list(s) for s in self.samples],
        }


_M = TypeVar("_M", Counter, Gauge, Histogram, Timeseries)


class MetricsRegistry:
    """Hierarchically-named registry of metrics.

    Accessors are get-or-create and idempotent: asking twice for the
    same name returns the same object; asking for an existing name with
    a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | Timeseries] = {}

    def _get_or_create(self, name: str, factory: Callable[[str], _M], kind: str) -> _M:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(validate_name(name))
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, not {kind}"
            )
        return cast(_M, metric)

    def counter(self, name: str) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(name, Gauge, "gauge")

    def histogram(self, name: str, boundaries: Iterable[float]) -> Histogram:
        """Get or create a :class:`Histogram` with *boundaries*."""
        return self._get_or_create(
            name, lambda n: Histogram(n, boundaries), "histogram"
        )

    def timeseries(self, name: str, max_samples: int = 1024) -> Timeseries:
        """Get or create a :class:`Timeseries`."""
        return self._get_or_create(
            name, lambda n: Timeseries(n, max_samples), "timeseries"
        )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def get(self, name: str) -> Counter | Gauge | Histogram | Timeseries | None:
        """The metric registered under *name*, or ``None``."""
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> list[str]:
        """Sorted metric names, optionally restricted to a dotted prefix."""
        if not prefix:
            return sorted(self._metrics)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(n for n in self._metrics if n == prefix or n.startswith(dotted))

    def value(self, name: str) -> int | float:
        """Shortcut for the scalar value of a counter/gauge."""
        metric = self._metrics[name]
        if not isinstance(metric, (Counter, Gauge)):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a scalar")
        return metric.value

    def snapshot(self) -> dict[str, dict]:
        """All metrics as one flat, JSON-serialisable dict (sorted)."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def merge_snapshot(
        self, snapshot: Mapping[str, Mapping[str, object]], prefix: str = ""
    ) -> None:
        """Fold a whole :meth:`snapshot` into this registry.

        The cross-process seam: a worker ships its registry's snapshot
        (plain dicts pickle cheaply; live metric objects never cross the
        pool boundary) and the coordinator merges it here, optionally
        under a dotted *prefix* namespace.  Counters sum, gauges keep
        last value + extreme water marks, histograms add bucket-for-
        bucket.  Timeseries are skipped: their time bases are per-worker
        host clocks and do not compose.
        """
        for name, snap in snapshot.items():
            kind = snap["kind"]
            full = f"{prefix}.{name}" if prefix else name
            if kind == "counter":
                self.counter(full).merge(snap)
            elif kind == "gauge":
                self.gauge(full).merge(snap)
            elif kind == "histogram":
                boundaries = cast("list[float]", snap["boundaries"])
                self.histogram(full, boundaries).merge(snap)
