"""Discrete-event simulation kernel.

This module implements a small, dependency-free, generator-based
discrete-event simulator in the style of SimPy.  Simulation *processes*
are Python generators that ``yield`` :class:`Event` objects; the
:class:`Simulator` resumes a process when the event it waits on is
processed.

The simulated clock is a plain integer.  Throughout this project one
clock unit is one **nanosecond** of Cedar time, which comfortably covers
both the 50 ns resolution of the ``cedarhpm`` monitor modelled in
:mod:`repro.hpm` and the 170 ns CE cycle of the modelled hardware.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(10)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> sim.now
10
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator, Iterable
from time import perf_counter
from typing import TYPE_CHECKING

from repro.sim.errors import (
    EmptySchedule,
    Interrupt,
    RunawaySimulation,
    SimulationError,
    StopSimulation,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracing import TraceSink

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "PENDING",
    "Process",
    "Simulator",
    "Timeout",
]


class _Pending:
    """Sentinel for the value of an event that has not been triggered."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Unique sentinel object marking an untriggered event's value.
PENDING = _Pending()

#: Priority for urgent (kernel-internal) events.
URGENT = 0
#: Priority for normal events.
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    An event moves through three states:

    * *pending* -- not yet triggered; ``triggered`` is ``False``;
    * *triggered* -- scheduled to be processed; has a value;
    * *processed* -- callbacks have run; ``processed`` is ``True``.

    Processes wait for an event by ``yield``-ing it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callables invoked (with this event) when the event is processed.
        #: ``None`` once the event has been processed.
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: object = PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (value is not an exception)."""
        return self._ok

    @property
    def value(self) -> object:
        """The value of the event, if it has been triggered."""
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with an optional *value*."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* as its value.

        A failed event re-raises the exception inside every process
        waiting on it.  If no process waits on it, the simulator raises
        the exception at the end of the step (unless :meth:`defused`).
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.sim.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.sim, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.sim, Condition.any_events, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed *delay*."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a new process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        sim.schedule(self, priority=URGENT)


class Process(Event):
    """A simulation process wrapping a generator.

    The process itself is an event that triggers when the generator
    terminates; its value is the generator's return value.  Other
    processes can therefore wait for a process to finish by yielding it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str | None = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits for (``None`` if active
        #: or terminated).
        self._target: Event | None = Initialize(sim, self)
        if sim._sink is not None:
            sim._sink.on_process_started(self)

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator terminates."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Interrupt this process, raising :class:`Interrupt` inside it."""
        if self._value is not PENDING:
            raise SimulationError(f"{self.name} has terminated and cannot be interrupted")
        if self is self.sim.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._defused = True
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.sim.schedule(event, priority=URGENT)
        # Unsubscribe from the event the process was waiting on.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of *event*."""
        self.sim._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed; re-raise inside the process.
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, exc.__traceback__)
            except StopIteration as stop:
                # Process terminated normally.
                self._target = None
                self._ok = True
                self._value = stop.value
                self.sim.schedule(self)
                if self.sim._sink is not None:
                    self.sim._sink.on_process_ended(self)
                break
            except BaseException as exc:
                # Process crashed.
                self._target = None
                self._ok = False
                self._value = exc
                self.sim.schedule(self)
                if self.sim._sink is not None:
                    self.sim._sink.on_process_ended(self)
                break

            if next_event.callbacks is not None:
                # The event is pending or triggered-but-unprocessed:
                # subscribe and go to sleep.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # The event was already processed: continue immediately with
            # its value (do not go back through the event queue).
            event = next_event
            if not event._ok and not event._defused:
                # Waiting on an already-failed, undefused event.
                event._defused = True
        self.sim._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} {'alive' if self.is_alive else 'dead'}>"


class Condition(Event):
    """An event that triggers when a condition over child events holds.

    Use :class:`AllOf` / :class:`AnyOf` (or the ``&`` / ``|`` operators
    on events) rather than instantiating this class directly.  The value
    of a condition is a dict mapping each *triggered* child event to its
    value.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("events belong to different simulators")

        # Check already-processed events first, then subscribe to the rest.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and self._value is PENDING:
            self.succeed({})

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Condition for :class:`AllOf`: every child has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Condition for :class:`AnyOf`: at least one child triggered."""
        return count > 0 or not events

    def _collect_values(self) -> dict[Event, object]:
        return {event: event._value for event in self._events if event.callbacks is None}

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Event that triggers once *all* of *events* have triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, Condition.all_events, events)


class AnyOf(Condition):
    """Event that triggers once *any* of *events* has triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, Condition.any_events, events)


class Simulator:
    """The discrete-event simulator: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (integer nanoseconds).
    trace_sink:
        Optional kernel observer (see :mod:`repro.obs.tracing`).  With
        no sink registered the event loop performs a single ``is None``
        check per occurrence and dispatches nothing.
    """

    def __init__(
        self, initial_time: int = 0, trace_sink: "TraceSink | None" = None
    ) -> None:
        self._now = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Process | None = None
        self._sink: "TraceSink | None" = trace_sink

    @property
    def now(self) -> int:
        """Current simulated time (nanoseconds)."""
        return self._now

    @property
    def trace_sink(self) -> "TraceSink | None":
        """The registered kernel observer, if any."""
        return self._sink

    def set_trace_sink(self, sink: "TraceSink | None") -> None:
        """Register (or, with ``None``, remove) the kernel observer."""
        self._sink = sink

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: int, value: object = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new :class:`Process` running *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all *events* have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of *events* has triggered."""
        return AnyOf(self, events)

    # -- scheduling and execution ---------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: int = 0) -> None:
        """Schedule *event* for processing ``delay`` ns from now."""
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))
        if self._sink is not None:
            self._sink.on_event_scheduled(event, self._now + delay, self._active_process)

    def peek(self) -> int | float:
        """Time of the next scheduled event (``inf`` if none)."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events remain.
        """
        try:
            when, priority, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        if (
            self._sink is not None
            and self._queue
            and self._queue[0][0] == when
            and self._queue[0][1] == priority
        ):
            # Tie-break audit: this event beat the queue head only by
            # insertion order (same time, same priority).
            self._sink.on_tie_break(when, priority, event, self._queue[0][3])
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        sink = self._sink
        if sink is None:
            for callback in callbacks:
                callback(event)
        else:
            for callback in callbacks:
                owner = getattr(callback, "__self__", None)
                begin = perf_counter()
                callback(event)
                sink.on_callback(
                    event,
                    owner if isinstance(owner, Process) else None,
                    perf_counter() - begin,
                )
            sink.on_event_processed(event, when)
        if not event._ok and not event._defused:
            # An unhandled failure: crash the simulation.
            exc = event._value
            raise exc

    def run(
        self,
        until: Event | int | None = None,
        max_events: int | None = None,
        max_sim_time: int | None = None,
    ) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``  -- run until no events remain;
            an ``int`` -- run until the clock reaches that time;
            an :class:`Event` -- run until that event is processed, and
            return its value.
        max_events:
            Watchdog: raise :class:`RunawaySimulation` once this many
            events have been processed by this call.
        max_sim_time:
            Watchdog: raise :class:`RunawaySimulation` once the next
            event lies beyond this simulated time (nanoseconds).

        With neither watchdog set the event loop runs on the original
        zero-overhead path.
        """
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        if max_sim_time is not None and max_sim_time < self._now:
            raise ValueError(
                f"max_sim_time ({max_sim_time}) must be >= now ({self._now})"
            )
        stop_event: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event._value
                stop_event.callbacks.append(self._stop_callback)
            else:
                at = int(until)
                if at <= self._now:
                    raise ValueError(f"until ({at}) must be greater than now ({self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks.append(self._stop_callback)
                self.schedule(stop_event, priority=URGENT, delay=at - self._now)

        try:
            if max_events is None and max_sim_time is None:
                while True:
                    self.step()
            else:
                self._run_watched(max_events, max_sim_time)
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if stop_event is not None and isinstance(until, Event):
                if stop_event.callbacks is not None:
                    raise SimulationError(
                        "no more events scheduled but the until-event has not triggered"
                    ) from None
            return None

    def _run_watched(self, max_events: int | None, max_sim_time: int | None) -> None:
        """Watched event loop: step until a limit trips.

        Kept out of the default :meth:`run` loop so unwatched runs pay
        nothing.  The queue head is peeked before each step so the
        raised :class:`RunawaySimulation` can carry the last event the
        kernel actually processed.
        """
        processed = 0
        last_event: Event | None = None
        while True:
            if max_events is not None and processed >= max_events:
                raise RunawaySimulation(
                    limit=f"max_events={max_events}",
                    events_processed=processed,
                    sim_time_ns=self._now,
                    last_event=last_event,
                )
            if (
                max_sim_time is not None
                and self._queue
                and self._queue[0][0] > max_sim_time
            ):
                raise RunawaySimulation(
                    limit=f"max_sim_time={max_sim_time}",
                    events_processed=processed,
                    sim_time_ns=self._now,
                    last_event=last_event,
                )
            if self._queue:
                last_event = self._queue[0][3]
            self.step()
            processed += 1

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if not event._ok:
            # The until-event failed (e.g. the main process crashed):
            # propagate the failure out of run() instead of returning
            # the exception object as if it were the event's value.
            event._defused = True
            value = event._value
            if isinstance(value, BaseException):
                raise value
        raise StopSimulation(event._value)
