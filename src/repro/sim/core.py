"""Discrete-event simulation kernel.

This module implements a small, dependency-free, generator-based
discrete-event simulator in the style of SimPy.  Simulation *processes*
are Python generators that ``yield`` :class:`Event` objects; the
:class:`Simulator` resumes a process when the event it waits on is
processed.

The simulated clock is a plain integer.  Throughout this project one
clock unit is one **nanosecond** of Cedar time, which comfortably covers
both the 50 ns resolution of the ``cedarhpm`` monitor modelled in
:mod:`repro.hpm` and the 170 ns CE cycle of the modelled hardware.

Fast paths
----------
The kernel is the innermost loop of every sweep cell, so a few hot-path
representations deviate from the textbook implementation (behaviour is
identical; see ``docs/architecture.md`` "Kernel fast paths"):

* ``Event.callbacks`` is a *variant* field: ``None`` once processed,
  the :data:`_NO_WAITERS` sentinel while nobody waits, a bare callable
  for the (dominant) single-waiter case, and a ``list`` only once two
  or more waiters subscribe.  Single-waiter events never allocate a
  callback list.
* Heap entries are ``((when << 1) | priority, eid, event)`` 3-tuples.
  With ``URGENT == 0`` and ``NORMAL == 1`` the packed integer key
  preserves exactly the old ``(when, priority, eid)`` ordering.
* :meth:`Simulator.timeout` recycles :class:`Timeout` objects through a
  free-list pool.  An event is only recycled when the run loop holds
  the sole remaining reference (checked via ``sys.getrefcount``), so
  user code that keeps a timeout around never observes reuse.
* :meth:`Simulator.run` picks one of three specialised loops: a minimal
  loop when no trace sink and no watchdog is installed, a sink-aware
  loop that skips every hook the sink does not override (see
  :meth:`repro.obs.tracing.TraceSink.overrides`), and the watched loop
  carrying the runaway-simulation counters.
* :class:`Condition` unsubscribes from still-pending child events as
  soon as it triggers, so the losing side of an ``any_of`` race becomes
  a no-waiter event instead of invoking a stale callback.
* A process may yield a bare non-negative ``int`` as shorthand for
  ``sim.timeout(n)`` (the *direct-delay yield*).  The kernel services
  it through a per-process recycled :class:`Timeout` -- same scheduling
  order, same trace records, zero allocation.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(10)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> sim.now
10
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator, Iterable
from sys import getrefcount
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.sim.errors import (
    EmptySchedule,
    Interrupt,
    RunawaySimulation,
    SimulationError,
    StopSimulation,
)
from repro.sim.policy import compiled_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracing import TraceSink

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "PENDING",
    "Process",
    "Simulator",
    "Timeout",
]


class _Pending:
    """Sentinel for the value of an event that has not been triggered."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Unique sentinel object marking an untriggered event's value.
PENDING = _Pending()

#: Priority for urgent (kernel-internal) events.
URGENT = 0
#: Priority for normal events.
NORMAL = 1

#: Maximum number of recycled :class:`Timeout` objects kept per simulator.
_POOL_LIMIT = 256

#: Base of the end-of-tick eid band used by :meth:`Simulator.schedule_at_tail`.
#: Normal eids stay below ``1 << 128`` (the sequential counter trivially;
#: perturbed eids by construction), so tail entries lose every same-key
#: tie deterministically, in both normal and perturbed modes.
_TAIL_EID_BASE = 1 << 128

#: Base of the *observe* sub-band: tail entries that only read settled
#: state.  It sits above the commit band so every end-of-tick commit
#: (arbitration grants, fault resolutions) -- including commits that
#: cascade into fresh same-instant normal events -- runs before any
#: observer, keeping observations pure and order-independent.
_TAIL_OBSERVE_EID_BASE = 1 << 129


def _perturbed_eids(seed: int) -> Callable[[], int]:
    """Seeded eid source for the tie-break perturbation sanitizer.

    Returns a drop-in replacement for the sequential eid counter that
    emits ``(splitmix64(seed, n) << 64) | n``: unique, deterministic for
    a given *seed*, and *scrambled* -- so same-``(time, priority)`` heap
    entries pop in a seed-dependent permutation instead of insertion
    order.  Entries with distinct keys are untouched (the eid only
    breaks exact key ties), which is what makes result divergence under
    different seeds a confirmed order-dependence hazard rather than a
    timing artefact.  See ``repro.analyze.race``.
    """
    mask = (1 << 64) - 1
    state = seed & mask
    counter = 0

    def next_eid() -> int:
        nonlocal state, counter
        state = (state + 0x9E3779B97F4A7C15) & mask
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
        z ^= z >> 31
        counter += 1
        return (z << 64) | counter

    return next_eid

#: A single event callback.
_Callback = Callable[["Event"], None]


class _NoWaiters:
    """Sentinel marking a live event that nobody has subscribed to.

    It is typed as a callback so ``Event.callbacks`` can hold it, but it
    must never actually be invoked: the run loops test for it by
    identity before dispatching.
    """

    __slots__ = ()

    def __call__(self, event: "Event") -> None:  # pragma: no cover - guard
        raise AssertionError("_NO_WAITERS must never be invoked")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<NO_WAITERS>"


_NO_WAITERS = _NoWaiters()

#: Hoisted heap primitive: ``heapq.heappush`` is called once per
#: scheduled event, so the module-global binding saves an attribute
#: lookup on every push.
_heappush = heapq.heappush


class Event:
    """An event that may happen at some point in simulated time.

    An event moves through three states:

    * *pending* -- not yet triggered; ``triggered`` is ``False``;
    * *triggered* -- scheduled to be processed; has a value;
    * *processed* -- callbacks have run; ``processed`` is ``True``.

    Processes wait for an event by ``yield``-ing it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Waiters invoked (with this event) when the event is
        #: processed.  A variant field: ``None`` once processed,
        #: :data:`_NO_WAITERS` while nobody waits, a bare callable for a
        #: single waiter, a list for two or more.
        self.callbacks: _Callback | list[_Callback] | None = _NO_WAITERS
        self._value: object = PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (value is not an exception)."""
        return self._ok

    @property
    def value(self) -> object:
        """The value of the event, if it has been triggered."""
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    def _subscribe(self, callback: _Callback) -> None:
        """Add a waiter, upgrading the variant representation as needed."""
        cbs = self.callbacks
        if cbs is _NO_WAITERS:
            self.callbacks = callback
        elif type(cbs) is list:
            cbs.append(callback)
        elif cbs is None:
            raise SimulationError("cannot subscribe to a processed event")
        else:
            self.callbacks = [cbs, callback]

    def _unsubscribe(self, callback: _Callback) -> None:
        """Remove a waiter if present (processed events are left alone)."""
        cbs = self.callbacks
        if cbs is callback:
            self.callbacks = _NO_WAITERS
        elif type(cbs) is list:
            try:
                cbs.remove(callback)
            except ValueError:
                pass

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with an optional *value*."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* as its value.

        A failed event re-raises the exception inside every process
        waiting on it.  If no process waits on it, the simulator raises
        the exception at the end of the step (unless :meth:`defused`).
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.sim.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.sim, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.sim, Condition.any_events, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed *delay*."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a new process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self.callbacks = process
        self._ok = True
        self._value = None
        sim.schedule(self, priority=URGENT)


class Process(Event):
    """A simulation process wrapping a generator.

    The process itself is an event that triggers when the generator
    terminates; its value is the generator's return value.  Other
    processes can therefore wait for a process to finish by yielding it.
    """

    __slots__ = ("_generator", "_send", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str | None = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        #: Cached ``generator.send`` (one send per resume, so the bound
        #: method is worth caching).
        self._send: Callable[[object], Any] = generator.send
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits for (``None`` if active
        #: or terminated).
        self._target: Event | None = Initialize(sim, self)
        if sim._sink is not None:
            sim._sink.on_process_started(self)

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator terminates."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Interrupt this process, raising :class:`Interrupt` inside it."""
        if self._value is not PENDING:
            raise SimulationError(f"{self.name} has terminated and cannot be interrupted")
        if self is self.sim.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._defused = True
        event._value = Interrupt(cause)
        event.callbacks = self
        self.sim.schedule(event, priority=URGENT)
        # Unsubscribe from the event the process was waiting on (an
        # abandoned direct-delay carrier simply drains as a no-waiter
        # pop and returns to the pool).
        target = self._target
        if target is not None:
            target._unsubscribe(self)

    def _terminate(self, ok: bool, value: object) -> None:
        """Record generator termination and trigger this process event."""
        self._target = None
        self._ok = ok
        self._value = value
        sim = self.sim
        sim.schedule(self)
        if sim._sink is not None:
            sim._sink.on_process_ended(self)

    def _continue(self, next_event: Event) -> None:
        """Wait on *next_event* (the non-delay tail of an inlined resume).

        An already-processed event resumes the generator again instead
        of going back through the event queue.
        """
        cbs = next_event.callbacks
        if cbs is _NO_WAITERS:
            # First (and usually only) waiter: no list allocation.
            next_event.callbacks = self
        elif cbs is None:
            if not next_event._ok and not next_event._defused:
                # Waiting on an already-failed, undefused event.
                next_event._defused = True
            self._resume(next_event)
            return
        elif type(cbs) is list:
            cbs.append(self)
        else:
            next_event.callbacks = [cbs, self]
        self._target = next_event

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of *event*.

        This is the generic resume used by :meth:`Simulator.step`, list
        dispatch and failure delivery; the specialised run loops inline
        the dominant single-waiter success case (see ``_run_fast``).
        """
        sim = self.sim
        sim._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._send(event._value)
                else:
                    # The event failed; re-raise inside the process.
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, exc.__traceback__)
            except StopIteration as stop:
                # Process terminated normally.
                self._terminate(True, stop.value)
                break
            except BaseException as exc2:
                # Process crashed.
                self._terminate(False, exc2)
                break

            if type(next_event) is int:
                # Direct-delay yield: ``yield n`` means
                # ``yield sim.timeout(n)``, serviced through the
                # simulator's timeout pool (the run loops re-arm the
                # popped carrier in place instead).  Scheduling order
                # and trace records are identical to ``timeout(n)``.
                delay = next_event
                if delay < 0:
                    self._terminate(False, ValueError(f"negative delay {delay}"))
                    break
                pool = sim._timeout_pool
                if pool:
                    tick = pool.pop()
                    tick._value = None
                    sim.timeouts_reused += 1
                else:
                    tick = Timeout.__new__(Timeout)
                    tick.sim = sim
                    tick._value = None
                    tick._ok = True
                    tick._defused = False
                    sim.timeouts_created += 1
                tick.delay = delay
                tick.callbacks = self
                self._target = tick
                when = sim._now + delay
                _heappush(sim._queue, ((when << 1) | 1, sim._eid_next(), tick))
                hook = sim._sched_hook
                if hook is not None:
                    hook(tick, when, self)
                break

            cbs = next_event.callbacks
            if cbs is _NO_WAITERS:
                # First (and usually only) waiter: no list allocation.
                next_event.callbacks = self
            elif cbs is None:
                # The event was already processed: continue immediately
                # with its value (do not go back through the event queue).
                event = next_event
                if not event._ok and not event._defused:
                    # Waiting on an already-failed, undefused event.
                    event._defused = True
                continue
            elif type(cbs) is list:
                cbs.append(self)
            else:
                next_event.callbacks = [cbs, self]
            self._target = next_event
            break
        sim._active_process = None

    def __call__(self, event: Event) -> None:
        """Processes subscribe *themselves* as event callbacks.

        Storing the process (rather than a bound method) in
        ``Event.callbacks`` lets the run loops recognise the
        process-resume case by a single ``type()`` check and inline it;
        generic dispatch sites simply call the process like any other
        callback.
        """
        self._resume(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} {'alive' if self.is_alive else 'dead'}>"


class Condition(Event):
    """An event that triggers when a condition over child events holds.

    Use :class:`AllOf` / :class:`AnyOf` (or the ``&`` / ``|`` operators
    on events) rather than instantiating this class directly.  The value
    of a condition is a dict mapping each *triggered* child event to its
    value.
    """

    __slots__ = ("_evaluate", "_events", "_count", "_check_cb")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._evaluate = evaluate
        events_list = list(events)
        self._events = events_list
        self._count = 0
        check: _Callback = self._check
        self._check_cb = check

        for event in events_list:
            if event.sim is not sim:
                raise SimulationError("events belong to different simulators")

        # Check already-processed events first, then subscribe to the
        # rest (the variant subscription is inlined: this path runs once
        # per child of every any-of/all-of wait).
        no_waiters = _NO_WAITERS
        for event in events_list:
            cbs = event.callbacks
            if cbs is no_waiters:
                event.callbacks = check
            elif cbs is None:
                self._check(event)
            elif type(cbs) is list:
                cbs.append(check)
            else:
                event.callbacks = [cbs, check]

        if not events_list and self._value is PENDING:
            self.succeed({})

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Condition for :class:`AllOf`: every child has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Condition for :class:`AnyOf`: at least one child triggered."""
        return count > 0 or not events

    def _collect_values(self) -> dict[Event, object]:
        return {event: event._value for event in self._events if event.callbacks is None}

    def _detach(self) -> None:
        """Lazily cancel the waits on still-pending child events.

        Once the condition has triggered, the remaining children no
        longer need to call back: unsubscribing here turns abandoned
        events (e.g. the loser of an ``any_of`` race) into no-waiter
        events the run loop can skip and recycle.
        """
        check = self._check_cb
        for event in self._events:
            if event.callbacks is not None:
                event._unsubscribe(check)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self._detach()
        elif self._evaluate(self._events, self._count):
            # Inline of ``succeed()``: the PENDING guard above already
            # ensures single-trigger, and ``_ok`` starts out True.
            self._value = self._collect_values()
            self.sim.schedule(self)
            self._detach()


class AllOf(Condition):
    """Event that triggers once *all* of *events* have triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, Condition.all_events, events)


class AnyOf(Condition):
    """Event that triggers once *any* of *events* has triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, Condition.any_events, events)


class Simulator:
    """The discrete-event simulator: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (integer nanoseconds).
    trace_sink:
        Optional kernel observer (see :mod:`repro.obs.tracing`).  With
        no sink registered the event loop performs a single ``is None``
        check per occurrence and dispatches nothing.  With a sink
        registered, only the hooks the sink actually overrides are
        dispatched (see :meth:`repro.obs.tracing.TraceSink.overrides`).

    Attributes
    ----------
    timeouts_created / timeouts_reused / ticks_rearmed:
        Fast-path counters: how many :class:`Timeout` objects were
        allocated, how many were recycled through the free-list pool,
        and how many direct-delay yields re-armed the just-popped
        carrier without touching the pool at all.
    """

    #: Feature flag for the direct-delay yield protocol (``yield n``),
    #: so benchmark/model code can fall back to ``yield sim.timeout(n)``
    #: against older kernels.
    SUPPORTS_DIRECT_DELAY = True

    __slots__ = (
        "_now",
        "_queue",
        "_eid_next",
        "_tail_seq",
        "_active_process",
        "_timeout_pool",
        "timeouts_created",
        "timeouts_reused",
        "ticks_rearmed",
        "tie_perturbed",
        "compiled_steps",
        "_sink",
        "_sched_hook",
        "_sink_cb",
        "_sink_tie",
        "_sink_processed",
    )

    def __init__(
        self, initial_time: int = 0, trace_sink: "TraceSink | None" = None
    ) -> None:
        self._now = int(initial_time)
        #: Heap of ``((when << 1) | priority, eid, event)`` entries.
        self._queue: list[tuple[int, int, Event]] = []
        self._eid_next = itertools.count().__next__
        self._tail_seq = 0
        self._active_process: Process | None = None
        self._timeout_pool: list[Timeout] = []
        self.timeouts_created = 0
        self.timeouts_reused = 0
        self.ticks_rearmed = 0
        #: True once :meth:`perturb_tie_breaks` armed the seeded eid
        #: source.  The analytic fast paths consult this at construction
        #: so perturbed runs exercise the exact machinery.
        self.tie_perturbed = False
        #: Events dispatched by the compiled ``_corefast`` loop (0 when
        #: the pure-Python loops served the whole run).
        self.compiled_steps = 0
        self._sink: "TraceSink | None" = None
        self._sched_hook: Callable[[Event, int, Process | None], None] | None = None
        self._sink_cb = False
        self._sink_tie = False
        self._sink_processed = False
        self.set_trace_sink(trace_sink)

    @property
    def now(self) -> int:
        """Current simulated time (nanoseconds)."""
        return self._now

    @property
    def trace_sink(self) -> "TraceSink | None":
        """The registered kernel observer, if any."""
        return self._sink

    def set_trace_sink(self, sink: "TraceSink | None") -> None:
        """Register (or, with ``None``, remove) the kernel observer.

        Per-hook dispatch flags are computed here, once, so the run
        loops skip hooks the sink inherits unchanged from the no-op
        :class:`~repro.obs.tracing.TraceSink` base.  Sinks that do not
        expose :meth:`~repro.obs.tracing.TraceSink.overrides` get full
        dispatch.
        """
        self._sink = sink
        if sink is None:
            self._sched_hook = None
            self._sink_cb = self._sink_tie = self._sink_processed = False
            return
        overrides = getattr(sink, "overrides", None)
        if overrides is None:
            self._sched_hook = sink.on_event_scheduled
            self._sink_cb = self._sink_tie = self._sink_processed = True
            return
        self._sched_hook = sink.on_event_scheduled if overrides("on_event_scheduled") else None
        self._sink_cb = bool(overrides("on_callback"))
        self._sink_tie = bool(overrides("on_tie_break"))
        self._sink_processed = bool(overrides("on_event_processed"))

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: int, value: object = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` ns from now.

        Hot path: recycles a pooled :class:`Timeout` when one is
        available and schedules it inline (equivalent to constructing a
        fresh ``Timeout``, which remains supported).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            # Pooled timeouts are always ``_ok`` and never observably
            # defused (a Timeout can never fail), so only the variant
            # field, value and delay need resetting.
            event.callbacks = _NO_WAITERS
            event._value = value
            event.delay = delay
            self.timeouts_reused += 1
        else:
            event = Timeout.__new__(Timeout)
            event.sim = self
            event.callbacks = _NO_WAITERS
            event._value = value
            event._ok = True
            event._defused = False
            event.delay = delay
            self.timeouts_created += 1
        when = self._now + delay
        _heappush(self._queue, ((when << 1) | NORMAL, self._eid_next(), event))
        hook = self._sched_hook
        if hook is not None:
            hook(event, when, self._active_process)
        return event

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new :class:`Process` running *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all *events* have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of *events* has triggered."""
        return AnyOf(self, events)

    # -- scheduling and execution ---------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: int = 0) -> None:
        """Schedule *event* for processing ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError("event scheduled in the past")
        when = self._now + delay
        _heappush(self._queue, ((when << 1) | priority, self._eid_next(), event))
        hook = self._sched_hook
        if hook is not None:
            hook(event, when, self._active_process)

    def schedule_at_tail(self, event: Event, observe: bool = False) -> None:
        """Schedule *event* at the current time, after every other event
        of this timestep.

        Tail entries draw their eid from a dedicated band above every
        normal eid, so they lose all same-``(time, priority)`` ties --
        deterministically, whether or not the tie-break perturbation of
        :meth:`perturb_tie_breaks` is active.  This is the end-of-tick
        slot :class:`repro.sim.resources.ArbitratedResource` uses to see
        *all* requests issued in a timestep before deciding a grant.

        Multiple tail events of one timestep run in scheduling order.
        *event* must already carry its value (like a triggered event);
        use the ``Initialize`` pattern: set ``_ok``/``_value`` and the
        callback before calling.

        With ``observe=True`` the event lands in the *observe* sub-band
        instead: it runs after every commit-band tail event of the
        timestep, even ones scheduled later (or cascading out of earlier
        commits), so it sees fully settled state.  Observe-band waiters
        must not mutate model state another observer could read.
        """
        self._tail_seq += 1
        base = _TAIL_OBSERVE_EID_BASE if observe else _TAIL_EID_BASE
        _heappush(
            self._queue, ((self._now << 1) | NORMAL, base + self._tail_seq, event)
        )
        hook = self._sched_hook
        if hook is not None:
            hook(event, self._now, self._active_process)

    def tail_event(self, observe: bool = True) -> Event:
        """A pre-triggered event delivered at the end of the current tick.

        A process that yields it resumes once the timestep has settled
        -- after every same-instant normal event and (for the default
        observe band) every end-of-tick commit -- making whatever it
        reads next independent of same-instant event order.  This is the
        seam :meth:`repro.hardware.machine.CedarMachine.memory_burst`
        uses to price a burst against the full simultaneous cohort.
        """
        event = Event(self)
        event._ok = True
        event._value = None
        self.schedule_at_tail(event, observe=observe)
        return event

    def call_at_tail(self, callback: Callable[[Event], None]) -> Event:
        """Run *callback* at the end of the current timestep.

        Convenience wrapper over :meth:`schedule_at_tail`: builds the
        pre-triggered carrier event and subscribes *callback* as its
        sole waiter.  Used for state transitions that must observe
        every same-instant occurrence before committing (deterministic
        arbitration, fault-resolution boundaries).
        """
        event = Event(self)
        event._ok = True
        event._value = None
        event.callbacks = callback
        self.schedule_at_tail(event)
        return event

    def perturb_tie_breaks(self, seed: int) -> None:
        """Arm the tie-break perturbation mode with a seeded eid source.

        Replaces the sequential eid counter with the seeded scrambler of
        :func:`_perturbed_eids`: events scheduled for the same
        ``(time, priority)`` pop in a seed-dependent permutation instead
        of insertion order, while every cross-key ordering is untouched.
        A model free of order-dependence hazards produces byte-identical
        results under every seed; any divergence is a confirmed hazard
        (see ``repro.analyze.race``).

        Must be armed before the first event is scheduled: mixing
        counter eids with perturbed eids would pin pre-existing events
        to the front of every tie and weaken the permutation.
        """
        if self._queue:
            raise SimulationError(
                "perturb_tie_breaks() must be armed before any event is scheduled"
            )
        self._eid_next = _perturbed_eids(seed)
        self.tie_perturbed = True

    def peek(self) -> int | float:
        """Time of the next scheduled event (``inf`` if none)."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0] >> 1

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events remain.  This is the
        full-fidelity single-step entry point (manual stepping and
        debugging); :meth:`run` uses specialised loops with the same
        observable behaviour.
        """
        try:
            key, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None
        when = key >> 1
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        sink = self._sink
        if sink is not None and self._queue and self._queue[0][0] == key:
            # Tie-break audit: this event beat the queue head only by
            # insertion order (same time, same priority).
            sink.on_tie_break(when, key & 1, event, self._queue[0][2])
        self._now = when
        cbs = event.callbacks
        event.callbacks = None
        if sink is None:
            if type(cbs) is list:
                for callback in cbs:
                    callback(event)
            elif cbs is not _NO_WAITERS and cbs is not None:
                cbs(event)
        else:
            if type(cbs) is list:
                callbacks: list[_Callback] = cbs
            elif cbs is not _NO_WAITERS and cbs is not None:
                callbacks = [cbs]
            else:
                callbacks = []
            for callback in callbacks:
                if type(callback) is Process:
                    owner: Process | None = callback
                else:
                    bound = getattr(callback, "__self__", None)
                    owner = bound if isinstance(bound, Process) else None
                begin = perf_counter()
                callback(event)
                sink.on_callback(event, owner, perf_counter() - begin)
            sink.on_event_processed(event, when)
        if not event._ok and not event._defused:
            # An unhandled failure: crash the simulation.
            exc = event._value
            raise exc

    def run(
        self,
        until: Event | int | None = None,
        max_events: int | None = None,
        max_sim_time: int | None = None,
    ) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``  -- run until no events remain;
            an ``int`` -- run until the clock reaches that time;
            an :class:`Event` -- run until that event is processed, and
            return its value.
        max_events:
            Watchdog: raise :class:`RunawaySimulation` once this many
            events have been processed by this call.
        max_sim_time:
            Watchdog: raise :class:`RunawaySimulation` once the next
            event lies beyond this simulated time (nanoseconds).

        With neither watchdog set the event loop runs on the leanest
        specialised path for the installed sink.
        """
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        if max_sim_time is not None and max_sim_time < self._now:
            raise ValueError(
                f"max_sim_time ({max_sim_time}) must be >= now ({self._now})"
            )
        stop_event: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event._value
                stop_event._subscribe(self._stop_callback)
            else:
                at = int(until)
                if at <= self._now:
                    raise ValueError(f"until ({at}) must be greater than now ({self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks = self._stop_callback
                self.schedule(stop_event, priority=URGENT, delay=at - self._now)

        try:
            if max_events is not None or max_sim_time is not None:
                self._run_watched(max_events, max_sim_time)
            elif self._sink is None:
                if (
                    _COMPILED_LOOP is not None
                    and not self.tie_perturbed
                    and compiled_policy()
                ):
                    # Compiled dispatch loop (see the module tail): a C
                    # transliteration of _run_fast without the lookahead
                    # slot.  Only the sink-free path compiles; sinks and
                    # watchdogs always run the Python loops, so recorded
                    # schedule hashes are interpreter-independent.  The
                    # policy is re-read per run so the CLI's
                    # ``--no-fastpath`` (which sets the variable after
                    # import) is honoured.
                    _COMPILED_LOOP(self)
                else:
                    self._run_fast()
            else:
                self._run_sink()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if stop_event is not None and isinstance(until, Event):
                if stop_event.callbacks is not None:
                    raise SimulationError(
                        "no more events scheduled but the until-event has not triggered"
                    ) from None
            return None

    def _run_fast(self) -> None:
        """Leanest event loop: no trace sink, no watchdogs.

        Attribute lookups are hoisted out of the loop, the per-event
        try/except costs nothing on the happy path (CPython 3.11+
        zero-cost exceptions), and the dominant dispatch -- a single
        waiting process resumed by a successful event -- is inlined so
        no callback frame is created.  When the resumed process yields
        a direct delay (``yield n``) the just-popped carrier event is
        re-armed and pushed again: the steady state of a timeout-driven
        process runs pop -> send -> push with zero allocation.

        On top of that sits a one-slot lookahead: when a re-armed
        carrier is the *only* pending event it is parked in locals
        instead of round-tripping the heap, so the single-hot-process
        steady state pays no heap traffic at all.  The slot is merged
        back whenever the heap holds an earlier event, preserving exact
        ``(when, priority, eid)`` order.

        Consuming the parked slot enters a *sprint*: as long as the
        sole process keeps direct-delaying into an empty heap, the loop
        advances the clock in place -- no callback churn, no heap
        traffic, no eid draw.  This is observably identical to the heap
        path: the carrier is the only pending event, so processing
        order cannot change, and eids (which only break heap ties) are
        never compared while it sprints; the exit re-arm draws its eid
        after the final resume, exactly where the push path draws it.
        A parked carrier is known un-captured (the refcount gate ran
        when it was parked) and only the sprinting process runs, so the
        in-place re-arm is safe without re-counting references; the
        exit path re-checks before re-arming into the shared heap.
        """
        queue = self._queue
        pool = self._timeout_pool
        pop = heapq.heappop
        push = _heappush
        eid_next = self._eid_next
        no_waiters = _NO_WAITERS
        timeout_type = Timeout
        process_type = Process
        refcount = getrefcount
        rearmed = reused = created = 0
        head_key = head_eid = 0
        head_event: Event | None = None
        try:
            while True:
                if head_event is not None:
                    if (
                        not queue
                        or head_key < queue[0][0]
                        or (head_key == queue[0][0] and head_eid < queue[0][1])
                    ):
                        # The parked event is still first.  Key ties fall
                        # back to the eid draw: sequential in the normal
                        # mode (the parked entry was pushed first, so it
                        # wins), seed-permuted under perturb_tie_breaks().
                        event = head_event
                        head_event = None
                        now = head_key >> 1
                        cbs = event.callbacks
                        if type(cbs) is process_type and not queue:
                            # Sprint (see docstring).  The parked
                            # carrier is a pooled Timeout: ``_ok`` is
                            # True and ``_value`` is None by invariant,
                            # so the resume value is a constant.
                            self._active_process = cbs
                            send = cbs._send
                            while True:
                                self._now = now
                                try:
                                    nxt = send(None)
                                except StopIteration as stop:
                                    event.callbacks = None
                                    cbs._terminate(True, stop.value)
                                    break
                                except BaseException as exc:
                                    event.callbacks = None
                                    cbs._terminate(False, exc)
                                    break
                                if type(nxt) is int and nxt >= 0 and not queue:
                                    # Still the only pending event:
                                    # advance the clock in place.
                                    now += nxt
                                    rearmed += 1
                                    continue
                                # Any other outcome leaves the sprint:
                                # mark the carrier processed and finish
                                # this resume on the generic paths.
                                event.callbacks = None
                                if type(nxt) is int:
                                    if nxt >= 0:
                                        # The resume scheduled real
                                        # events: re-arm into the heap.
                                        if refcount(event) == 3:
                                            tick = event
                                            rearmed += 1
                                        else:
                                            if pool:
                                                tick = pool.pop()
                                                reused += 1
                                            else:
                                                tick = Timeout.__new__(Timeout)
                                                tick.sim = self
                                                tick._ok = True
                                                tick._defused = False
                                                created += 1
                                            cbs._target = tick
                                        tick._value = None
                                        tick.delay = nxt
                                        tick.callbacks = cbs
                                        push(
                                            queue,
                                            (((now + nxt) << 1) | 1, eid_next(), tick),
                                        )
                                        del tick
                                    else:
                                        cbs._terminate(
                                            False, ValueError(f"negative delay {nxt}")
                                        )
                                else:
                                    cbs._continue(nxt)
                                break
                            self._active_process = None
                            # The carrier is a Timeout (never fails);
                            # recycle it when the loop holds the only
                            # remaining reference.
                            if refcount(event) == 2 and len(pool) < _POOL_LIMIT:
                                pool.append(event)
                            continue
                    else:
                        push(queue, (head_key, head_eid, head_event))
                        head_event = None
                        key, _eid, event = pop(queue)
                        now = key >> 1
                else:
                    try:
                        key, _eid, event = pop(queue)
                    except IndexError:
                        raise EmptySchedule("no more events scheduled") from None
                    now = key >> 1
                self._now = now
                cbs = event.callbacks
                event.callbacks = None
                if type(cbs) is process_type and event._ok:
                    # Hot path: resume the single waiting process inline.
                    self._active_process = cbs
                    try:
                        nxt = cbs._send(event._value)
                    except StopIteration as stop:
                        cbs._terminate(True, stop.value)
                        self._active_process = None
                    except BaseException as exc:
                        cbs._terminate(False, exc)
                        self._active_process = None
                    else:
                        if type(nxt) is int:
                            if nxt >= 0:
                                # Direct-delay yield: re-arm the popped
                                # carrier when only the loop and the
                                # process target still reference it
                                # (getrefcount argument + `event` +
                                # `cbs._target` == 3).
                                if type(event) is timeout_type and refcount(event) == 3:
                                    # Re-arm in place: `cbs._target` is
                                    # already this carrier.
                                    tick = event
                                    tick._value = None
                                    rearmed += 1
                                else:
                                    if pool:
                                        tick = pool.pop()
                                        tick._value = None
                                        reused += 1
                                    else:
                                        tick = Timeout.__new__(Timeout)
                                        tick.sim = self
                                        tick._value = None
                                        tick._ok = True
                                        tick._defused = False
                                        created += 1
                                    cbs._target = tick
                                tick.delay = nxt
                                tick.callbacks = cbs
                                if queue:
                                    push(queue, (((now + nxt) << 1) | 1, eid_next(), tick))
                                else:
                                    # Sole pending event: park it in the
                                    # lookahead slot, no heap traffic.
                                    head_key = ((now + nxt) << 1) | 1
                                    head_eid = eid_next()
                                    head_event = tick
                                # The local binding must not survive the
                                # iteration: it would inflate the next
                                # pop's refcount and defeat the re-arm.
                                del tick
                                self._active_process = None
                                continue
                            cbs._terminate(False, ValueError(f"negative delay {nxt}"))
                            self._active_process = None
                        else:
                            cbs._continue(nxt)
                            self._active_process = None
                elif type(cbs) is list:
                    for callback in cbs:
                        callback(event)
                elif cbs is not no_waiters and cbs is not None:
                    cbs(event)
                if type(event) is timeout_type:
                    # A Timeout can never fail; recycle it when the loop
                    # holds the only remaining reference (local binding +
                    # getrefcount argument == 2).
                    if refcount(event) == 2 and len(pool) < _POOL_LIMIT:
                        pool.append(event)
                elif not event._ok and not event._defused:
                    # An unhandled failure: crash the simulation.
                    exc2 = event._value
                    raise exc2
        finally:
            self.ticks_rearmed += rearmed
            self.timeouts_reused += reused
            self.timeouts_created += created

    def _run_sink(self) -> None:
        """Sink-aware event loop (no watchdogs).

        Hooks the sink does not override are skipped entirely; in
        particular the two ``perf_counter()`` reads per callback are
        only paid when the sink overrides ``on_callback``.
        """
        queue = self._queue
        pool = self._timeout_pool
        pop = heapq.heappop
        push = _heappush
        eid_next = self._eid_next
        sink: Any = self._sink
        want_cb = self._sink_cb
        want_tie = self._sink_tie
        want_processed = self._sink_processed
        no_waiters = _NO_WAITERS
        timeout_type = Timeout
        process_type = Process
        refcount = getrefcount
        rearmed = reused = created = 0
        try:
            while True:
                try:
                    key, _eid, event = pop(queue)
                except IndexError:
                    raise EmptySchedule("no more events scheduled") from None
                when = key >> 1
                if want_tie and queue and queue[0][0] == key:
                    sink.on_tie_break(when, key & 1, event, queue[0][2])
                self._now = when
                cbs = event.callbacks
                event.callbacks = None
                if type(cbs) is process_type and event._ok and not want_cb:
                    # Inlined single-waiter process resume (as in
                    # ``_run_fast``); with an ``on_callback`` observer
                    # installed the generic timed dispatch below runs
                    # instead.
                    self._active_process = cbs
                    try:
                        nxt = cbs._send(event._value)
                    except StopIteration as stop:
                        cbs._terminate(True, stop.value)
                        self._active_process = None
                    except BaseException as exc:
                        cbs._terminate(False, exc)
                        self._active_process = None
                    else:
                        if type(nxt) is int:
                            if nxt >= 0:
                                # refcount: getrefcount argument +
                                # `event` + `cbs._target` == 3.
                                if type(event) is timeout_type and refcount(event) == 3:
                                    tick = event
                                    tick._value = None
                                    rearmed += 1
                                else:
                                    if pool:
                                        tick = pool.pop()
                                        tick._value = None
                                        reused += 1
                                    else:
                                        tick = Timeout.__new__(Timeout)
                                        tick.sim = self
                                        tick._value = None
                                        tick._ok = True
                                        tick._defused = False
                                        created += 1
                                    cbs._target = tick
                                tick.delay = nxt
                                tick.callbacks = cbs
                                tick_when = when + nxt
                                push(queue, ((tick_when << 1) | 1, eid_next(), tick))
                                self._active_process = None
                                hook = self._sched_hook
                                if hook is not None:
                                    hook(tick, tick_when, cbs)
                                # Stale bindings would inflate the next
                                # pop's refcount and defeat the re-arm.
                                del tick
                                if want_processed:
                                    sink.on_event_processed(event, when)
                                continue
                            cbs._terminate(False, ValueError(f"negative delay {nxt}"))
                            self._active_process = None
                        else:
                            cbs._continue(nxt)
                            self._active_process = None
                elif type(cbs) is list:
                    if want_cb:
                        for callback in cbs:
                            if type(callback) is process_type:
                                owner: Process | None = callback
                            else:
                                bound = getattr(callback, "__self__", None)
                                owner = bound if isinstance(bound, Process) else None
                            begin = perf_counter()
                            callback(event)
                            sink.on_callback(event, owner, perf_counter() - begin)
                    else:
                        for callback in cbs:
                            callback(event)
                elif cbs is not no_waiters and cbs is not None:
                    if want_cb:
                        if type(cbs) is process_type:
                            owner = cbs
                        else:
                            bound = getattr(cbs, "__self__", None)
                            owner = bound if isinstance(bound, Process) else None
                        begin = perf_counter()
                        cbs(event)
                        sink.on_callback(event, owner, perf_counter() - begin)
                    else:
                        cbs(event)
                if want_processed:
                    sink.on_event_processed(event, when)
                if type(event) is timeout_type:
                    if refcount(event) == 2 and len(pool) < _POOL_LIMIT:
                        pool.append(event)
                elif not event._ok and not event._defused:
                    exc2 = event._value
                    raise exc2
        finally:
            self.ticks_rearmed += rearmed
            self.timeouts_reused += reused
            self.timeouts_created += created

    def _run_watched(self, max_events: int | None, max_sim_time: int | None) -> None:
        """Watched event loop: step until a limit trips.

        Kept out of the unwatched loops so they pay nothing.  The queue
        head is peeked before each event so the raised
        :class:`RunawaySimulation` can carry the last event the kernel
        actually processed.  Sink hooks honour the same per-hook flags
        as :meth:`_run_sink`.
        """
        queue = self._queue
        pool = self._timeout_pool
        pop = heapq.heappop
        push = _heappush
        eid_next = self._eid_next
        sink: Any = self._sink
        want_cb = self._sink_cb
        want_tie = self._sink_tie
        want_processed = self._sink_processed
        no_waiters = _NO_WAITERS
        timeout_type = Timeout
        process_type = Process
        refcount = getrefcount
        limit = -1 if max_events is None else max_events
        processed = 0
        rearmed = reused = created = 0
        last_event: Event | None = None
        try:
            while True:
                if processed == limit:
                    raise RunawaySimulation(
                        limit=f"max_events={max_events}",
                        events_processed=processed,
                        sim_time_ns=self._now,
                        last_event=last_event,
                    )
                if not queue:
                    raise EmptySchedule("no more events scheduled")
                if max_sim_time is not None and queue[0][0] >> 1 > max_sim_time:
                    raise RunawaySimulation(
                        limit=f"max_sim_time={max_sim_time}",
                        events_processed=processed,
                        sim_time_ns=self._now,
                        last_event=last_event,
                    )
                key, _eid, event = pop(queue)
                last_event = event
                when = key >> 1
                if want_tie and queue and queue[0][0] == key:
                    sink.on_tie_break(when, key & 1, event, queue[0][2])
                self._now = when
                cbs = event.callbacks
                event.callbacks = None
                if type(cbs) is process_type and event._ok and not want_cb:
                    # Inlined single-waiter process resume (see
                    # ``_run_fast``); ``last_event`` aliases ``event``
                    # here, so the carrier re-arm refcount is 4.
                    self._active_process = cbs
                    try:
                        nxt = cbs._send(event._value)
                    except StopIteration as stop:
                        cbs._terminate(True, stop.value)
                        self._active_process = None
                    except BaseException as exc:
                        cbs._terminate(False, exc)
                        self._active_process = None
                    else:
                        if type(nxt) is int:
                            if nxt >= 0:
                                if type(event) is timeout_type and refcount(event) == 4:
                                    tick = event
                                    tick._value = None
                                    rearmed += 1
                                else:
                                    if pool:
                                        tick = pool.pop()
                                        tick._value = None
                                        reused += 1
                                    else:
                                        tick = Timeout.__new__(Timeout)
                                        tick.sim = self
                                        tick._value = None
                                        tick._ok = True
                                        tick._defused = False
                                        created += 1
                                    cbs._target = tick
                                tick.delay = nxt
                                tick.callbacks = cbs
                                tick_when = when + nxt
                                push(queue, ((tick_when << 1) | 1, eid_next(), tick))
                                self._active_process = None
                                hook = self._sched_hook
                                if hook is not None:
                                    hook(tick, tick_when, cbs)
                                # Stale bindings would inflate the next
                                # pop's refcount and defeat the re-arm.
                                del tick
                                if want_processed:
                                    sink.on_event_processed(event, when)
                                processed += 1
                                continue
                            cbs._terminate(False, ValueError(f"negative delay {nxt}"))
                            self._active_process = None
                        else:
                            cbs._continue(nxt)
                            self._active_process = None
                elif type(cbs) is list:
                    if want_cb:
                        for callback in cbs:
                            if type(callback) is process_type:
                                owner: Process | None = callback
                            else:
                                bound = getattr(callback, "__self__", None)
                                owner = bound if isinstance(bound, Process) else None
                            begin = perf_counter()
                            callback(event)
                            sink.on_callback(event, owner, perf_counter() - begin)
                    else:
                        for callback in cbs:
                            callback(event)
                elif cbs is not no_waiters and cbs is not None:
                    if want_cb:
                        if type(cbs) is process_type:
                            owner = cbs
                        else:
                            bound = getattr(cbs, "__self__", None)
                            owner = bound if isinstance(bound, Process) else None
                        begin = perf_counter()
                        cbs(event)
                        sink.on_callback(event, owner, perf_counter() - begin)
                    else:
                        cbs(event)
                if want_processed:
                    sink.on_event_processed(event, when)
                if type(event) is timeout_type:
                    # ``last_event`` still aliases ``event``: recycle at
                    # refcount 3 (getrefcount argument + both locals).
                    if refcount(event) == 3 and len(pool) < _POOL_LIMIT:
                        pool.append(event)
                elif not event._ok and not event._defused:
                    exc2 = event._value
                    raise exc2
                processed += 1
        finally:
            self.ticks_rearmed += rearmed
            self.timeouts_reused += reused
            self.timeouts_created += created

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if not event._ok:
            # The until-event failed (e.g. the main process crashed):
            # propagate the failure out of run() instead of returning
            # the exception object as if it were the event's value.
            event._defused = True
            value = event._value
            if isinstance(value, BaseException):
                raise value
        raise StopSimulation(event._value)


#: The compiled dispatch loop (``None`` -> pure Python ``_run_fast``).
#: Installed at import when the optional ``repro.sim._corefast`` C
#: extension is importable and the environment allows it (see
#: :mod:`repro.sim.policy`; ``scripts/build_kernel.py`` builds the
#: extension).  The compiled loop is a transliteration of ``_run_fast``
#: without the lookahead slot: same dispatch semantics, same pool
#: counters, identical results -- only the eid *values* drawn for
#: sole-pending carriers differ, which is unobservable because eids
#: only break heap ties and relative draw order is preserved.
_COMPILED_LOOP: Callable[[Simulator], None] | None = None
#: Version tag of the installed extension (feeds the code fingerprint
#: of :mod:`repro.parallel.cache` so cached results never cross the
#: compiled/pure boundary).
_COMPILED_VERSION: str | None = None


def compiled_loop_active() -> bool:
    """Whether the compiled kernel loop is installed for this process."""
    return _COMPILED_LOOP is not None


def compiled_loop_version() -> str | None:
    """Version tag of the installed compiled loop (``None`` if pure)."""
    return _COMPILED_VERSION


def _install_compiled_loop() -> None:
    """Import, bind and install the ``_corefast`` loop if possible."""
    global _COMPILED_LOOP, _COMPILED_VERSION
    if not compiled_policy():
        return
    try:
        from repro.sim import _corefast  # type: ignore[attr-defined]
    except ImportError:
        return
    try:
        _corefast.bind(
            {
                "Simulator": Simulator,
                "Event": Event,
                "Timeout": Timeout,
                "Process": Process,
                "NO_WAITERS": _NO_WAITERS,
                "PENDING": PENDING,
                "EmptySchedule": EmptySchedule,
                "heappush": heapq.heappush,
                "heappop": heapq.heappop,
                "POOL_LIMIT": _POOL_LIMIT,
            }
        )
    except Exception:  # pragma: no cover - defensive: stale binary
        return
    _COMPILED_LOOP = _corefast.run_fast
    _COMPILED_VERSION = getattr(_corefast, "__version__", "unknown")


_install_compiled_loop()
