"""The one fast-path kill switch shared by every layer.

Each layer of the simulator carries an analytic fast path beside its
exact model: batched vector memory (:mod:`repro.hardware.fastpath`),
lean runtime locks and fused protocol steps
(:mod:`repro.runtime.fastpath`), fused OS service paths
(:mod:`repro.xylem.fastpath`), the push-mode ``statfx`` sampler
(:mod:`repro.hpm.statfx`), and the compiled kernel loop
(:mod:`repro.sim.core`).  They are all governed by one environment
variable so a single switch reproduces the fully exact tree:

``CEDAR_REPRO_FASTPATH=off`` (or ``exact``)
    Every fast path is disabled at construction time; all layers run
    their exact code, including the pure-Python event loop.  The
    ``cedar-repro --no-fastpath`` CLI flag sets this for one invocation.

``CEDAR_REPRO_COMPILED=0``
    Narrower switch: keep the analytic fast paths but run the
    pure-Python event loop instead of the compiled ``_corefast``
    extension (used by CI to compare the two interpreters).

The policy is read at *stack construction* (and at kernel import for
the compiled loop), not per event, so flipping the variable mid-run has
no effect -- which is what makes a run's recorded fast-path modes
(:attr:`repro.core.runner.RunResult.fastpath_modes`) trustworthy.
"""

from __future__ import annotations

import os

__all__ = ["compiled_policy", "fastpath_policy"]

#: Values of ``CEDAR_REPRO_FASTPATH`` that force the exact paths.
_DISABLED = {"off", "exact", "0"}


def fastpath_policy() -> bool:
    """Whether the analytic fast paths are allowed by the environment."""
    return os.environ.get("CEDAR_REPRO_FASTPATH", "").strip().lower() not in _DISABLED


def compiled_policy() -> bool:
    """Whether the compiled kernel loop is allowed by the environment.

    Subordinate to :func:`fastpath_policy`: ``CEDAR_REPRO_FASTPATH=off``
    also forces the pure-Python loop.
    """
    if not fastpath_policy():
        return False
    return os.environ.get("CEDAR_REPRO_COMPILED", "").strip() != "0"
