"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation kernel."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Simulator.step` when no events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception that ends :meth:`Simulator.run`.

    Raised when the event passed as ``until`` is processed.  It carries the
    value of that event so ``run`` can return it.
    """

    def __init__(self, value: object) -> None:
        super().__init__(value)
        self.value = value


class RunawaySimulation(SimulationError):
    """Raised by :meth:`Simulator.run` when a watchdog limit is exceeded.

    A non-terminating process (a spin loop that never sees its flag, a
    daemon that re-arms itself forever) would otherwise hang ``run()``
    silently.  The exception carries enough context to diagnose the
    runaway: how many events were processed, where the simulated clock
    stood, and a description of the last event the kernel processed.
    """

    def __init__(
        self,
        limit: str,
        events_processed: int,
        sim_time_ns: int,
        last_event: object = None,
    ) -> None:
        self.limit = limit
        self.events_processed = events_processed
        self.sim_time_ns = sim_time_ns
        #: The last event processed before the watchdog fired (if any).
        self.last_event = last_event
        last = repr(last_event) if last_event is not None else "<none>"
        super().__init__(
            f"simulation exceeded {limit} after {events_processed} events "
            f"at t={sim_time_ns} ns; last event: {last}"
        )


class DeadlockSuspected(SimulationError):
    """Raised when a spin/barrier wait exceeds its configured deadline.

    The runtime's barrier and pickup protocols spin on global-memory
    state that another task is expected to change.  When a deadline is
    configured (``RuntimeParams.barrier_deadline_ns`` /
    ``pickup_deadline_ns``) and the wait outlives it, the spinner raises
    this instead of spinning forever -- e.g. when a fault campaign has
    frozen the cluster whose helper was supposed to detach.
    """

    def __init__(
        self, where: str, waited_ns: int, sim_time_ns: int, detail: str = ""
    ) -> None:
        self.where = where
        self.waited_ns = waited_ns
        self.sim_time_ns = sim_time_ns
        self.detail = detail
        message = (
            f"suspected deadlock at {where}: waited {waited_ns} ns "
            f"(now t={sim_time_ns} ns)"
        )
        if detail:
            message += f"; {detail}"
        super().__init__(message)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the object passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
