"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation kernel."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Simulator.step` when no events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception that ends :meth:`Simulator.run`.

    Raised when the event passed as ``until`` is processed.  It carries the
    value of that event so ``run`` can return it.
    """

    def __init__(self, value: object) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the object passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
