/* Compiled dispatch loop for the repro.sim kernel.
 *
 * A C transliteration of ``Simulator._run_fast`` (see
 * ``src/repro/sim/core.py``): pop the earliest ``(key, eid, event)``
 * heap entry, advance the clock, dispatch the event's callbacks with
 * the dominant single-waiting-process case inlined (generator send,
 * direct-delay Timeout re-arm, pool recycling), and raise EmptySchedule
 * when the heap drains.
 *
 * Differences from the Python loop, all unobservable by design:
 *
 * - The one-slot lookahead is collapsed into a direct *sprint*: when a
 *   direct-delay carrier is the only pending event and un-captured,
 *   the loop advances the clock in place and resumes the process again
 *   without parking an ``(key, eid, event)`` triple first.  The Python
 *   loop's park step draws an eid and fills the carrier's ``delay`` /
 *   ``callbacks`` slots; the sprint here skips all three.  None of it
 *   is observable: the parked eid never reaches the heap (nothing else
 *   can be scheduled while the sole process sleeps), eids only break
 *   same-(time, priority) heap ties, and no model code reads a parked
 *   carrier's slots (its only actor is the suspended process).  The
 *   counter increments -- one ``ticks_rearmed`` per in-place advance,
 *   the usual rearm/reuse/create draw on exit -- match the Python loop
 *   exactly.
 * - Heap keys are converted to C int64.  A key that does not fit
 *   (simulated time beyond ~2^62 ns, i.e. >146 years) pushes the
 *   entry back verbatim and delegates the rest of the run to the
 *   Python loop; yielded delays that do not fit take an object-
 *   arithmetic slow path.
 *
 * The module exports ``bind(namespace)`` -- called once by
 * ``repro.sim.core`` with the kernel's classes, sentinels and heap
 * primitives, from which slot offsets are captured -- and
 * ``run_fast(sim)``.  The loop is only ever entered for sink-free,
 * unperturbed runs (``Simulator.run`` gates it), so no trace hooks
 * appear here.
 *
 * Build with ``python scripts/build_kernel.py`` (no toolchain -> the
 * pure-Python loop serves; nothing else changes).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#define COREFAST_VERSION "1.1"

/* -- bound state -------------------------------------------------------- */

static PyObject *S_heappush;     /* heapq.heappush */
static PyObject *S_heappop;      /* heapq.heappop */
static PyObject *S_no_waiters;   /* core._NO_WAITERS sentinel */
static PyObject *S_empty;        /* core EmptySchedule exception type */
static PyObject *S_terminate;    /* unbound Process._terminate */
static PyObject *S_continue;     /* unbound Process._continue */
static PyTypeObject *S_Timeout;  /* core.Timeout */
static PyTypeObject *S_Process;  /* core.Process */
static Py_ssize_t S_pool_limit;

/* Slot offsets (captured from the member descriptors at bind time). */
static Py_ssize_t o_ev_sim, o_ev_callbacks, o_ev_value, o_ev_ok, o_ev_defused;
static Py_ssize_t o_to_delay;
static Py_ssize_t o_pr_generator, o_pr_target;
static Py_ssize_t o_si_now, o_si_queue, o_si_pool, o_si_eid_next, o_si_active;
static Py_ssize_t o_si_created, o_si_reused, o_si_rearmed, o_si_steps;

static int S_bound = 0;

/* Raw slot access.  Slots of pure-Python classes are PyObject* fields at
 * a fixed offset; a NULL field means "never assigned" (cannot happen for
 * the kernel's always-initialised slots, but reads stay defensive). */
#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

static void
slot_store(PyObject *obj, Py_ssize_t off, PyObject *val) /* steals val */
{
    PyObject *old = SLOT(obj, off);
    SLOT(obj, off) = val;
    Py_XDECREF(old);
}

static int
capture_offset(PyObject *type, const char *name, Py_ssize_t *out)
{
    PyObject *descr = PyObject_GetAttrString(type, name);
    if (descr == NULL)
        return -1;
    if (!Py_IS_TYPE(descr, &PyMemberDescr_Type)) {
        Py_DECREF(descr);
        PyErr_Format(PyExc_TypeError,
                     "_corefast.bind: %s is not a slot member descriptor", name);
        return -1;
    }
    *out = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return 0;
}

static PyObject *
ns_take(PyObject *ns, const char *key)
{
    PyObject *val = PyDict_GetItemString(ns, key); /* borrowed */
    if (val == NULL) {
        PyErr_Format(PyExc_KeyError, "_corefast.bind: missing %s", key);
        return NULL;
    }
    Py_INCREF(val);
    return val;
}

/* -- bind --------------------------------------------------------------- */

static PyObject *
corefast_bind(PyObject *self, PyObject *ns)
{
    PyObject *sim_type = NULL, *event_type = NULL, *timeout_type = NULL;
    PyObject *process_type = NULL, *limit = NULL;

    if (!PyDict_Check(ns)) {
        PyErr_SetString(PyExc_TypeError, "_corefast.bind expects a dict");
        return NULL;
    }

    sim_type = ns_take(ns, "Simulator");
    event_type = ns_take(ns, "Event");
    timeout_type = ns_take(ns, "Timeout");
    process_type = ns_take(ns, "Process");
    if (!sim_type || !event_type || !timeout_type || !process_type)
        goto fail;
    if (!PyType_Check(timeout_type) || !PyType_Check(process_type)) {
        PyErr_SetString(PyExc_TypeError, "_corefast.bind: classes expected");
        goto fail;
    }

    Py_XDECREF(S_no_waiters);
    S_no_waiters = ns_take(ns, "NO_WAITERS");
    Py_XDECREF(S_empty);
    S_empty = ns_take(ns, "EmptySchedule");
    Py_XDECREF(S_heappush);
    S_heappush = ns_take(ns, "heappush");
    Py_XDECREF(S_heappop);
    S_heappop = ns_take(ns, "heappop");
    if (!S_no_waiters || !S_empty || !S_heappush || !S_heappop)
        goto fail;

    limit = ns_take(ns, "POOL_LIMIT");
    if (!limit)
        goto fail;
    S_pool_limit = PyLong_AsSsize_t(limit);
    Py_CLEAR(limit);
    if (S_pool_limit < 0 && PyErr_Occurred())
        goto fail;

    Py_XDECREF(S_terminate);
    S_terminate = PyObject_GetAttrString(process_type, "_terminate");
    Py_XDECREF(S_continue);
    S_continue = PyObject_GetAttrString(process_type, "_continue");
    if (!S_terminate || !S_continue)
        goto fail;

    if (capture_offset(event_type, "sim", &o_ev_sim) < 0 ||
        capture_offset(event_type, "callbacks", &o_ev_callbacks) < 0 ||
        capture_offset(event_type, "_value", &o_ev_value) < 0 ||
        capture_offset(event_type, "_ok", &o_ev_ok) < 0 ||
        capture_offset(event_type, "_defused", &o_ev_defused) < 0 ||
        capture_offset(timeout_type, "delay", &o_to_delay) < 0 ||
        capture_offset(process_type, "_generator", &o_pr_generator) < 0 ||
        capture_offset(process_type, "_target", &o_pr_target) < 0 ||
        capture_offset(sim_type, "_now", &o_si_now) < 0 ||
        capture_offset(sim_type, "_queue", &o_si_queue) < 0 ||
        capture_offset(sim_type, "_timeout_pool", &o_si_pool) < 0 ||
        capture_offset(sim_type, "_eid_next", &o_si_eid_next) < 0 ||
        capture_offset(sim_type, "_active_process", &o_si_active) < 0 ||
        capture_offset(sim_type, "timeouts_created", &o_si_created) < 0 ||
        capture_offset(sim_type, "timeouts_reused", &o_si_reused) < 0 ||
        capture_offset(sim_type, "ticks_rearmed", &o_si_rearmed) < 0 ||
        capture_offset(sim_type, "compiled_steps", &o_si_steps) < 0)
        goto fail;

    Py_XDECREF((PyObject *)S_Timeout);
    S_Timeout = (PyTypeObject *)timeout_type; /* steal */
    timeout_type = NULL;
    Py_XDECREF((PyObject *)S_Process);
    S_Process = (PyTypeObject *)process_type; /* steal */
    process_type = NULL;
    Py_DECREF(sim_type);
    Py_DECREF(event_type);
    S_bound = 1;
    Py_RETURN_NONE;

fail:
    Py_XDECREF(sim_type);
    Py_XDECREF(event_type);
    Py_XDECREF(timeout_type);
    Py_XDECREF(process_type);
    Py_XDECREF(limit);
    return NULL;
}

/* -- counter flushing --------------------------------------------------- */

static int
bump_slot(PyObject *sim, Py_ssize_t off, long long delta)
{
    PyObject *cur, *d, *sum;

    if (delta == 0)
        return 0;
    cur = SLOT(sim, off);
    if (cur == NULL)
        cur = Py_None; /* cannot happen; add will raise cleanly */
    d = PyLong_FromLongLong(delta);
    if (d == NULL)
        return -1;
    sum = PyNumber_Add(cur, d);
    Py_DECREF(d);
    if (sum == NULL)
        return -1;
    slot_store(sim, off, sum);
    return 0;
}

static void
flush_counters(PyObject *sim, long long rearmed, long long reused,
               long long created, long long steps)
{
    /* Preserve any in-flight exception across the flush. */
    PyObject *t, *v, *tb;
    PyErr_Fetch(&t, &v, &tb);
    (void)bump_slot(sim, o_si_rearmed, rearmed);
    (void)bump_slot(sim, o_si_reused, reused);
    (void)bump_slot(sim, o_si_created, created);
    (void)bump_slot(sim, o_si_steps, steps);
    if (PyErr_Occurred())
        PyErr_Clear();
    PyErr_Restore(t, v, tb);
}

/* -- run loop helpers --------------------------------------------------- */

/* Make a fresh Timeout the way ``Timeout.__new__(Timeout)`` + the
 * pool-miss path does: allocate, fill the invariant slots. */
static PyObject *
new_pool_timeout(PyObject *sim)
{
    PyObject *tick = S_Timeout->tp_alloc(S_Timeout, 0);
    if (tick == NULL)
        return NULL;
    Py_INCREF(sim);
    SLOT(tick, o_ev_sim) = sim;
    Py_INCREF(Py_None);
    SLOT(tick, o_ev_value) = Py_None;
    Py_INCREF(Py_True);
    SLOT(tick, o_ev_ok) = Py_True;
    Py_INCREF(Py_False);
    SLOT(tick, o_ev_defused) = Py_False;
    return tick;
}

/* Push ``(key_obj, eid, tick)`` through heapq.  Steals nothing. */
static int
heap_push(PyObject *queue, PyObject *key_obj, PyObject *eid, PyObject *tick)
{
    PyObject *entry = PyTuple_New(3);
    PyObject *r;
    if (entry == NULL)
        return -1;
    Py_INCREF(key_obj);
    PyTuple_SET_ITEM(entry, 0, key_obj);
    Py_INCREF(eid);
    PyTuple_SET_ITEM(entry, 1, eid);
    Py_INCREF(tick);
    PyTuple_SET_ITEM(entry, 2, tick);
    r = PyObject_CallFunctionObjArgs(S_heappush, queue, entry, NULL);
    Py_DECREF(entry);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Direct-delay re-arm: put a Timeout carrying *delay* back on the heap
 * for *cbs* at ``((now + nxt) << 1) | 1``.  Re-arms *event* in place
 * when only the loop and ``cbs._target`` still reference it (the
 * Python gate is getrefcount == 3: local binding + getrefcount
 * argument + ``_target``; here our borrowed view sees refcount 2),
 * otherwise takes a pooled/new Timeout and retargets the process.
 * *delay* is the yielded int object (reference stolen, even on
 * failure); *huge* selects object arithmetic for the key, reading the
 * clock back out of ``sim._now``.  Returns 0, or -1 with an exception
 * set. */
static int
rearm_push(PyObject *sim, PyObject *queue, PyObject *pool, PyObject *eid_next,
           PyObject *event, PyObject *cbs, PyObject *delay,
           long long now, long long nxt, int huge,
           long long *rearmed, long long *reused, long long *created)
{
    PyObject *tick, *key2, *eid;
    int failed = 0;

    if (Py_IS_TYPE(event, S_Timeout) && Py_REFCNT(event) == 2) {
        tick = event;
        Py_INCREF(tick);
        Py_INCREF(Py_None);
        slot_store(tick, o_ev_value, Py_None);
        (*rearmed)++;
    } else {
        Py_ssize_t psz = PyList_GET_SIZE(pool);
        if (psz > 0) {
            tick = PyList_GET_ITEM(pool, psz - 1);
            Py_INCREF(tick);
            if (PyList_SetSlice(pool, psz - 1, psz, NULL) < 0) {
                Py_DECREF(tick);
                Py_DECREF(delay);
                return -1;
            }
            Py_INCREF(Py_None);
            slot_store(tick, o_ev_value, Py_None);
            (*reused)++;
        } else {
            tick = new_pool_timeout(sim);
            if (tick == NULL) {
                Py_DECREF(delay);
                return -1;
            }
            (*created)++;
        }
        Py_INCREF(tick);
        slot_store(cbs, o_pr_target, tick);
    }
    slot_store(tick, o_to_delay, delay); /* steals delay */
    Py_INCREF(cbs);
    slot_store(tick, o_ev_callbacks, cbs);
    if (!huge) {
        key2 = PyLong_FromLongLong(((now + nxt) << 1) | 1);
    } else {
        /* Object arithmetic for delays beyond int64:
         * ((now + nxt) << 1) | 1. */
        PyObject *delay_obj = SLOT(tick, o_to_delay);
        PyObject *now_obj = SLOT(sim, o_si_now);
        PyObject *when = PyNumber_Add(now_obj, delay_obj);
        PyObject *shifted = NULL;
        key2 = NULL;
        if (when != NULL) {
            PyObject *one = PyLong_FromLong(1);
            if (one != NULL) {
                shifted = PyNumber_Lshift(when, one);
                if (shifted != NULL)
                    key2 = PyNumber_Or(shifted, one);
                Py_XDECREF(shifted);
                Py_DECREF(one);
            }
            Py_DECREF(when);
        }
    }
    if (key2 == NULL)
        failed = 1;
    else {
        eid = PyObject_CallNoArgs(eid_next);
        if (eid == NULL)
            failed = 1;
        else {
            if (heap_push(queue, key2, eid, tick) < 0)
                failed = 1;
            Py_DECREF(eid);
        }
        Py_DECREF(key2);
    }
    Py_DECREF(tick);
    return failed ? -1 : 0;
}

/* -- the compiled loop -------------------------------------------------- */

static PyObject *
corefast_run_fast(PyObject *self, PyObject *sim)
{
    PyObject *queue, *pool, *eid_next;
    long long rearmed = 0, reused = 0, created = 0, steps = 0;
    long long last_now = -1;

    if (!S_bound) {
        PyErr_SetString(PyExc_RuntimeError, "_corefast.run_fast before bind()");
        return NULL;
    }
    queue = SLOT(sim, o_si_queue);
    pool = SLOT(sim, o_si_pool);
    eid_next = SLOT(sim, o_si_eid_next);
    if (queue == NULL || pool == NULL || eid_next == NULL ||
        !PyList_CheckExact(queue) || !PyList_CheckExact(pool)) {
        PyErr_SetString(PyExc_TypeError, "_corefast.run_fast: bad Simulator state");
        return NULL;
    }
    Py_INCREF(queue);
    Py_INCREF(pool);
    Py_INCREF(eid_next);

    for (;;) {
        PyObject *entry, *key_obj, *event, *cbs, *okobj;
        long long key, now;
        int ok;

        entry = PyObject_CallOneArg(S_heappop, queue);
        if (entry == NULL) {
            if (PyErr_ExceptionMatches(PyExc_IndexError)) {
                PyErr_Clear();
                PyErr_SetString(S_empty, "no more events scheduled");
            }
            goto error;
        }
        if (!PyTuple_CheckExact(entry) || PyTuple_GET_SIZE(entry) != 3) {
            Py_DECREF(entry);
            PyErr_SetString(PyExc_TypeError, "_corefast: malformed heap entry");
            goto error;
        }
        key_obj = PyTuple_GET_ITEM(entry, 0);
        key = PyLong_AsLongLong(key_obj);
        if (key == -1 && PyErr_Occurred()) {
            /* Simulated time beyond int64: push the entry back (same
             * key/eid -> identical heap order) and let the Python loop
             * finish the run. */
            PyObject *r;
            PyErr_Clear();
            r = PyObject_CallFunctionObjArgs(S_heappush, queue, entry, NULL);
            Py_DECREF(entry);
            if (r == NULL)
                goto error;
            Py_DECREF(r);
            flush_counters(sim, rearmed, reused, created, steps);
            Py_DECREF(queue);
            Py_DECREF(pool);
            Py_DECREF(eid_next);
            return PyObject_CallMethod(sim, "_run_fast", NULL);
        }
        event = PyTuple_GET_ITEM(entry, 2);
        Py_INCREF(event);
        Py_DECREF(entry);
        steps++;

        now = key >> 1;
        if (now != last_now) {
            PyObject *now_obj = PyLong_FromLongLong(now);
            if (now_obj == NULL) {
                Py_DECREF(event);
                goto error;
            }
            slot_store(sim, o_si_now, now_obj);
            last_now = now;
        }

        cbs = SLOT(event, o_ev_callbacks);
        Py_XINCREF(cbs);
        Py_INCREF(Py_None);
        slot_store(event, o_ev_callbacks, Py_None);

        if (cbs != NULL && Py_IS_TYPE(cbs, S_Process)) {
            okobj = SLOT(event, o_ev_ok);
            ok = okobj ? PyObject_IsTrue(okobj) : 0;
            if (ok < 0)
                goto error_ev;
            if (ok) {
                /* Hot path: resume the single waiting process inline. */
                PyObject *gen = SLOT(cbs, o_pr_generator);
                PyObject *value = SLOT(event, o_ev_value);
                PyObject *result = NULL;
                PySendResult sr;

                Py_INCREF(cbs);
                slot_store(sim, o_si_active, cbs);
                if (value == NULL)
                    value = Py_None;
                Py_INCREF(value);
                sr = PyIter_Send(gen, value, &result);
                Py_DECREF(value);

                if (sr == PYGEN_RETURN) {
                    PyObject *r = PyObject_CallFunctionObjArgs(
                        S_terminate, cbs, Py_True, result, NULL);
                    Py_DECREF(result);
                    if (r == NULL)
                        goto error_ev;
                    Py_DECREF(r);
                } else if (sr == PYGEN_ERROR) {
                    /* The generator raised: terminate the process with
                     * the exception as its (failure) value. */
                    PyObject *t, *v, *tb, *r;
                    PyErr_Fetch(&t, &v, &tb);
                    PyErr_NormalizeException(&t, &v, &tb);
                    if (v != NULL && tb != NULL)
                        PyException_SetTraceback(v, tb);
                    r = PyObject_CallFunctionObjArgs(
                        S_terminate, cbs, Py_False, v ? v : Py_None, NULL);
                    Py_XDECREF(t);
                    Py_XDECREF(v);
                    Py_XDECREF(tb);
                    if (r == NULL)
                        goto error_ev;
                    Py_DECREF(r);
                } else if (PyLong_CheckExact(result)) {
                    /* Direct-delay yield. */
                    int overflow;
                    long long nxt =
                        PyLong_AsLongLongAndOverflow(result, &overflow);
                    int huge = overflow > 0 ||
                               (overflow == 0 && nxt >= 0 &&
                                nxt > (LLONG_MAX >> 1) - now);
                    if (overflow < 0 || (overflow == 0 && nxt < 0)) {
                        PyObject *msg = PyUnicode_FromFormat(
                            "negative delay %S", result);
                        PyObject *exc, *r;
                        Py_DECREF(result);
                        if (msg == NULL)
                            goto error_ev;
                        exc = PyObject_CallFunctionObjArgs(
                            PyExc_ValueError, msg, NULL);
                        Py_DECREF(msg);
                        if (exc == NULL)
                            goto error_ev;
                        r = PyObject_CallFunctionObjArgs(
                            S_terminate, cbs, Py_False, exc, NULL);
                        Py_DECREF(exc);
                        if (r == NULL)
                            goto error_ev;
                        Py_DECREF(r);
                    } else if (!huge && PyList_GET_SIZE(queue) == 0 &&
                               Py_IS_TYPE(event, S_Timeout) &&
                               Py_REFCNT(event) == 2) {
                        /* Sole-pending sprint (see the header comment):
                         * the carrier would be the only heap entry, so
                         * advance the clock in place and resume the
                         * process again -- no heap traffic, no eid
                         * draws -- until it schedules real events,
                         * waits, or finishes. */
                        long long snow = now;
                        Py_INCREF(Py_None);
                        slot_store(event, o_ev_value, Py_None);
                        Py_CLEAR(result);
                        for (;;) {
                            PyObject *now_obj;
                            snow += nxt;
                            rearmed++;
                            steps++;
                            now_obj = PyLong_FromLongLong(snow);
                            if (now_obj == NULL)
                                goto error_ev;
                            slot_store(sim, o_si_now, now_obj);
                            last_now = snow;
                            sr = PyIter_Send(gen, Py_None, &result);
                            if (sr == PYGEN_RETURN) {
                                PyObject *r = PyObject_CallFunctionObjArgs(
                                    S_terminate, cbs, Py_True, result, NULL);
                                Py_CLEAR(result);
                                if (r == NULL)
                                    goto error_ev;
                                Py_DECREF(r);
                                break;
                            }
                            if (sr == PYGEN_ERROR) {
                                PyObject *t, *v, *tb, *r;
                                PyErr_Fetch(&t, &v, &tb);
                                PyErr_NormalizeException(&t, &v, &tb);
                                if (v != NULL && tb != NULL)
                                    PyException_SetTraceback(v, tb);
                                r = PyObject_CallFunctionObjArgs(
                                    S_terminate, cbs, Py_False,
                                    v ? v : Py_None, NULL);
                                Py_XDECREF(t);
                                Py_XDECREF(v);
                                Py_XDECREF(tb);
                                if (r == NULL)
                                    goto error_ev;
                                Py_DECREF(r);
                                break;
                            }
                            if (PyLong_CheckExact(result)) {
                                int ov2;
                                long long n2 = PyLong_AsLongLongAndOverflow(
                                    result, &ov2);
                                int huge2 = ov2 > 0 ||
                                            (ov2 == 0 && n2 >= 0 &&
                                             n2 > (LLONG_MAX >> 1) - snow);
                                if (ov2 == 0 && n2 >= 0 && !huge2 &&
                                    PyList_GET_SIZE(queue) == 0) {
                                    /* Still the only pending event:
                                     * keep sprinting. */
                                    nxt = n2;
                                    Py_CLEAR(result);
                                    continue;
                                }
                                if (ov2 < 0 || (ov2 == 0 && n2 < 0)) {
                                    PyObject *msg = PyUnicode_FromFormat(
                                        "negative delay %S", result);
                                    PyObject *exc, *r;
                                    Py_CLEAR(result);
                                    if (msg == NULL)
                                        goto error_ev;
                                    exc = PyObject_CallFunctionObjArgs(
                                        PyExc_ValueError, msg, NULL);
                                    Py_DECREF(msg);
                                    if (exc == NULL)
                                        goto error_ev;
                                    r = PyObject_CallFunctionObjArgs(
                                        S_terminate, cbs, Py_False, exc,
                                        NULL);
                                    Py_DECREF(exc);
                                    if (r == NULL)
                                        goto error_ev;
                                    Py_DECREF(r);
                                    break;
                                }
                                /* The resume scheduled real events (or
                                 * the delay is huge): re-arm into the
                                 * shared heap and leave the sprint. */
                                if (rearm_push(sim, queue, pool, eid_next,
                                               event, cbs, result, snow, n2,
                                               huge2, &rearmed, &reused,
                                               &created) < 0) {
                                    result = NULL;
                                    goto error_ev;
                                }
                                result = NULL;
                                break;
                            }
                            /* Waiting on an event: subscribe and leave
                             * the sprint. */
                            {
                                PyObject *r = PyObject_CallFunctionObjArgs(
                                    S_continue, cbs, result, NULL);
                                Py_CLEAR(result);
                                if (r == NULL)
                                    goto error_ev;
                                Py_DECREF(r);
                            }
                            break;
                        }
                        /* The sprint exits mark the carrier processed;
                         * fall through to the recycle check exactly
                         * like the Python sprint does. */
                        Py_INCREF(Py_None);
                        slot_store(sim, o_si_active, Py_None);
                        goto post_dispatch;
                    } else {
                        if (rearm_push(sim, queue, pool, eid_next, event,
                                       cbs, result, now, nxt, huge, &rearmed,
                                       &reused, &created) < 0) {
                            result = NULL; /* stolen by rearm_push */
                            goto error_ev;
                        }
                        result = NULL;
                        Py_INCREF(Py_None);
                        slot_store(sim, o_si_active, Py_None);
                        Py_DECREF(cbs);
                        Py_DECREF(event);
                        continue; /* skip the recycle check, as Python does */
                    }
                } else {
                    /* Waiting on an event (or other non-int yield):
                     * subscribe through Process._continue. */
                    PyObject *r = PyObject_CallFunctionObjArgs(
                        S_continue, cbs, result, NULL);
                    Py_DECREF(result);
                    if (r == NULL)
                        goto error_ev;
                    Py_DECREF(r);
                }
                Py_INCREF(Py_None);
                slot_store(sim, o_si_active, Py_None);
                goto post_dispatch;
            }
            /* A failed event with a single process waiter: generic call
             * (Process.__call__ delivers the failure). */
            {
                PyObject *r = PyObject_CallOneArg(cbs, event);
                if (r == NULL)
                    goto error_ev;
                Py_DECREF(r);
            }
        } else if (cbs != NULL && PyList_CheckExact(cbs)) {
            Py_ssize_t i;
            for (i = 0; i < PyList_GET_SIZE(cbs); i++) {
                PyObject *cb = PyList_GET_ITEM(cbs, i);
                PyObject *r;
                Py_INCREF(cb);
                r = PyObject_CallOneArg(cb, event);
                Py_DECREF(cb);
                if (r == NULL)
                    goto error_ev;
                Py_DECREF(r);
            }
        } else if (cbs != NULL && cbs != S_no_waiters && cbs != Py_None) {
            PyObject *r = PyObject_CallOneArg(cbs, event);
            if (r == NULL)
                goto error_ev;
            Py_DECREF(r);
        }

    post_dispatch:
        if (Py_IS_TYPE(event, S_Timeout)) {
            /* A Timeout can never fail; recycle it when the loop holds
             * the only remaining reference. */
            if (Py_REFCNT(event) == 1 &&
                PyList_GET_SIZE(pool) < S_pool_limit) {
                if (PyList_Append(pool, event) < 0)
                    goto error_ev;
            }
        } else {
            PyObject *okobj2 = SLOT(event, o_ev_ok);
            PyObject *defused = SLOT(event, o_ev_defused);
            int ok2 = okobj2 ? PyObject_IsTrue(okobj2) : 1;
            int df = defused ? PyObject_IsTrue(defused) : 0;
            if (ok2 < 0 || df < 0)
                goto error_ev;
            if (!ok2 && !df) {
                /* An unhandled failure: crash the simulation. */
                PyObject *exc = SLOT(event, o_ev_value);
                if (exc != NULL && PyExceptionInstance_Check(exc)) {
                    Py_INCREF(exc);
                    PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
                    Py_DECREF(exc);
                } else {
                    PyErr_SetString(PyExc_TypeError,
                                    "failed event value is not an exception");
                }
                goto error_ev;
            }
        }
        Py_XDECREF(cbs);
        Py_DECREF(event);
        continue;

    error_ev:
        Py_XDECREF(cbs);
        Py_DECREF(event);
        goto error;
    }

error:
    flush_counters(sim, rearmed, reused, created, steps);
    Py_DECREF(queue);
    Py_DECREF(pool);
    Py_DECREF(eid_next);
    return NULL;
}

/* -- module ------------------------------------------------------------- */

static PyMethodDef corefast_methods[] = {
    {"bind", corefast_bind, METH_O,
     "Capture the kernel's classes, sentinels and slot offsets."},
    {"run_fast", corefast_run_fast, METH_O,
     "Run the sink-free dispatch loop on a Simulator until it stops."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef corefast_module = {
    PyModuleDef_HEAD_INIT,
    "repro.sim._corefast",
    "Compiled dispatch loop for the repro.sim kernel.",
    -1,
    corefast_methods,
};

PyMODINIT_FUNC
PyInit__corefast(void)
{
    PyObject *mod = PyModule_Create(&corefast_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddStringConstant(mod, "__version__", COREFAST_VERSION) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
