"""Generator-based discrete-event simulation kernel.

The kernel underlies every other subsystem of the reproduction: the
hardware model (:mod:`repro.hardware`), the Xylem OS model
(:mod:`repro.xylem`) and the Cedar Fortran runtime model
(:mod:`repro.runtime`) are all collections of simulation processes
scheduled by a single :class:`Simulator`.
"""

from repro.sim.core import (
    PENDING,
    AllOf,
    AnyOf,
    Condition,
    Event,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.errors import (
    DeadlockSuspected,
    EmptySchedule,
    Interrupt,
    RunawaySimulation,
    SimulationError,
    StopSimulation,
)
from repro.sim.resources import (
    ArbitratedResource,
    Gate,
    KeyedRequest,
    PriorityRequest,
    PriorityResource,
    Request,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "ArbitratedResource",
    "Condition",
    "DeadlockSuspected",
    "EmptySchedule",
    "Event",
    "Gate",
    "Interrupt",
    "KeyedRequest",
    "PENDING",
    "PriorityRequest",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "RunawaySimulation",
    "Simulator",
    "SimulationError",
    "Store",
    "StopSimulation",
    "Timeout",
]
