"""Shared-resource primitives for the simulation kernel.

Provides SimPy-style resources:

* :class:`Resource` -- capacity-limited FIFO resource (e.g. a lock with
  ``capacity=1``, a memory bank port, a bus).
* :class:`PriorityResource` -- like :class:`Resource` but requests carry
  a priority (lower value is served first).
* :class:`Store` -- a FIFO buffer of Python objects (e.g. a switch
  output queue in the network model).

All requests are events, so processes use them as::

    req = resource.request()
    yield req
    ...critical section...
    resource.release(req)

or with the context-manager style helper::

    with resource.request() as req:
        yield req
        ...
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from types import TracebackType

from repro.sim.core import Event, Simulator
from repro.sim.errors import SimulationError

__all__ = [
    "ArbitratedResource",
    "KeyedRequest",
    "PriorityRequest",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
]


class Request(Event):
    """A request for one slot of a :class:`Resource`.

    Triggers when the slot is granted.  Can be used as a context manager
    so the slot is automatically released when the ``with`` block exits.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_value: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (or withdraw the request if still queued)."""
        self.resource.release(self)


class PriorityRequest(Request):
    """A :class:`Request` with a priority (lower value served first)."""

    __slots__ = ("priority", "order")

    def __init__(self, resource: "PriorityResource", priority: int) -> None:
        super().__init__(resource)
        self.priority = priority
        self.order = resource._order
        resource._order += 1

    def _sort_key(self) -> tuple[int, int]:
        return (self.priority, self.order)


class Resource:
    """Capacity-limited resource with FIFO queueing.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of slots that may be held simultaneously.
    """

    # Resources are instantiated per bank/port/lock -- hundreds per
    # machine -- and their attributes sit on the request/release hot
    # path, so the layout is fixed like the kernel classes'.
    __slots__ = ("sim", "_capacity", "_users", "_waiting")

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self._capacity = capacity
        self._users: list[Request] = []
        self._waiting: deque[Request] = deque()

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Request one slot; the returned event triggers when granted."""
        req = Request(self)
        if len(self._users) < self._capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Release a granted slot (or withdraw a queued request)."""
        try:
            self._users.remove(request)
        except ValueError:
            # Not a user: maybe still waiting.
            try:
                self._waiting.remove(request)
            except ValueError:
                pass
            return
        self._grant_next()

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            req = self._waiting.popleft()
            self._users.append(req)
            req.succeed()

    def acquire(self) -> Generator:
        """Process-style helper: ``yield from resource.acquire()``.

        Returns the granted request, which must later be passed to
        :meth:`release`.
        """
        req = self.request()
        yield req
        return req


class KeyedRequest(Request):
    """A :class:`Request` carrying a stable arbitration key."""

    __slots__ = ("key", "arrival")

    def __init__(self, resource: "ArbitratedResource", key: int) -> None:
        super().__init__(resource)
        self.key = key
        self.arrival = resource.sim.now


class ArbitratedResource(Resource):
    """A :class:`Resource` whose same-instant grants are tie-stable.

    A plain :class:`Resource` grants in *arrival order*: when several
    processes request in the same nanosecond, whoever's event happened
    to pop first wins.  That order is decided only by queue insertion --
    the DES analog of an unsynchronized data race -- so any model
    quantity downstream of the winner (e.g. which cluster picks which
    self-scheduled iteration) silently depends on the kernel's
    tie-breaker.  The tie-break perturbation sanitizer
    (``repro.analyze.race``) flags exactly this.

    This subclass instead *defers* every grant decision to the end of
    the current timestep (via :meth:`Simulator.schedule_at_tail`), by
    which point all same-instant requests are queued, and grants to the
    lowest ``(arrival, key)``: FIFO across distinct instants, stable
    caller-chosen key within an instant.  Grants still trigger within
    the same nanosecond, so simulated timing is unchanged; only the
    arbitrary component of same-instant ordering is removed.

    Callers must pass keys unique among simultaneous requesters (e.g.
    the requesting CE or task id); duplicate keys fall back to arrival
    order, which re-opens the hazard.
    """

    __slots__ = ("_arb_pending",)

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._arb_pending = False

    def request(self, key: int = 0) -> KeyedRequest:  # type: ignore[override]
        """Request one slot with arbitration *key* (lower wins a tie)."""
        req = KeyedRequest(self, key)
        self._waiting.append(req)
        self._schedule_arbitration()
        return req

    def release(self, request: Request) -> None:
        """Release a granted slot (or withdraw a queued request)."""
        try:
            self._users.remove(request)
        except ValueError:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass
            return
        if self._waiting:
            self._schedule_arbitration()

    def _schedule_arbitration(self) -> None:
        if self._arb_pending or len(self._users) >= self._capacity:
            return
        self._arb_pending = True
        self.sim.call_at_tail(self._arbitrate)

    def _arbitrate(self, _event: Event) -> None:
        """End-of-tick grant pass (runs after all same-instant requests)."""
        self._arb_pending = False
        waiting = self._waiting
        while waiting and len(self._users) < self._capacity:
            best = min(waiting, key=_keyed_order)
            waiting.remove(best)
            self._users.append(best)
            best.succeed()

    def _grant_next(self) -> None:  # pragma: no cover - defensive
        # Grants go through _arbitrate(); nothing must bypass it.
        raise SimulationError("ArbitratedResource grants only via arbitration")


def _keyed_order(req: Request) -> tuple[int, int]:
    return (req.arrival, req.key)  # type: ignore[attr-defined]


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority."""

    __slots__ = ("_order",)

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._order = 0
        self._waiting: list[PriorityRequest] = []  # kept sorted

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Request a slot with *priority* (lower is served first)."""
        req = PriorityRequest(self, priority)
        if len(self._users) < self._capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._insort(req)
        return req

    def _insort(self, req: PriorityRequest) -> None:
        key = req._sort_key()
        lo, hi = 0, len(self._waiting)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._waiting[mid]._sort_key() <= key:
                lo = mid + 1
            else:
                hi = mid
        self._waiting.insert(lo, req)

    def release(self, request: Request) -> None:
        try:
            self._users.remove(request)
        except ValueError:
            try:
                self._waiting.remove(request)  # type: ignore[arg-type]
            except ValueError:
                pass
            return
        self._grant_next()

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            req = self._waiting.pop(0)
            self._users.append(req)
            req.succeed()


class Store:
    """An unbounded (or bounded) FIFO buffer of Python objects.

    One :class:`Store` backs every switch output queue in the packet
    network, so the fixed layout matters at machine scale.
    """

    __slots__ = ("sim", "capacity", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: int | float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[object] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, object]] = deque()

    @property
    def items(self) -> list[object]:
        """Snapshot of the buffered items (oldest first)."""
        return list(self._items)

    def put(self, item: object) -> Event:
        """Put *item* into the store; triggers when accepted."""
        event = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Get the oldest item; the event's value is the item."""
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            event.succeed(item)
            self._admit_putters()
        elif self._putters:
            put_event, item = self._putters.popleft()
            put_event.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def _admit_putters(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed()

    def __len__(self) -> int:
        return len(self._items)


class Gate:
    """A broadcast gate: processes wait until it is opened.

    Unlike an :class:`Event`, a gate can be reused: :meth:`open` releases
    every current waiter, :meth:`close` re-arms it.  Models the
    "post work / wait for work" handshake of the Cedar runtime.
    """

    __slots__ = ("sim", "_open", "_waiters")

    def __init__(self, sim: Simulator, open_: bool = False) -> None:
        self.sim = sim
        self._open = open_
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        """Whether the gate currently lets waiters through."""
        return self._open

    def wait(self) -> Event:
        """Event that triggers when the gate is (or becomes) open."""
        event = Event(self.sim)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def open(self, value: object = None) -> None:
        """Open the gate, releasing all waiters."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)

    def close(self) -> None:
        """Close the gate so new waiters block."""
        self._open = False


__all__.append("Gate")
