"""Deterministic fault injection for the Cedar reproduction.

The paper characterises a *healthy* Cedar; this package asks the
complementary question -- how do the paper's overhead categories shift
when the machine degrades?  Faults are scheduled in **sim time** from a
seeded :class:`CampaignSpec` and applied through the model's existing
mechanisms (slower banks, degraded switches, deconfigured CEs, inflated
kernel locks, page-fault storms), so their cost *emerges* through the
same contention/OS/runtime paths the paper measures rather than being
charged directly.

Entry points:

* :func:`run_with_campaign` -- run one application under a campaign.
* :func:`degraded_mode_experiment` -- the healthy-vs-degraded breakdown
  comparison (``docs/fault-injection.md``).
* ``cedar-repro inject`` / ``cedar-repro campaign`` -- the CLI.
"""

from repro.faults.campaign import CampaignRunOutcome, run_with_campaign
from repro.faults.experiments import degraded_campaign, degraded_mode_experiment
from repro.faults.injector import FaultInjectionError, FaultInjector, FaultLedger, InjectedFault
from repro.faults.spec import (
    FAULT_KINDS,
    CampaignError,
    CampaignSpec,
    FaultEvent,
    generate_campaign,
    load_campaign,
    save_campaign,
)

__all__ = [
    "FAULT_KINDS",
    "CampaignError",
    "CampaignRunOutcome",
    "CampaignSpec",
    "FaultEvent",
    "FaultInjectionError",
    "FaultInjector",
    "FaultLedger",
    "InjectedFault",
    "degraded_campaign",
    "degraded_mode_experiment",
    "generate_campaign",
    "load_campaign",
    "run_with_campaign",
    "save_campaign",
]
