"""Deterministic fault injection for the Cedar reproduction.

The paper characterises a *healthy* Cedar; this package asks the
complementary question -- how do the paper's overhead categories shift
when the machine degrades?  Faults are scheduled in **sim time** from a
seeded :class:`CampaignSpec` and applied through the model's existing
mechanisms (slower banks, degraded switches, deconfigured CEs, inflated
kernel locks, page-fault storms), so their cost *emerges* through the
same contention/OS/runtime paths the paper measures rather than being
charged directly.

Entry points:

* :func:`run_with_campaign` -- run one application under a campaign.
* :func:`degraded_mode_experiment` -- the healthy-vs-degraded breakdown
  comparison (``docs/fault-injection.md``).
* ``cedar-repro inject`` / ``cedar-repro campaign`` -- the CLI.

:mod:`repro.faults.host` is the *other* fault plane: seeded chaos
against the **host** running the campaign (SIGKILLed workers, hangs,
stragglers, corrupted cache entries), used to exercise the crash-safe
execution layer in :mod:`repro.parallel.durable` rather than the
simulated machine (``docs/resilience.md``).
"""

from repro.faults.campaign import CampaignRunOutcome, run_with_campaign
from repro.faults.experiments import degraded_campaign, degraded_mode_experiment
from repro.faults.host import (
    HOST_CHAOS_SCHEMA,
    HOST_FAULT_KINDS,
    HostChaosError,
    HostChaosPlan,
    HostFault,
    corrupt_cache_entry,
    generate_host_chaos,
    load_host_chaos,
    save_host_chaos,
)
from repro.faults.injector import FaultInjectionError, FaultInjector, FaultLedger, InjectedFault
from repro.faults.spec import (
    FAULT_KINDS,
    CampaignError,
    CampaignSpec,
    FaultEvent,
    generate_campaign,
    load_campaign,
    save_campaign,
)

__all__ = [
    "FAULT_KINDS",
    "HOST_CHAOS_SCHEMA",
    "HOST_FAULT_KINDS",
    "CampaignError",
    "CampaignRunOutcome",
    "CampaignSpec",
    "FaultEvent",
    "FaultInjectionError",
    "FaultInjector",
    "FaultLedger",
    "HostChaosError",
    "HostChaosPlan",
    "HostFault",
    "InjectedFault",
    "corrupt_cache_entry",
    "degraded_campaign",
    "degraded_mode_experiment",
    "generate_campaign",
    "generate_host_chaos",
    "load_campaign",
    "load_host_chaos",
    "run_with_campaign",
    "save_campaign",
    "save_host_chaos",
]
