"""Campaign specifications: which faults, when, and against what.

A campaign is a JSON-serialisable, seeded description of a fault
schedule.  Everything that varies between runs lives here; the injector
(:mod:`repro.faults.injector`) is a pure interpreter of the spec, so a
given ``(campaign, seed)`` pair always produces the same degraded run
(the determinism contract of ``docs/fault-injection.md``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "CampaignError",
    "CampaignSpec",
    "FaultEvent",
    "generate_campaign",
    "load_campaign",
    "save_campaign",
]

#: Supported fault kinds, in catalogue order (docs/fault-injection.md).
FAULT_KINDS = (
    "bank_slow",
    "bank_offline",
    "switch_degrade",
    "switch_stall",
    "ce_deconfig",
    "lock_inflate",
    "pagefault_storm",
)


class CampaignError(ValueError):
    """A campaign spec is malformed (bad JSON, unknown kind, bad field)."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at_ns:
        Sim time at which the fault strikes.
    duration_ns:
        How long it lasts before reverting; ``None`` means permanent.
        ``ce_deconfig`` and ``pagefault_storm`` must be permanent (a
        dropped CE stays dropped; a storm is instantaneous).
    target:
        Kind-specific index: memory module (``bank_*``), forward-network
        output port (``switch_stall``), or CE id (``ce_deconfig``).
    factor:
        Multiplier for ``bank_slow`` (service time) and ``lock_inflate``
        (critical-section hold time); must be > 1.
    fraction:
        Resident-set fraction dropped by ``pagefault_storm``; in (0, 1].
    extra_cycles:
        Per-hop penalty in CE cycles for ``switch_degrade``; >= 1.
    """

    kind: str
    at_ns: int
    duration_ns: int | None = None
    target: int | None = None
    factor: float | None = None
    fraction: float | None = None
    extra_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise CampaignError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_ns < 0:
            raise CampaignError(f"{self.kind}: at_ns must be >= 0, got {self.at_ns}")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise CampaignError(
                f"{self.kind}: duration_ns must be positive or null, "
                f"got {self.duration_ns}"
            )
        validator = getattr(self, f"_check_{self.kind}")
        validator()

    def _require_target(self) -> None:
        if self.target is None or self.target < 0:
            raise CampaignError(f"{self.kind}: requires a non-negative target index")

    def _check_bank_slow(self) -> None:
        self._require_target()
        if self.factor is None or self.factor <= 1.0:
            raise CampaignError(f"bank_slow: factor must be > 1, got {self.factor}")

    def _check_bank_offline(self) -> None:
        self._require_target()

    def _check_switch_degrade(self) -> None:
        if self.extra_cycles is None or self.extra_cycles < 1:
            raise CampaignError(
                f"switch_degrade: extra_cycles must be >= 1, got {self.extra_cycles}"
            )

    def _check_switch_stall(self) -> None:
        self._require_target()
        if self.duration_ns is None:
            raise CampaignError(
                "switch_stall: duration_ns is required (a permanently stalled "
                "port can never complete the run)"
            )

    def _check_ce_deconfig(self) -> None:
        self._require_target()
        if self.duration_ns is not None:
            raise CampaignError(
                "ce_deconfig: must be permanent (duration_ns null); Xylem does "
                "not return dropped CEs mid-run"
            )

    def _check_lock_inflate(self) -> None:
        if self.factor is None or self.factor <= 1.0:
            raise CampaignError(f"lock_inflate: factor must be > 1, got {self.factor}")

    def _check_pagefault_storm(self) -> None:
        if self.fraction is None or not 0.0 < self.fraction <= 1.0:
            raise CampaignError(
                f"pagefault_storm: fraction must be in (0, 1], got {self.fraction}"
            )
        if self.duration_ns is not None:
            raise CampaignError(
                "pagefault_storm: must be instantaneous (duration_ns null)"
            )


@dataclass(frozen=True)
class CampaignSpec:
    """A named, seeded fault schedule plus its intended sweep grid."""

    name: str
    seed: int = 1994
    description: str = ""
    #: Applications to sweep when the campaign itself drives a sweep
    #: (``cedar-repro campaign``); empty means the caller chooses.
    apps: tuple[str, ...] = ()
    #: Processor counts to sweep; empty means the caller chooses.
    configs: tuple[int, ...] = ()
    faults: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign name must be non-empty")

    def to_dict(self) -> dict:
        """JSON-serialisable form (schema ``cedar-repro/campaign/v1``)."""
        return {
            "schema": "cedar-repro/campaign/v1",
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "apps": list(self.apps),
            "configs": list(self.configs),
            "faults": [
                {k: v for k, v in asdict(f).items() if v is not None}
                for f in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Parse a campaign dict, raising :class:`CampaignError` on junk."""
        if not isinstance(data, dict):
            raise CampaignError(f"campaign must be a JSON object, got {type(data).__name__}")
        known = {"schema", "name", "seed", "description", "apps", "configs", "faults"}
        unknown = set(data) - known
        if unknown:
            raise CampaignError(f"unknown campaign fields: {sorted(unknown)}")
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, list):
            raise CampaignError("'faults' must be a list")
        faults = []
        for index, raw in enumerate(raw_faults):
            if not isinstance(raw, dict):
                raise CampaignError(f"fault #{index} must be an object")
            try:
                faults.append(FaultEvent(**raw))
            except TypeError as exc:
                raise CampaignError(f"fault #{index}: {exc}") from exc
        try:
            return cls(
                name=data.get("name", ""),
                seed=int(data.get("seed", 1994)),
                description=str(data.get("description", "")),
                apps=tuple(data.get("apps", ())),
                configs=tuple(int(p) for p in data.get("configs", ())),
                faults=tuple(faults),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, CampaignError):
                raise
            raise CampaignError(f"malformed campaign: {exc}") from exc


def load_campaign(path: str | Path) -> CampaignSpec:
    """Load a campaign JSON file, raising :class:`CampaignError` on junk."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign file {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CampaignError(f"campaign file {path} is not valid JSON: {exc}") from exc
    return CampaignSpec.from_dict(data)


def save_campaign(spec: CampaignSpec, path: str | Path) -> None:
    """Write *spec* as pretty-printed JSON."""
    Path(path).write_text(json.dumps(spec.to_dict(), indent=2) + "\n")


def generate_campaign(
    seed: int,
    n_faults: int = 4,
    horizon_ns: int = 50_000_000,
    n_memory_modules: int = 32,
    n_processors: int = 32,
    ces_per_cluster: int = 8,
    name: str | None = None,
) -> CampaignSpec:
    """Generate a random (but seed-deterministic) campaign.

    Draws kinds, strike times and targets from a single
    ``np.random.default_rng(seed)`` stream, so the same seed always
    yields the same spec.  ``switch_stall`` is excluded from random
    generation (it is only meaningful on packet-level runs); CE drops
    are capped below a full cluster so the kernel's cluster-empty guard
    cannot fire.
    """
    if n_faults <= 0:
        raise CampaignError(f"n_faults must be positive, got {n_faults}")
    rng = np.random.default_rng(seed)
    kinds = [k for k in FAULT_KINDS if k != "switch_stall"]
    faults = []
    dropped_per_cluster: dict[int, int] = {}
    for _ in range(n_faults):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        at_ns = int(rng.integers(0, horizon_ns))
        if kind == "bank_slow":
            faults.append(
                FaultEvent(
                    kind=kind,
                    at_ns=at_ns,
                    target=int(rng.integers(0, n_memory_modules)),
                    factor=float(2 + int(rng.integers(0, 7))),
                )
            )
        elif kind == "bank_offline":
            faults.append(
                FaultEvent(kind=kind, at_ns=at_ns, target=int(rng.integers(0, n_memory_modules)))
            )
        elif kind == "switch_degrade":
            faults.append(
                FaultEvent(kind=kind, at_ns=at_ns, extra_cycles=int(rng.integers(1, 9)))
            )
        elif kind == "ce_deconfig":
            ce = int(rng.integers(0, n_processors))
            cluster = ce // ces_per_cluster
            if dropped_per_cluster.get(cluster, 0) >= ces_per_cluster - 1:
                continue
            dropped_per_cluster[cluster] = dropped_per_cluster.get(cluster, 0) + 1
            faults.append(FaultEvent(kind=kind, at_ns=at_ns, target=ce))
        elif kind == "lock_inflate":
            faults.append(
                FaultEvent(
                    kind=kind,
                    at_ns=at_ns,
                    factor=float(2 + int(rng.integers(0, 4))),
                    duration_ns=int(rng.integers(1, horizon_ns)),
                )
            )
        else:  # pagefault_storm
            faults.append(
                FaultEvent(
                    kind=kind,
                    at_ns=at_ns,
                    fraction=float(int(rng.integers(1, 11))) / 10.0,
                )
            )
    return CampaignSpec(
        name=name or f"generated-{seed}",
        seed=seed,
        description=f"randomly generated: {n_faults} faults over {horizon_ns} ns",
        faults=tuple(sorted(faults, key=lambda f: (f.at_ns, f.kind))),
    )
