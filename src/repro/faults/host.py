"""Host-level chaos: faults against the *harness*, not the machine.

:mod:`repro.faults` degrades the simulated Cedar; this module degrades
the measurement campaign itself -- the worker processes, the result
cache, the coordinator -- so the crash-safe execution layer
(:mod:`repro.parallel.durable`) can be exercised against the failures
long-running measurement infrastructure actually hits:

* ``worker_kill`` -- SIGKILL the worker mid-cell (a timer thread fires
  while the simulation runs, so the coordinator sees a broken pool with
  the cell genuinely in flight);
* ``worker_hang`` -- the worker stops making progress before the cell
  runs (caught by the health monitor's deadline/heartbeat checks);
* ``slow_start`` -- the worker dawdles before running the cell,
  manufacturing a straggler for speculative re-dispatch to beat.

Plans are seeded and JSON-serialisable (schema
``cedar-repro/host-chaos/v1``): the same ``(plan, grid)`` pair always
sabotages the same cells on the same attempts, so chaos runs are as
reproducible as healthy ones.  Faults strike on a *specific attempt*
(default: only the first), which is what lets a bounded same-seed retry
recover -- the simulation underneath is deterministic, so the retried
cell produces the byte-identical result.

Cache sabotage (:func:`corrupt_cache_entry`) is coordinator-side: it
truncates or bit-flips an on-disk envelope so the
:class:`~repro.parallel.cache.ResultCache` quarantine path can be
driven end-to-end.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.cache import ResultCache

__all__ = [
    "HOST_CHAOS_SCHEMA",
    "HOST_FAULT_KINDS",
    "HostChaosError",
    "HostChaosPlan",
    "HostFault",
    "apply_host_fault",
    "corrupt_cache_entry",
    "generate_host_chaos",
    "load_host_chaos",
    "save_host_chaos",
]

HOST_CHAOS_SCHEMA = "cedar-repro/host-chaos/v1"

#: Supported host fault kinds (worker-side sabotage).
HOST_FAULT_KINDS = ("worker_kill", "worker_hang", "slow_start")

#: How long a hung worker sleeps: effectively forever on a CI clock --
#: the health monitor is expected to kill it long before this expires.
_HANG_S = 3600.0


class HostChaosError(ValueError):
    """A host-chaos plan is malformed (bad JSON, unknown kind, bad field)."""


@dataclass(frozen=True)
class HostFault:
    """One planned act of sabotage against one cell attempt.

    Attributes
    ----------
    kind:
        One of :data:`HOST_FAULT_KINDS`.
    app / n_processors:
        The victim cell.
    attempt:
        The attempt number the fault strikes on (1-based).  Defaulting
        to 1 means the bounded same-seed retry always recovers.
    delay_s:
        ``worker_kill``: host seconds into the cell before the SIGKILL
        timer fires (small, so the kill lands mid-simulation).
        ``slow_start``: how long the worker dawdles before running.
        Ignored for ``worker_hang``.
    """

    kind: str
    app: str
    n_processors: int
    attempt: int = 1
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in HOST_FAULT_KINDS:
            raise HostChaosError(
                f"unknown host fault kind {self.kind!r}; "
                f"expected one of {HOST_FAULT_KINDS}"
            )
        if self.attempt < 1:
            raise HostChaosError(
                f"{self.kind}: attempt must be >= 1, got {self.attempt}"
            )
        if self.delay_s < 0:
            raise HostChaosError(
                f"{self.kind}: delay_s must be >= 0, got {self.delay_s}"
            )


@dataclass(frozen=True)
class HostChaosPlan:
    """A named, seeded schedule of host faults over a sweep grid."""

    name: str
    seed: int = 1994
    faults: tuple[HostFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise HostChaosError("host chaos plan name must be non-empty")

    def for_cell(self, app: str, n_processors: int, attempt: int) -> HostFault | None:
        """The fault striking this cell attempt, if any (first match)."""
        for fault in self.faults:
            if (
                fault.app == app
                and fault.n_processors == n_processors
                and fault.attempt == attempt
            ):
                return fault
        return None

    def to_dict(self) -> dict:
        """JSON-serialisable form (schema ``cedar-repro/host-chaos/v1``)."""
        return {
            "schema": HOST_CHAOS_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "faults": [asdict(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HostChaosPlan":
        """Parse a plan dict, raising :class:`HostChaosError` on junk."""
        if not isinstance(data, dict):
            raise HostChaosError(
                f"host chaos plan must be a JSON object, got {type(data).__name__}"
            )
        known = {"schema", "name", "seed", "faults"}
        unknown = set(data) - known
        if unknown:
            raise HostChaosError(f"unknown host chaos fields: {sorted(unknown)}")
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, list):
            raise HostChaosError("'faults' must be a list")
        faults = []
        for index, raw in enumerate(raw_faults):
            if not isinstance(raw, dict):
                raise HostChaosError(f"host fault #{index} must be an object")
            try:
                faults.append(HostFault(**raw))
            except TypeError as exc:
                raise HostChaosError(f"host fault #{index}: {exc}") from exc
        try:
            return cls(
                name=data.get("name", ""),
                seed=int(data.get("seed", 1994)),
                faults=tuple(faults),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, HostChaosError):
                raise
            raise HostChaosError(f"malformed host chaos plan: {exc}") from exc


def load_host_chaos(path: str | Path) -> HostChaosPlan:
    """Load a host-chaos JSON file, raising :class:`HostChaosError` on junk."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise HostChaosError(f"cannot read host chaos plan {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise HostChaosError(
            f"host chaos plan {path} is not valid JSON: {exc}"
        ) from exc
    return HostChaosPlan.from_dict(data)


def save_host_chaos(plan: HostChaosPlan, path: str | Path) -> None:
    """Write *plan* as pretty-printed JSON."""
    Path(path).write_text(json.dumps(plan.to_dict(), indent=2) + "\n")


def generate_host_chaos(
    apps: "tuple[str, ...] | list[str]",
    configs: "tuple[int, ...] | list[int]",
    seed: int,
    kills: int = 1,
    hangs: int = 1,
    stragglers: int = 1,
    kill_delay_s: float = 0.05,
    straggle_delay_s: float = 1.5,
    name: str | None = None,
) -> HostChaosPlan:
    """Generate a seed-deterministic chaos plan over a sweep grid.

    Victim cells are drawn without replacement from ``apps x configs``
    with a single ``np.random.default_rng(seed)`` stream, so the same
    seed always sabotages the same cells.  Kills and hangs strike on
    attempt 1 only (the retry recovers); stragglers dawdle on every
    attempt of their cell (speculation, not retry, beats them).
    """
    grid = [(app, p) for app in apps for p in configs]
    wanted = kills + hangs + stragglers
    if wanted > len(grid):
        raise HostChaosError(
            f"plan wants {wanted} victim cells but the grid has {len(grid)}"
        )
    rng = np.random.default_rng(seed)
    victims = [grid[int(i)] for i in rng.choice(len(grid), size=wanted, replace=False)]
    faults: list[HostFault] = []
    for _ in range(kills):
        app, p = victims.pop()
        faults.append(
            HostFault(kind="worker_kill", app=app, n_processors=p, delay_s=kill_delay_s)
        )
    for _ in range(hangs):
        app, p = victims.pop()
        faults.append(HostFault(kind="worker_hang", app=app, n_processors=p))
    for _ in range(stragglers):
        app, p = victims.pop()
        faults.append(
            HostFault(
                kind="slow_start",
                app=app,
                n_processors=p,
                delay_s=straggle_delay_s,
            )
        )
    return HostChaosPlan(
        name=name or f"host-chaos-{seed}",
        seed=seed,
        faults=tuple(sorted(faults, key=lambda f: (f.app, f.n_processors, f.kind))),
    )


def apply_host_fault(fault: HostFault) -> "threading.Timer | None":
    """Execute one act of sabotage inside the worker process.

    * ``slow_start`` sleeps *delay_s* and returns ``None`` -- the cell
      then runs normally, just late.
    * ``worker_hang`` sleeps effectively forever; the health monitor is
      expected to SIGKILL this process.
    * ``worker_kill`` arms a timer thread that SIGKILLs this process
      *delay_s* from now and returns it -- the caller runs the cell so
      the kill lands mid-simulation.  Cancel the timer if the cell
      somehow finishes first (the fault then simply missed).
    """
    if fault.kind == "slow_start":
        time.sleep(fault.delay_s)
        return None
    if fault.kind == "worker_hang":
        time.sleep(_HANG_S)
        return None
    timer = threading.Timer(
        fault.delay_s, os.kill, args=(os.getpid(), signal.SIGKILL)
    )
    timer.daemon = True
    timer.start()
    return timer


def corrupt_cache_entry(
    cache: "ResultCache", key: str, mode: str = "truncate"
) -> Path:
    """Damage the on-disk envelope for *key* (chaos-harness seam).

    ``truncate`` halves the file; ``flip`` XORs one byte in the middle.
    Either way the entry fails its digest check on the next read and
    must be quarantined, never served.  Raises :class:`HostChaosError`
    if the entry does not exist.
    """
    path = cache.path_for(key)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise HostChaosError(f"no cache entry to corrupt for key {key}") from exc
    if mode == "truncate":
        path.write_bytes(raw[: len(raw) // 2])
    elif mode == "flip":
        middle = len(raw) // 2
        damaged = bytearray(raw)
        damaged[middle] ^= 0xFF
        path.write_bytes(bytes(damaged))
    else:
        raise HostChaosError(f"unknown corruption mode {mode!r}")
    return path
