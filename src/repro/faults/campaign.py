"""Run applications under a fault campaign.

Glues a :class:`~repro.faults.spec.CampaignSpec` to the experiment
runner: the campaign's injector is armed through the runner's
``pre_run_hook`` seam, so the degraded run uses exactly the same stack
assembly as a healthy one, and the same ``(campaign, seed)`` pair
always reproduces the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.runner import DEFAULT_SCALE, RunResult, run_application
from repro.faults.injector import FaultInjector, FaultLedger
from repro.faults.spec import CampaignSpec
from repro.xylem.params import XylemParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.apps.base import AppModel
    from repro.hardware.machine import CedarMachine
    from repro.obs.instrument import Observability
    from repro.runtime.library import CedarFortranRuntime
    from repro.runtime.params import RuntimeParams
    from repro.sim import Simulator
    from repro.xylem.kernel import XylemKernel

__all__ = ["CampaignRunOutcome", "run_with_campaign"]


@dataclass
class CampaignRunOutcome:
    """One application run under one campaign."""

    spec: CampaignSpec
    result: RunResult
    injector: FaultInjector

    @property
    def ledger(self) -> FaultLedger:
        """The injector's fault ledger (records + counters)."""
        return self.injector.ledger


def _resolve_app(app: str) -> "Callable[..., AppModel]":
    from repro.analyze.sanitize import _resolve_builder

    return _resolve_builder(app)


def run_with_campaign(
    spec: CampaignSpec,
    app: str,
    n_processors: int,
    scale: float = DEFAULT_SCALE,
    seed: int | None = None,
    obs: "Observability | None" = None,
    rt_params: "RuntimeParams | None" = None,
    statfx_interval_ns: int = 200_000,
    max_events: int | None = None,
    max_sim_time: int | None = None,
) -> CampaignRunOutcome:
    """Run *app* at *n_processors* with *spec*'s faults injected.

    *seed* overrides the campaign's seed for the OS jitter stream;
    ``faults.*`` metrics are folded into *obs*'s registry when given.
    *statfx_interval_ns* is forwarded to the runner so campaign cells
    honour the same sampling cadence as healthy ones.
    """
    builder = _resolve_app(app)
    injectors: list[FaultInjector] = []

    def hook(
        sim: Simulator,
        machine: CedarMachine,
        kernel: XylemKernel,
        runtime: CedarFortranRuntime,
    ) -> None:
        injector = FaultInjector(sim, machine, kernel, runtime, spec)
        injector.arm()
        injectors.append(injector)

    result = run_application(
        builder(),
        n_processors,
        scale=scale,
        os_params=XylemParams(seed=seed if seed is not None else spec.seed),
        rt_params=rt_params,
        statfx_interval_ns=statfx_interval_ns,
        obs=obs,
        pre_run_hook=hook,
        max_events=max_events,
        max_sim_time=max_sim_time,
    )
    injector = injectors[0]
    if obs is not None:
        injector.ledger.collect(obs.registry)
    return CampaignRunOutcome(spec=spec, result=result, injector=injector)
