"""The fault injector: interprets a campaign spec against a live stack.

Armed through :data:`repro.core.runner.PreRunHook`, the injector spawns
one simulation process per scheduled fault.  Each process sleeps until
its strike time, applies the fault through the model's public
degradation hooks, and (for transient faults) reverts it after its
duration.  All state changes go through the same seams the rest of the
model uses, so degraded behaviour *emerges* -- a slow bank shows up as
longer memory time, a dropped CE as redistributed iterations, an
inflated lock as kernel spin.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field

from repro.faults.spec import CampaignSpec, FaultEvent
from repro.hardware.machine import CedarMachine
from repro.hardware.memory import GlobalMemorySystem
from repro.obs.registry import MetricsRegistry
from repro.runtime.library import CedarFortranRuntime
from repro.sim import Simulator
from repro.xylem.kernel import XylemKernel

__all__ = ["FaultInjectionError", "FaultInjector", "FaultLedger", "InjectedFault"]


class FaultInjectionError(RuntimeError):
    """A fault could not be applied against the current stack."""


@dataclass
class InjectedFault:
    """The record of one fault's lifetime during a run."""

    kind: str
    at_ns: int
    applied_ns: int = -1
    reverted_ns: int = -1
    target: int | None = None
    note: str = ""


@dataclass
class FaultLedger:
    """Counters of injection activity, harvested into ``faults.*``."""

    records: list[InjectedFault] = field(default_factory=list)
    injected: int = 0
    reverted: int = 0
    skipped: int = 0
    pages_invalidated: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def note_injected(self, record: InjectedFault) -> None:
        """Record one applied fault."""
        self.records.append(record)
        self.injected += 1
        self.by_kind[record.kind] = self.by_kind.get(record.kind, 0) + 1

    def note_skipped(self, record: InjectedFault) -> None:
        """Record a fault that could not apply on this run mode."""
        self.records.append(record)
        self.skipped += 1

    def collect(self, registry: MetricsRegistry) -> None:
        """Fold the ledger into an obs metrics registry."""
        registry.counter("faults.injected").inc(self.injected)
        registry.counter("faults.reverted").inc(self.reverted)
        registry.counter("faults.skipped").inc(self.skipped)
        for kind, count in sorted(self.by_kind.items()):
            registry.counter(f"faults.{kind}.count").inc(count)
        if self.pages_invalidated:
            registry.counter("faults.pagefault.pages_invalidated").inc(
                self.pages_invalidated
            )


class FaultInjector:
    """Applies one campaign's faults to one assembled simulation stack."""

    def __init__(
        self,
        sim: Simulator,
        machine: CedarMachine,
        kernel: XylemKernel,
        runtime: CedarFortranRuntime,
        spec: CampaignSpec,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.kernel = kernel
        self.runtime = runtime
        self.spec = spec
        self.ledger = FaultLedger()
        self._armed = False
        # Aggregate degradation mirrored into the analytic model.
        self._bank_factors: dict[int, float] = {}
        self._offline_banks: set[int] = set()
        self._link_penalty_cycles = 0

    def arm(self) -> None:
        """Spawn one injection process per scheduled fault (idempotent).

        Arming also sticky-disables the batched vector fast path on the
        packet-level memory (when built): every transaction of a fault
        campaign routes through the exact per-packet path from the
        start, keeping campaign runs bit-identical whether or not a
        fault has struck yet.
        """
        if self._armed:
            return
        self._armed = True
        memory = self._packet_memory()
        if memory is not None:
            memory.fastpath.disable()
        # Same discipline for the runtime and OS layers: lean locks,
        # spawn fusion and warm-page elision all route exact for the
        # whole campaign, so fault runs are bit-identical with the fast
        # paths compiled in or out.
        self.runtime.fastpath.disable()
        self.kernel.fastpath.disable()
        for index, fault in enumerate(self.spec.faults):
            self.sim.process(
                self._fault_process(fault),
                name=f"fault-{index}-{fault.kind}",
            )

    # -- the per-fault process -------------------------------------------

    def _fault_process(self, fault: FaultEvent) -> Generator:
        sim = self.sim
        if fault.at_ns > 0:
            yield sim.timeout(fault.at_ns)
        record = InjectedFault(kind=fault.kind, at_ns=fault.at_ns, target=fault.target)
        revert = self._apply(fault, record)
        if revert is None and record.note.startswith("skipped"):
            self.ledger.note_skipped(record)
            return
        record.applied_ns = sim.now
        self.ledger.note_injected(record)
        if fault.duration_ns is not None and revert is not None:
            yield sim.timeout(fault.duration_ns)
            revert()
            record.reverted_ns = sim.now
            self.ledger.reverted += 1

    # -- application per kind --------------------------------------------

    def _apply(
        self, fault: FaultEvent, record: InjectedFault
    ) -> Callable[[], None] | None:
        """Apply one fault; returns a revert callable or ``None``."""
        handler: Callable[
            [FaultEvent, InjectedFault], Callable[[], None] | None
        ] = getattr(self, f"_apply_{fault.kind}")
        return handler(fault, record)

    def _packet_memory(self) -> GlobalMemorySystem | None:
        """The packet-level memory system, if this run built one."""
        return self.machine._memory

    def _sync_analytic(self) -> None:
        """Mirror aggregate bank/link degradation into the analytic model."""
        n_modules = self.machine.config.n_memory_modules
        online = [m for m in range(n_modules) if m not in self._offline_banks]
        factors = [self._bank_factors.get(m, 1.0) for m in online]
        mean_factor = sum(factors) / len(online)
        self.machine.set_memory_degradation(
            bank_service_factor=mean_factor,
            worst_bank_factor=max(factors),
            offline_modules=len(self._offline_banks),
            link_penalty_cycles=float(self._link_penalty_cycles),
        )

    def _apply_bank_slow(
        self, fault: FaultEvent, record: InjectedFault
    ) -> Callable[[], None] | None:
        target = fault.target
        factor = fault.factor
        assert target is not None and factor is not None
        if target >= self.machine.config.n_memory_modules:
            raise FaultInjectionError(
                f"bank_slow target {target} out of range "
                f"(machine has {self.machine.config.n_memory_modules} modules)"
            )
        self._bank_factors[target] = factor
        self._sync_analytic()
        memory = self._packet_memory()
        if memory is not None:
            memory.set_bank_service_multiplier(target, factor)
        record.note = f"bank {target} service x{factor}"

        def revert() -> None:
            self._bank_factors.pop(target, None)
            self._sync_analytic()
            if memory is not None:
                memory.set_bank_service_multiplier(target, 1.0)

        return revert

    def _apply_bank_offline(
        self, fault: FaultEvent, record: InjectedFault
    ) -> Callable[[], None] | None:
        target = fault.target
        assert target is not None
        n_modules = self.machine.config.n_memory_modules
        if target >= n_modules:
            raise FaultInjectionError(f"bank_offline target {target} out of range")
        if len(self._offline_banks) + 1 >= n_modules:
            raise FaultInjectionError("cannot take the last online bank offline")
        self._offline_banks.add(target)
        self._sync_analytic()
        memory = self._packet_memory()
        if memory is not None:
            memory.set_bank_offline(target, True)
        record.note = f"bank {target} offline, traffic remapped onto survivors"

        def revert() -> None:
            self._offline_banks.discard(target)
            self._sync_analytic()
            if memory is not None:
                memory.set_bank_offline(target, False)

        return revert

    def _apply_switch_degrade(
        self, fault: FaultEvent, record: InjectedFault
    ) -> Callable[[], None] | None:
        extra_cycles = fault.extra_cycles
        assert extra_cycles is not None
        self._link_penalty_cycles += extra_cycles
        self._sync_analytic()
        memory = self._packet_memory()
        extra_ns = self.machine.config.cycles_to_ns(extra_cycles)
        if memory is not None:
            memory.forward.extra_hop_ns += extra_ns
            memory.backward.extra_hop_ns += extra_ns
        record.note = f"+{extra_cycles} cycles per switch hop"

        def revert() -> None:
            self._link_penalty_cycles -= extra_cycles
            self._sync_analytic()
            if memory is not None:
                memory.forward.extra_hop_ns -= extra_ns
                memory.backward.extra_hop_ns -= extra_ns

        return revert

    def _apply_switch_stall(
        self, fault: FaultEvent, record: InjectedFault
    ) -> Callable[[], None] | None:
        target = fault.target
        assert target is not None
        memory = self._packet_memory()
        if memory is None:
            # The analytic path has no individual ports to stall; the
            # campaign remains valid for packet-level runs.
            record.note = "skipped: switch_stall needs the packet-level memory path"
            return None
        if target >= memory.forward.n_outputs:
            raise FaultInjectionError(f"switch_stall target {target} out of range")
        # Stall the final forward-network hop feeding module `target`.
        hop = memory.forward.route(0, target)[-1]
        memory.forward.stall_port(*hop)
        record.note = f"forward-network port {hop} stalled"

        def revert() -> None:
            memory.forward.release_port(*hop)

        return revert

    def _apply_ce_deconfig(
        self, fault: FaultEvent, record: InjectedFault
    ) -> Callable[[], None] | None:
        target = fault.target
        assert target is not None
        self.kernel.deconfigure_ce(target)
        record.note = f"CE {target} deconfigured (permanent)"
        return None

    def _apply_lock_inflate(
        self, fault: FaultEvent, record: InjectedFault
    ) -> Callable[[], None] | None:
        factor = fault.factor
        assert factor is not None
        sections = self.kernel.critical_sections
        sections.set_hold_factor(sections.hold_factor * factor)
        record.note = f"critical-section holds x{factor}"

        def revert() -> None:
            # Divide rather than restore a snapshot so overlapping
            # inflations compose and revert independently.
            sections.set_hold_factor(sections.hold_factor / factor)

        return revert

    def _apply_pagefault_storm(
        self, fault: FaultEvent, record: InjectedFault
    ) -> Callable[[], None] | None:
        fraction = fault.fraction
        assert fraction is not None
        dropped = self.kernel.vm.invalidate_resident(fraction)
        self.ledger.pages_invalidated += dropped
        record.note = f"dropped {dropped} resident pages (fraction {fraction})"
        return None
