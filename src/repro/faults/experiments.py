"""Degraded-mode characterization: the paper's breakdown under faults.

The headline experiment of ``repro.faults``: run an application
healthy, then under a fixed degraded campaign (one memory bank 4x
slower from t=0, one CE deconfigured), and compare the Figure-3 style
completion-time breakdowns.  The shift is the measurement: the slow
bank surfaces as extra memory/contention time, the dropped CE as load
imbalance absorbed by the runtime's self-scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.breakdown import ct_breakdown, memory_decomposition
from repro.core.report import render_table
from repro.core.runner import RunResult, run_application
from repro.faults.campaign import CampaignRunOutcome, run_with_campaign
from repro.faults.spec import CampaignSpec, FaultEvent
from repro.xylem.categories import TimeCategory
from repro.xylem.params import XylemParams

__all__ = ["DegradedModeReport", "degraded_campaign", "degraded_mode_experiment"]


def degraded_campaign(seed: int = 1994) -> CampaignSpec:
    """The canonical degraded configuration: one slow bank + one dead CE."""
    return CampaignSpec(
        name="degraded-canonical",
        seed=seed,
        description="memory bank 0 four times slower from t=0; CE 1 deconfigured",
        faults=(
            FaultEvent(kind="bank_slow", at_ns=0, target=0, factor=4.0),
            FaultEvent(kind="ce_deconfig", at_ns=0, target=1),
        ),
    )


@dataclass
class DegradedModeReport:
    """Healthy-versus-degraded breakdown comparison."""

    n_processors: int
    scale: float
    seed: int
    campaign: CampaignSpec
    #: Rows: [app, mode, CT (s), user %, system %, interrupt %, kspin %,
    #: contention stall %].
    rows: list[list[object]] = field(default_factory=list)
    outcomes: dict[str, CampaignRunOutcome] = field(default_factory=dict)

    HEADERS = (
        "app",
        "mode",
        "CT (s)",
        "user %",
        "system %",
        "intr %",
        "kspin %",
        "stall %",
    )

    def render(self) -> str:
        """ASCII table of the comparison."""
        return render_table(
            list(self.HEADERS),
            self.rows,
            title=(
                f"Degraded-mode characterization (P={self.n_processors}, "
                f"campaign {self.campaign.name!r})"
            ),
        )


def _breakdown_row(app: str, mode: str, result: RunResult) -> list[object]:
    """One report row from a finished run (percentages of CT)."""
    n_clusters = result.config.n_clusters
    totals = dict.fromkeys(TimeCategory, 0)
    for cluster_id in range(n_clusters):
        for category, ns in ct_breakdown(result, cluster_id).items():
            totals[category] += ns
    wall = result.ct_ns * n_clusters
    decomposition = memory_decomposition(result)

    def pct(ns: float) -> float:
        return 100.0 * ns / wall if wall else 0.0

    # Burst stall accumulates per *CE* (concurrent bursts overlap), so
    # its natural denominator is CT x processors, not CT x clusters.
    ce_wall = result.ct_ns * result.config.n_processors
    stall_pct = 100.0 * decomposition.total_stall_ns / ce_wall if ce_wall else 0.0

    return [
        app,
        mode,
        result.ct_seconds,
        pct(totals[TimeCategory.USER]),
        pct(totals[TimeCategory.SYSTEM]),
        pct(totals[TimeCategory.INTERRUPT]),
        pct(totals[TimeCategory.KSPIN]),
        stall_pct,
    ]


def degraded_mode_experiment(
    apps: tuple[str, ...] = ("FLO52", "OCEAN"),
    n_processors: int = 8,
    scale: float = 0.01,
    seed: int = 1994,
    campaign: CampaignSpec | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> DegradedModeReport:
    """Run each app healthy and degraded; report the breakdown shift.

    With ``jobs > 1`` or a *cache_dir* the ``2 x len(apps)`` cells run
    through :func:`repro.parallel.execute_cells` -- healthy and
    degraded runs in parallel, served from the result cache on warm
    reruns.  The per-run :attr:`DegradedModeReport.outcomes` (which
    carry live fault injectors) are only available on the serial path.
    """
    from repro.analyze.sanitize import _resolve_builder

    spec = campaign if campaign is not None else degraded_campaign(seed)
    report = DegradedModeReport(
        n_processors=n_processors, scale=scale, seed=seed, campaign=spec
    )
    if jobs != 1 or cache_dir is not None:
        from repro.parallel import CellSpec, ResultCache, execute_cells

        specs = {
            (app, mode): CellSpec(
                app=app,
                n_processors=n_processors,
                scale=scale,
                seed=seed,
                campaign=spec if mode == "degraded" else None,
            )
            for app in apps
            for mode in ("healthy", "degraded")
        }
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        cells, failures = execute_cells(
            list(specs.values()), jobs=jobs, cache=cache
        )
        if failures:
            failure = failures[0]
            raise RuntimeError(
                f"degraded-mode cell {failure.app} P={failure.n_processors} "
                f"failed: {failure.error_type}: {failure.message}"
            )
        for app in apps:
            for mode in ("healthy", "degraded"):
                report.rows.append(
                    _breakdown_row(app, mode, cells[specs[(app, mode)]])
                )
        return report
    for app in apps:
        healthy = run_application(
            _resolve_builder(app)(),
            n_processors,
            scale=scale,
            os_params=XylemParams(seed=seed),
        )
        report.rows.append(_breakdown_row(app, "healthy", healthy))
        outcome = run_with_campaign(
            spec, app, n_processors, scale=scale, seed=seed
        )
        report.outcomes[app] = outcome
        report.rows.append(_breakdown_row(app, "degraded", outcome.result))
    return report
