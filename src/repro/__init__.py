"""Simulation-based reproduction of the ISCA'94 Cedar overhead study.

Natarajan, Sharma & Iyer, "Measurement-Based Characterization of Global
Memory and Network Contention, Operating System and Parallelization
Overheads: Case Study on a Shared-Memory Multiprocessor", ISCA 1994.

The original study measured the physical Cedar machine; this package
rebuilds the full stack in simulation -- hardware
(:mod:`repro.hardware`), the Xylem OS (:mod:`repro.xylem`), the Cedar
Fortran runtime (:mod:`repro.runtime`), workload models of the five
Perfect Benchmark applications (:mod:`repro.apps`), the measurement
facilities (:mod:`repro.hpm`) -- and re-runs the paper's methodology
(:mod:`repro.core`) on it.

Quickstart::

    from repro.apps import flo52
    from repro.core import run_application, user_breakdown

    result = run_application(flo52(), n_processors=32, scale=0.02)
    print(result.ct_seconds)                  # extrapolated CT
    print(user_breakdown(result, task_id=0))  # Figure-4-style breakdown
"""

from repro.core import run_application, run_phases
from repro.hardware import CedarConfig, CedarMachine, paper_configuration
from repro.runtime import LoopConstruct, ParallelLoop, SerialPhase
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "CedarConfig",
    "CedarMachine",
    "LoopConstruct",
    "ParallelLoop",
    "SerialPhase",
    "Simulator",
    "__version__",
    "paper_configuration",
    "run_application",
    "run_phases",
]
