"""The ``statfx`` software concurrency monitor.

``statfx`` measures the concurrency (average number of active
processors) on each cluster by periodic sampling; for multi-cluster
configurations the paper reports the sum of the per-cluster averages
(Section 3.1).

Sampling semantics
------------------

A sample at tick ``k * interval_ns`` reads the activity counts **as of
the start of that tick** -- before any same-tick activity flip is
applied.  This convention is order-free: it does not depend on how the
kernel happens to interleave same-tick events, which is what lets the
monitor run in either of two modes with identical sums:

``exact``
    A sampler process wakes every interval (one recycled Timeout per
    tick) and reads the board's start-of-tick counts, which the board
    maintains via a pre-mutation snapshot hook
    (:meth:`repro.hpm.activity.ActivityBoard.watch_snapshots`).

``push``
    No sampler process at all.  The board's pre-mutation watch hook
    calls back into the monitor before every effective activity flip;
    since counts are constant between flips, the monitor multiplies the
    standing counts by the number of sample ticks that elapsed.  This
    removes the single hottest event source in dense-sampling runs
    (one wake per 200 us of simulated time) while producing the exact
    sampler's sums and sample counts to the bit.

Push mode arms only for sink-free, unperturbed runs with the fast-path
policy enabled (:func:`repro.sim.policy.fastpath_policy`): the sampler
wake events disappear from the schedule, so runs that record event
traces or schedule fingerprints keep the exact sampler.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.hpm.activity import ActivityBoard
from repro.sim import Simulator
from repro.sim.policy import fastpath_policy

__all__ = ["Statfx"]


class Statfx:
    """Periodic sampler of per-cluster processor activity.

    Parameters
    ----------
    sim:
        Owning simulator.
    board:
        The activity board the runtime keeps up to date.
    interval_ns:
        Sampling period.  The default (1 ms of simulated time) is dense
        enough for the phase lengths the application models produce.
    """

    def __init__(self, sim: Simulator, board: ActivityBoard, interval_ns: int = 1_000_000) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.sim = sim
        self.board = board
        self.interval_ns = interval_ns
        self._samples = 0
        n_clusters = board.config.n_clusters
        self._sums = [0] * n_clusters
        self._process = None
        #: ``"push"`` or ``"exact"`` once started, ``None`` before.
        self.mode: str | None = None

    def start(self) -> None:
        """Begin sampling (idempotent).

        Chooses the mode once, here: push accrual when the fast-path
        policy allows it and the run is sink-free and unperturbed,
        the exact sampler process otherwise.
        """
        if self.mode is not None:
            return
        sim = self.sim
        if fastpath_policy() and sim._sink is None and not sim.tie_perturbed:
            self.mode = "push"
            self.board.watch(self._accrue)
        else:
            self.mode = "exact"
            self.board.watch_snapshots()
            self._process = sim.process(self._sample_loop(), name="statfx")

    # -- push mode ---------------------------------------------------------

    def _accrue(self) -> None:
        """Credit all sample ticks up to ``sim.now`` with the standing
        counts.

        Runs as the board's pre-mutation watch: the counts have been
        constant since the previous flip, so every sample tick in
        ``(samples * interval, now]`` saw exactly these values -- and a
        sample tick coinciding with ``now`` is credited the
        start-of-tick counts, matching the exact convention.
        """
        k = self.sim.now // self.interval_ns
        n = k - self._samples
        if n > 0:
            counts = self.board._cluster_active
            sums = self._sums
            for cluster_id in range(len(sums)):
                sums[cluster_id] += counts[cluster_id] * n
            self._samples = k

    def _settle(self) -> None:
        """Accrue pending push-mode samples before an accessor reads."""
        if self.mode == "push":
            self._accrue()

    # -- exact mode --------------------------------------------------------

    def _sample_loop(self) -> Generator:
        # Direct-delay yield: the kernel re-arms one recycled Timeout
        # per tick, so dense sampling costs no allocation.
        board = self.board
        while True:
            yield self.interval_ns
            for cluster_id in range(board.config.n_clusters):
                self._sums[cluster_id] += board.start_of_tick_active(cluster_id)
            self._samples += 1

    # -- accessors ---------------------------------------------------------

    @property
    def samples(self) -> int:
        """Samples taken so far (push mode settles lazily)."""
        self._settle()
        return self._samples

    def cluster_concurrency(self, cluster_id: int) -> float:
        """Sampled average concurrency on one cluster."""
        self._settle()
        if self._samples == 0:
            return 0.0
        return self._sums[cluster_id] / self._samples

    def total_concurrency(self) -> float:
        """Sum of per-cluster average concurrencies (the paper's value)."""
        return sum(
            self.cluster_concurrency(c) for c in range(self.board.config.n_clusters)
        )
