"""The ``statfx`` software concurrency monitor.

``statfx`` measures the concurrency (average number of active
processors) on each cluster by periodic sampling; for multi-cluster
configurations the paper reports the sum of the per-cluster averages
(Section 3.1).
"""

from __future__ import annotations

from collections.abc import Generator

from repro.hpm.activity import ActivityBoard
from repro.sim import Simulator

__all__ = ["Statfx"]


class Statfx:
    """Periodic sampler of per-cluster processor activity.

    Parameters
    ----------
    sim:
        Owning simulator.
    board:
        The activity board the runtime keeps up to date.
    interval_ns:
        Sampling period.  The default (1 ms of simulated time) is dense
        enough for the phase lengths the application models produce.
    """

    def __init__(self, sim: Simulator, board: ActivityBoard, interval_ns: int = 1_000_000) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.sim = sim
        self.board = board
        self.interval_ns = interval_ns
        self.samples = 0
        n_clusters = board.config.n_clusters
        self._sums = [0] * n_clusters
        self._process = None

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._process is None:
            self._process = self.sim.process(self._sample_loop(), name="statfx")

    def _sample_loop(self) -> Generator:
        # Direct-delay yield: the kernel re-arms one recycled Timeout
        # per tick, so dense sampling costs no allocation.
        while True:
            yield self.interval_ns
            for cluster_id in range(self.board.config.n_clusters):
                self._sums[cluster_id] += self.board.active_in_cluster(cluster_id)
            self.samples += 1

    def cluster_concurrency(self, cluster_id: int) -> float:
        """Sampled average concurrency on one cluster."""
        if self.samples == 0:
            return 0.0
        return self._sums[cluster_id] / self.samples

    def total_concurrency(self) -> float:
        """Sum of per-cluster average concurrencies (the paper's value)."""
        return sum(
            self.cluster_concurrency(c) for c in range(self.board.config.n_clusters)
        )
