"""Measurement facilities modelled after the paper's instrumentation.

* :class:`CedarHpm` -- the external, non-intrusive hardware trace
  monitor (``cedarhpm``) with 50 ns timestamps;
* :class:`Statfx` -- the software concurrency monitor (``statfx``);
* :class:`ActivityBoard` -- the per-CE activity state both monitors
  observe;
* the "Q" utilisation view is provided by
  :class:`repro.xylem.TimeAccounting`.
"""

from repro.hpm.activity import ActivityBoard
from repro.hpm.events import OS_EVENTS, RTL_EVENTS, EventType, TraceEvent
from repro.hpm.monitor import CedarHpm
from repro.hpm.statfx import Statfx
from repro.hpm.traces import load_trace, load_trace_meta, save_trace, trace_summary

__all__ = [
    "ActivityBoard",
    "CedarHpm",
    "EventType",
    "OS_EVENTS",
    "RTL_EVENTS",
    "Statfx",
    "TraceEvent",
    "load_trace",
    "load_trace_meta",
    "save_trace",
    "trace_summary",
]
