"""The ``cedarhpm`` hardware performance monitor model.

The real monitor is an external, non-intrusive tracing facility
developed at UICSRD: instrumented code posts events to hardware trigger
points; the monitor records ``(event id, timestamp, processor id)``
into trace buffers with 50 ns timestamp resolution, and the buffers are
off-loaded for analysis after the run (Section 4).  Recording costs one
move instruction, i.e. negligible time, so the model charges no
simulated time for recording.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.hpm.events import EventType, TraceEvent
from repro.sim import Simulator

__all__ = ["CedarHpm"]


class CedarHpm:
    """Non-intrusive event-trace monitor with 50 ns resolution.

    Parameters
    ----------
    sim:
        Simulator whose clock timestamps the events.
    resolution_ns:
        Timestamp quantisation (50 ns for the real monitor).
    buffer_capacity:
        Maximum number of events kept (the hardware buffers are finite;
        ``None`` means unbounded).
    """

    def __init__(
        self,
        sim: Simulator,
        resolution_ns: int = 50,
        buffer_capacity: int | None = None,
    ) -> None:
        if resolution_ns <= 0:
            raise ValueError(f"resolution_ns must be positive, got {resolution_ns}")
        self.sim = sim
        self.resolution_ns = resolution_ns
        self.buffer_capacity = buffer_capacity
        self._events: list[TraceEvent] = []
        self.dropped = 0
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def record(
        self,
        event_type: EventType,
        processor_id: int,
        task_id: int = -1,
        payload: object = None,
    ) -> TraceEvent | None:
        """Record one event at the current simulated time.

        Returns the recorded event, or ``None`` if the buffer was full
        (the event is counted in :attr:`dropped`).
        """
        if self.buffer_capacity is not None and len(self._events) >= self.buffer_capacity:
            self.dropped += 1
            return None
        quantised = (self.sim.now // self.resolution_ns) * self.resolution_ns
        event = TraceEvent(event_type, quantised, processor_id, task_id, payload)
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke *callback* for every subsequently recorded event."""
        self._subscribers.append(callback)

    # -- off-loading (trace access) --------------------------------------

    def offload(self) -> list[TraceEvent]:
        """All recorded events in record order (the off-loaded buffer)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events_of(self, *event_types: EventType) -> Iterator[TraceEvent]:
        """Iterate over events of the given types, in record order."""
        wanted = set(event_types)
        return (e for e in self._events if e.event_type in wanted)

    def events_on(self, processor_id: int) -> Iterator[TraceEvent]:
        """Iterate over the events recorded on one processor."""
        return (e for e in self._events if e.processor_id == processor_id)

    def events_for_task(self, task_id: int) -> Iterator[TraceEvent]:
        """Iterate over the events recorded for one task."""
        return (e for e in self._events if e.task_id == task_id)

    def clear(self) -> None:
        """Discard the trace buffer contents."""
        self._events.clear()
        self.dropped = 0
