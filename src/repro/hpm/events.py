"""Event vocabulary of the instrumented runtime library and OS.

Mirrors the instrumentation described in Section 4 of the paper: the
Cedar Fortran runtime library and the Xylem OS were instrumented to
post events to hardware performance trigger points, recorded by the
external ``cedarhpm`` monitor.
"""

from __future__ import annotations

import enum

__all__ = ["EventType", "TraceEvent", "RTL_EVENTS", "OS_EVENTS"]


class EventType(enum.IntEnum):
    """Identifiers of the instrumented events."""

    # -- runtime library events (Section 4, items a-f of the RTL list) --
    #: Main task encounters an s(x)doall loop and posts it.
    LOOP_POST = 1
    #: A helper task joins the execution of a posted loop.
    HELPER_JOIN = 2
    #: Entry to the pick-next-iteration routine.
    PICKUP_ENTER = 3
    #: Exit from the pick-next-iteration routine.
    PICKUP_EXIT = 4
    #: Start of one s(x)doall iteration's execution.
    ITER_START = 5
    #: End of one s(x)doall iteration's execution.
    ITER_END = 6
    #: Main task enters the s(x)doall finish barrier.
    BARRIER_ENTER = 7
    #: Main task leaves the s(x)doall finish barrier.
    BARRIER_EXIT = 8
    #: Helper task starts busy-waiting for parallel-loop work.
    WAIT_WORK_ENTER = 9
    #: Helper task stops busy-waiting (work arrived or program ended).
    WAIT_WORK_EXIT = 10
    #: Entry to loop-parameter setup.
    SETUP_ENTER = 11
    #: Exit from loop-parameter setup.
    SETUP_EXIT = 12
    #: Start of a main-cluster-only loop (application instrumentation).
    MC_LOOP_START = 13
    #: End of a main-cluster-only loop.
    MC_LOOP_END = 14
    #: End of the posted loop for this task (detach).
    LOOP_DETACH = 15
    #: Start of a serial code section on the main task.
    SERIAL_START = 16
    #: End of a serial code section on the main task.
    SERIAL_END = 17
    #: Program begin / end markers (main task).
    PROGRAM_START = 18
    PROGRAM_END = 19

    # -- operating system events (Section 4, items a-f of the OS list) --
    #: Kernel lock acquire attempt begins (may spin).
    LOCK_ACQUIRE_ENTER = 32
    #: Kernel lock acquired.
    LOCK_ACQUIRE_EXIT = 33
    #: Kernel lock released.
    LOCK_RELEASE = 34
    #: Context switch routine entry/exit.
    CTX_SWITCH_ENTER = 35
    CTX_SWITCH_EXIT = 36
    #: Resource scheduling routine entry/exit.
    SCHED_ENTER = 37
    SCHED_EXIT = 38
    #: System call entry/exit.
    SYSCALL_ENTER = 39
    SYSCALL_EXIT = 40
    #: System trap (page fault) entry/exit.
    TRAP_ENTER = 41
    TRAP_EXIT = 42
    #: Interrupt service entry/exit (incl. cross-processor interrupts).
    INTERRUPT_ENTER = 43
    INTERRUPT_EXIT = 44
    #: Asynchronous system trap service entry/exit.
    AST_ENTER = 45
    AST_EXIT = 46
    #: Context-switch identifier: application task scheduled in/out.
    APP_RUNNING = 47
    APP_PREEMPTED = 48


#: Events posted by the runtime-library instrumentation.
RTL_EVENTS = frozenset(e for e in EventType if e < EventType.LOCK_ACQUIRE_ENTER)

#: Events posted by the operating-system instrumentation.
OS_EVENTS = frozenset(e for e in EventType if e >= EventType.LOCK_ACQUIRE_ENTER)


class TraceEvent:
    """One recorded event: id, timestamp and processor id (Section 4).

    ``cedarhpm`` records the event id, a 50 ns-resolution timestamp and
    the id of the processor the event occurred on; ``payload`` carries
    optional context (loop id, lock id, ...) the analysis may use.
    """

    __slots__ = ("event_type", "timestamp_ns", "processor_id", "task_id", "payload")

    def __init__(
        self,
        event_type: EventType,
        timestamp_ns: int,
        processor_id: int,
        task_id: int = -1,
        payload: object = None,
    ) -> None:
        self.event_type = event_type
        self.timestamp_ns = timestamp_ns
        self.processor_id = processor_id
        self.task_id = task_id
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.event_type.name}, t={self.timestamp_ns}, "
            f"ce={self.processor_id}, task={self.task_id})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.timestamp_ns == other.timestamp_ns
            and self.processor_id == other.processor_id
            and self.task_id == other.task_id
            and self.payload == other.payload
        )
