"""Trace-buffer off-loading: persistence and summaries.

On the real system the cedarhpm trace buffers were off-loaded to a Sun
workstation for analysis after each run (Section 4); this module is the
equivalent: event traces can be written to and read back from a simple
JSON-lines format, and summarised for quick inspection.

A trace file may begin with a self-describing header line of the form
``{"meta": {...}}`` carrying run provenance (machine configuration,
seed, application); :func:`load_trace` skips it and
:func:`load_trace_meta` retrieves it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.hpm.events import EventType, TraceEvent

__all__ = ["save_trace", "load_trace", "load_trace_meta", "trace_summary"]


def _to_record(event: TraceEvent) -> dict:
    payload = event.payload
    if isinstance(payload, tuple):
        payload = list(payload)
    return {
        "e": int(event.event_type),
        "t": event.timestamp_ns,
        "p": event.processor_id,
        "k": event.task_id,
        "d": payload,
    }


def _from_record(record: dict) -> TraceEvent:
    payload = record.get("d")
    if isinstance(payload, list):
        payload = tuple(payload)
    return TraceEvent(
        EventType(record["e"]),
        record["t"],
        record["p"],
        record.get("k", -1),
        payload,
    )


def save_trace(
    events: list[TraceEvent], path: str | Path, header: dict | None = None
) -> int:
    """Write events to *path* as JSON lines; returns the event count.

    When *header* is given it is written first, wrapped as
    ``{"meta": header}``, so the file records where its events came
    from (machine configuration, seed, application).
    """
    path = Path(path)
    with path.open("w") as f:
        if header is not None:
            f.write(json.dumps({"meta": header}, separators=(",", ":")))
            f.write("\n")
        for event in events:
            f.write(json.dumps(_to_record(event), separators=(",", ":")))
            f.write("\n")
    return len(events)


def load_trace(path: str | Path) -> list[TraceEvent]:
    """Read events back from a file written by :func:`save_trace`.

    A leading ``{"meta": ...}`` header line, if present, is skipped;
    use :func:`load_trace_meta` to read it.
    """
    events = []
    with Path(path).open() as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "meta" in record:
                continue
            events.append(_from_record(record))
    return events


def load_trace_meta(path: str | Path) -> dict | None:
    """The ``{"meta": ...}`` header of a trace file, or ``None``."""
    with Path(path).open() as f:
        for line in f:
            line = line.strip()
            if line:
                record = json.loads(line)
                return record.get("meta")
    return None


def trace_summary(events: list[TraceEvent]) -> dict:
    """Quick-look statistics of a trace buffer.

    Returns a dict with the event count, the time span, per-event-type
    counts and per-processor counts.
    """
    if not events:
        return {"events": 0, "span_ns": 0, "by_type": {}, "by_processor": {}}
    by_type = Counter(e.event_type.name for e in events)
    by_processor = Counter(e.processor_id for e in events)
    return {
        "events": len(events),
        "span_ns": events[-1].timestamp_ns - events[0].timestamp_ns,
        "by_type": dict(by_type),
        "by_processor": dict(by_processor),
    }
