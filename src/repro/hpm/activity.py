"""Shared processor-activity board sampled by the ``statfx`` monitor.

The runtime marks each CE active while it executes user computation
(serial code or loop iterations) and inactive while it spins waiting
for work or at barriers; ``statfx`` derives per-cluster concurrency
from this board.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.hardware.config import CedarConfig
from repro.sim import Simulator

__all__ = ["ActivityBoard"]


class ActivityBoard:
    """Tracks which CEs are actively computing at any instant.

    Also accumulates exact time-weighted activity per CE, which gives
    the same average concurrency a dense sampler would converge to.
    """

    def __init__(self, sim: Simulator, config: CedarConfig) -> None:
        self.sim = sim
        self.config = config
        n = config.n_processors
        self._active = [False] * n
        self._since = [0] * n
        self._busy_ns = [0] * n
        # Incrementally maintained counts: the statfx sampler reads the
        # per-cluster count every sampling tick, so recounting the list
        # there would be O(CEs) per tick on the hottest observer path.
        self._cluster_active = [0] * config.n_clusters
        self._total_active = 0
        # Pre-mutation watch hook (see watch()): called before every
        # effective flip is applied, so an observer can account for the
        # counts as they stood at the start of the current tick.
        self._watch: Callable[[], None] | None = None
        self._snap = [0] * config.n_clusters
        self._snap_t = -1

    def watch(self, fn: Callable[[], None] | None) -> None:
        """Install *fn* to run before every effective activity flip.

        This is the seam that makes sampling order-free: a sampler that
        wants "counts as of the start of tick t" can be told about the
        pre-mutation state before the first flip of the tick lands,
        regardless of how same-tick events happen to be ordered.  The
        push-mode ``statfx`` sampler accrues its whole sample sum here;
        the exact sampler uses :meth:`watch_snapshots` instead.
        """
        self._watch = fn

    def watch_snapshots(self) -> None:
        """Keep a start-of-tick snapshot of the per-cluster counts.

        After this, :meth:`start_of_tick_active` answers with the
        counts as they stood before the current tick's first flip.
        """
        self._watch = self._take_snapshot

    def _take_snapshot(self) -> None:
        now = self.sim.now
        if now != self._snap_t:
            self._snap_t = now
            self._snap[:] = self._cluster_active

    def start_of_tick_active(self, cluster_id: int) -> int:
        """Active count in *cluster_id* as of the start of this tick.

        Requires :meth:`watch_snapshots`; falls back to the live count
        when no flip has happened yet in the current tick (the live
        value *is* the start-of-tick value then).
        """
        if self._snap_t == self.sim.now:
            return self._snap[cluster_id]
        return self._cluster_active[cluster_id]

    def set_active(self, ce_id: int) -> None:
        """Mark a CE as actively computing."""
        if not self._active[ce_id]:
            if self._watch is not None:
                self._watch()
            self._active[ce_id] = True
            self._since[ce_id] = self.sim.now
            self._cluster_active[ce_id // self.config.ces_per_cluster] += 1
            self._total_active += 1

    def set_idle(self, ce_id: int) -> None:
        """Mark a CE as idle (spinning or waiting)."""
        if self._active[ce_id]:
            if self._watch is not None:
                self._watch()
            self._busy_ns[ce_id] += self.sim.now - self._since[ce_id]
            self._active[ce_id] = False
            self._cluster_active[ce_id // self.config.ces_per_cluster] -= 1
            self._total_active -= 1

    def is_active(self, ce_id: int) -> bool:
        """Whether the CE is currently computing."""
        return self._active[ce_id]

    def active_in_cluster(self, cluster_id: int) -> int:
        """Number of currently active CEs in *cluster_id*."""
        return self._cluster_active[cluster_id]

    def active_total(self) -> int:
        """Number of currently active CEs in the machine."""
        return self._total_active

    def busy_ns(self, ce_id: int) -> int:
        """Total active time of a CE so far."""
        total = self._busy_ns[ce_id]
        if self._active[ce_id]:
            total += self.sim.now - self._since[ce_id]
        return total

    def mean_concurrency(self, cluster_id: int | None = None) -> float:
        """Exact time-weighted average active-CE count.

        Restricted to one cluster when *cluster_id* is given, otherwise
        over the whole machine (the paper sums per-cluster values).
        """
        now = self.sim.now
        if now == 0:
            return 0.0
        if cluster_id is None:
            ces = range(self.config.n_processors)
        else:
            per = self.config.ces_per_cluster
            ces = range(cluster_id * per, (cluster_id + 1) * per)
        return sum(self.busy_ns(ce) for ce in ces) / now
