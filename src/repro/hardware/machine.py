"""The assembled Cedar machine model.

:class:`CedarMachine` wires together the clusters, the global memory
system, and the contention machinery, and offers the two memory-access
facades the rest of the reproduction uses:

* :meth:`memory_burst` -- the fast path used by application-scale
  simulations: the burst duration is computed with the analytic
  contention model from the number of *currently streaming* CEs, which
  the machine tracks, so contention emerges from concurrency.
* :attr:`memory` -- the packet-level :class:`GlobalMemorySystem`,
  instantiated on demand for microbenchmarks and validation.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.hardware.cache import ClusterCacheModel
from repro.hardware.cluster import CE, Cluster
from repro.hardware.config import CedarConfig
from repro.hardware.contention import ContentionModel, LoadTracker
from repro.hardware.memory import GlobalMemorySystem
from repro.sim import Simulator

__all__ = ["CedarMachine", "MemoryLedger"]


class MemoryLedger:
    """Always-on counters of analytic-path global-memory activity.

    Filled in by :meth:`CedarMachine.memory_burst` and
    :meth:`CedarMachine.global_round_trip_ns`; read by the ``repro.obs``
    metrics collector and by :func:`repro.core.breakdown.memory_decomposition`,
    so the registry's ``memory.*`` figures and the breakdown's
    contention decomposition come from one ledger and stay consistent.
    """

    __slots__ = (
        "busy_ns",
        "ideal_ns",
        "bursts",
        "words",
        "scalar_round_trips",
        "scalar_round_trip_ns",
    )

    def __init__(self, n_clusters: int) -> None:
        #: Per-cluster wall time CEs spent streaming global memory.
        self.busy_ns = [0] * n_clusters
        #: Per-cluster time the same bursts would take uncontended.
        self.ideal_ns = [0] * n_clusters
        #: Per-cluster burst and word counts.
        self.bursts = [0] * n_clusters
        self.words = [0] * n_clusters
        #: Scalar (synchronisation) round trips priced machine-wide.
        self.scalar_round_trips = 0
        self.scalar_round_trip_ns = 0

    def stall_ns(self, cluster_id: int) -> int:
        """Contention stall on one cluster: busy minus ideal time."""
        return max(0, self.busy_ns[cluster_id] - self.ideal_ns[cluster_id])

    @property
    def total_busy_ns(self) -> int:
        """Machine-wide burst busy time."""
        return sum(self.busy_ns)

    @property
    def total_stall_ns(self) -> int:
        """Machine-wide contention stall time."""
        return sum(self.stall_ns(c) for c in range(len(self.busy_ns)))


class CedarMachine:
    """A simulated Cedar configuration.

    Parameters
    ----------
    sim:
        The simulator all machine processes run on.
    config:
        Machine configuration.
    packet_level_memory:
        If true, build the packet-level global memory system eagerly.
        It is otherwise created lazily on first use of :attr:`memory`.
    """

    def __init__(
        self,
        sim: Simulator,
        config: CedarConfig,
        packet_level_memory: bool = False,
    ) -> None:
        self.sim = sim
        self.config = config
        self.clusters = [Cluster(sim, config, i) for i in range(config.n_clusters)]
        self.contention = ContentionModel(config)
        self.load = LoadTracker(sim, n_clusters=config.n_clusters)
        self.mem_ledger = MemoryLedger(config.n_clusters)
        self._ideal_cache: dict[tuple[int, float], int] = {}
        self._burst_ns_memo: dict[tuple[int, int, float, int], int] = {}
        self._memory: GlobalMemorySystem | None = None
        if packet_level_memory:
            self._memory = GlobalMemorySystem(sim, config)
        #: Optional cluster cache/TLB stall models (Section 3.2's
        #: excluded overheads), built when the config enables them.
        self.cluster_caches: list[ClusterCacheModel] | None = None
        if config.model_cluster_cache:
            self.cluster_caches = [
                ClusterCacheModel() for _ in range(config.n_clusters)
            ]

    @property
    def memory(self) -> GlobalMemorySystem:
        """The packet-level global memory system (built lazily)."""
        if self._memory is None:
            self._memory = GlobalMemorySystem(self.sim, self.config)
        return self._memory

    @property
    def n_processors(self) -> int:
        """Total CEs in this configuration."""
        return self.config.n_processors

    def all_ces(self) -> list[CE]:
        """All CEs of the machine, in global id order."""
        return [ce for cluster in self.clusters for ce in cluster.ces]

    def ce(self, ce_id: int) -> CE:
        """Look up a CE by global id."""
        cluster = self.clusters[ce_id // self.config.ces_per_cluster]
        return cluster.ces[ce_id % self.config.ces_per_cluster]

    # -- degradation (fault injection) -------------------------------------

    def set_memory_degradation(
        self,
        bank_service_factor: float = 1.0,
        worst_bank_factor: float = 1.0,
        offline_modules: int = 0,
        link_penalty_cycles: float = 0.0,
    ) -> None:
        """Degrade the analytic memory path (see ``repro.faults``).

        Invalidates the memoised ideal-burst cache: the ideal time is
        defined against the *current* (possibly degraded) machine, so
        contention stall keeps meaning queueing delay, not the fault.
        """
        self.contention.set_degradation(
            bank_service_factor=bank_service_factor,
            worst_bank_factor=worst_bank_factor,
            offline_modules=offline_modules,
            link_penalty_cycles=link_penalty_cycles,
        )
        self._ideal_cache.clear()
        self._burst_ns_memo.clear()

    # -- analytic fast path ------------------------------------------------

    #: Segments a burst is split into so its cost tracks load changes.
    BURST_SEGMENTS = 4

    def memory_burst(self, n_words: int, rate: float, cluster_id: int = 0) -> Generator:
        """Process: one CE streams ``n_words`` global-memory requests.

        The burst is priced with the analytic contention model from the
        number of CEs streaming concurrently -- both machine-wide (bank
        pressure) and within the caller's own cluster (shared channel
        and stage-0 switch pressure); the CE registers with the load
        tracker for the duration so later bursts see it.  The stream is
        split into a few segments, each re-priced at the load current
        when it starts -- otherwise a CE whose process happens to start
        an instant before its peers would be priced at an artificially
        low load for its whole burst.  Returns the total duration in
        nanoseconds.

        Load observations are tie-stable (``repro.analyze.race``): the
        first segment waits for the end-of-tick observe slot, so every
        CE of a simultaneously-starting cohort prices against the full
        cohort -- not against however many happened to enter first in
        event-queue order; later segments start at arbitrary instants
        mid-stream and price at the tracker's settled view.
        """
        sim = self.sim
        start = sim.now
        segments = min(self.BURST_SEGMENTS, n_words)
        base = n_words // segments
        remainder = n_words - base * segments
        load = self.load
        # Segment cost memo: loop shapes recur heavily, so the same
        # (words, load) tuple prices over and over; one dict probe
        # replaces the contention fixed point *and* the ns conversion.
        # Invalidated by :meth:`set_memory_degradation` together with
        # the contention model's own memos.
        memo = self._burst_ns_memo
        load.enter(rate, cluster_id)
        try:
            first = True
            for index in range(segments):
                words = base + (1 if index < remainder else 0)
                if words == 0:
                    continue
                if first:
                    first = False
                    yield sim.tail_event()
                    requesters = load.active
                    cluster_requesters = load.active_in_cluster(cluster_id)
                else:
                    requesters = load.settled_active
                    cluster_requesters = load.settled_in_cluster(cluster_id)
                key = (words, requesters, rate, cluster_requesters)
                delay = memo.get(key)
                if delay is None:
                    cycles = self.contention.vector_time_cycles(
                        words,
                        requesters=requesters,
                        rate=rate,
                        cluster_requesters=cluster_requesters,
                    )
                    delay = self.config.cycles_to_ns(cycles)
                    memo[key] = delay
                yield delay
        finally:
            load.exit(rate, cluster_id)
        elapsed = sim.now - start
        ledger = self.mem_ledger
        ledger.busy_ns[cluster_id] += elapsed
        ledger.ideal_ns[cluster_id] += self._cached_ideal_ns(n_words, rate)
        ledger.bursts[cluster_id] += 1
        ledger.words[cluster_id] += n_words
        return elapsed

    def _cached_ideal_ns(self, n_words: int, rate: float) -> int:
        """Memoised :meth:`ideal_burst_ns` (loop shapes recur heavily)."""
        key = (n_words, rate)
        ideal = self._ideal_cache.get(key)
        if ideal is None:
            ideal = self.ideal_burst_ns(n_words, rate)
            self._ideal_cache[key] = ideal
        return ideal

    def cache_stall_ns(self, cluster_id: int, bytes_accessed: int, ws_bytes: int) -> int:
        """Cluster cache + TLB stall time for a chunk, if modelled.

        Returns 0 when cache modelling is disabled (the paper's own
        accounting) or the loop declares no cluster working set.
        """
        if self.cluster_caches is None or ws_bytes <= 0 or bytes_accessed <= 0:
            return 0
        cycles = self.cluster_caches[cluster_id].chunk_stall_cycles(
            bytes_accessed, ws_bytes
        )
        return self.config.cycles_to_ns(cycles)

    def global_round_trip_ns(self) -> int:
        """One scalar global-memory round trip under current load.

        Used for synchronisation traffic (lock test&set probes,
        barrier-flag checks): the probe queues behind whatever vector
        streams are in flight right now.  Priced at the load tracker's
        settled view -- the streams in flight as of the start of this
        timestep -- so the synchronous read is independent of
        same-instant burst enter/exit order (``repro.analyze.race``).
        """
        cycles = self.contention.scalar_round_trip_cycles(
            self.load.settled_active, self.load.settled_mean_rate
        )
        ns = self.config.cycles_to_ns(cycles)
        self.mem_ledger.scalar_round_trips += 1
        self.mem_ledger.scalar_round_trip_ns += ns
        return ns

    def ideal_burst_ns(self, n_words: int, rate: float) -> int:
        """Burst duration with a single requester (no contention).

        Uses the same segmentation as :meth:`memory_burst` so the two
        are directly comparable.
        """
        segments = min(self.BURST_SEGMENTS, n_words)
        base = n_words // segments
        remainder = n_words - base * segments
        total = 0
        for index in range(segments):
            words = base + (1 if index < remainder else 0)
            if words == 0:
                continue
            cycles = self.contention.vector_time_cycles(
                words, requesters=1, rate=rate, cluster_requesters=1
            )
            total += self.config.cycles_to_ns(cycles)
        return total
