"""Packet-level model of the Cedar global memory system.

Combines the forward (CE -> memory) network, the 32 interleaved memory
modules (each busy 4 CE cycles per request, Section 7 of the paper),
and the return (memory -> CE) network into a single
:class:`GlobalMemorySystem` that CE processes issue requests to.

Used by network/memory microbenchmarks and to validate the analytic
contention model; application-scale runs use the analytic model.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.hardware.config import CedarConfig
from repro.hardware.fastpath import VectorTransactionEngine
from repro.hardware.network import DeltaNetwork, Packet
from repro.sim import Event, Resource, Simulator

__all__ = ["GlobalMemorySystem", "MemoryStats"]


@dataclass
class MemoryStats:
    """Aggregate statistics for the global memory system."""

    requests: int = 0
    completions: int = 0
    total_round_trip_ns: int = 0

    @property
    def mean_round_trip_ns(self) -> float:
        """Mean request round-trip latency in nanoseconds."""
        if self.completions == 0:
            return 0.0
        return self.total_round_trip_ns / self.completions


class GlobalMemorySystem:
    """The shared global memory reached through the two networks.

    Parameters
    ----------
    sim:
        Owning simulator.
    config:
        Machine configuration (module count, service time, network
        geometry).
    """

    def __init__(self, sim: Simulator, config: CedarConfig) -> None:
        self.sim = sim
        self.config = config
        n_ces = config.n_processors
        self.forward = DeltaNetwork(
            sim,
            n_inputs=n_ces,
            n_outputs=config.n_memory_modules,
            radix=config.switch_radix,
            link_cycles=config.link_cycles,
            queue_depth=config.switch_queue_depth,
            cycle_ns=config.cycle_ns,
        )
        self.backward = DeltaNetwork(
            sim,
            n_inputs=config.n_memory_modules,
            n_outputs=n_ces,
            radix=config.switch_radix,
            link_cycles=config.link_cycles,
            queue_depth=config.switch_queue_depth,
            cycle_ns=config.cycle_ns,
        )
        self._modules = [Resource(sim, capacity=1) for _ in range(config.n_memory_modules)]
        self.stats = MemoryStats()
        n_modules = config.n_memory_modules
        #: Per-bank service (busy) time in nanoseconds.
        self.bank_busy_ns = [0] * n_modules
        #: Per-bank request counts.
        self.bank_requests = [0] * n_modules
        #: Per-bank high-water mark of queued + in-service requests.
        self.bank_queue_high_water = [0] * n_modules
        #: Per-bank service-time multiplier (fault injection: slow bank).
        self.bank_service_multiplier = [1.0] * n_modules
        self._offline = [False] * n_modules
        #: Requests that hit a slowed or remapped (offline) bank.
        self.degraded_requests = 0
        #: Batched-transaction planner (see :mod:`repro.hardware.fastpath`).
        self.fastpath = VectorTransactionEngine(self)

    def module_for_address(self, address: int) -> int:
        """Memory module serving *address* (double-word interleaved)."""
        return self.config.module_for_address(address)

    # -- degradation (fault injection) -----------------------------------

    def set_bank_service_multiplier(self, module_id: int, factor: float) -> None:
        """Stretch (or restore, with 1.0) one bank's service time."""
        if factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.bank_service_multiplier[module_id] = factor

    def set_bank_offline(self, module_id: int, offline: bool = True) -> None:
        """Take one bank offline (its addresses remap onto survivors)."""
        if offline and sum(self._offline) + 1 >= self.config.n_memory_modules:
            raise ValueError("cannot take the last online memory bank offline")
        self._offline[module_id] = offline

    def bank_offline(self, module_id: int) -> bool:
        """Whether *module_id* is currently offline."""
        return self._offline[module_id]

    def _effective_module(self, module_id: int) -> int:
        """Remap an offline bank's traffic onto the online banks.

        The remap is deterministic in the bank id, modelling the OS
        re-interleaving the dead module's pages over the survivors.
        """
        if not self._offline[module_id]:
            return module_id
        online = [m for m in range(self.config.n_memory_modules) if not self._offline[m]]
        return online[module_id % len(online)]

    def request(self, ce_id: int, address: int) -> Event:
        """Issue one memory request; returns its completion event.

        The completion event's value is the delivered response
        :class:`Packet`.  The request passes through the Global
        Interface, the forward network, the addressed module (busy
        ``memory_service_cycles``), and the return network.

        On the batched fast path the completion is a valued
        :class:`~repro.sim.Timeout` firing at the arithmetically
        planned round trip -- no per-request process is spawned.  Any
        fault or saturation routes through the exact per-packet path.
        """
        self.stats.requests += 1
        plan = self.fastpath.plan(ce_id, address, 1, 8)
        if plan is not None:
            for _when, commit in plan.milestones:
                commit()
            module_id, inject_ns, deliver_ns = plan.response
            response = Packet(
                source=module_id,
                dest=ce_id,
                payload=address,
                inject_ns=inject_ns,
                deliver_ns=deliver_ns,
            )
            return self.sim.timeout(plan.elapsed_ns, value=response)
        done = self.sim.event()
        self.sim.process(self._request_process(ce_id, address, done), name="gm-request")
        return done

    def _request_process(self, ce_id: int, address: int, done: Event) -> Generator:
        sim = self.sim
        config = self.config
        start = sim.now
        gi_ns = config.gi_cycles * config.cycle_ns
        # Global interface on the way out.
        yield sim.timeout(gi_ns)
        module_id = self.module_for_address(address)
        if self._offline[module_id]:
            module_id = self._effective_module(module_id)
            self.degraded_requests += 1
        request = Packet(source=ce_id, dest=module_id, payload=address)
        yield sim.process(self.forward.traverse(request), name="gm-fwd")
        # Module service: one request at a time, 4 cycles each.
        module = self._modules[module_id]
        occupancy = module.count + module.queue_length + 1
        if occupancy > self.bank_queue_high_water[module_id]:
            self.bank_queue_high_water[module_id] = occupancy
        req = module.request()
        yield req
        service_ns = config.memory_service_cycles * config.cycle_ns
        factor = self.bank_service_multiplier[module_id]
        if factor != 1.0:
            service_ns = int(round(service_ns * factor))
            self.degraded_requests += 1
        yield sim.timeout(service_ns)
        module.release(req)
        self.bank_busy_ns[module_id] += service_ns
        self.bank_requests[module_id] += 1
        # Response travels back through the second network.
        response = Packet(source=module_id, dest=ce_id, payload=address)
        yield sim.process(self.backward.traverse(response), name="gm-bwd")
        # Global interface on the way in.
        yield sim.timeout(gi_ns)
        self.stats.completions += 1
        self.stats.total_round_trip_ns += sim.now - start
        # Single trigger: `done` is created per request by this access
        # process and completed exactly once, here.
        done.succeed(response)  # cdr: noqa[CDR004]

    def vector_access(
        self, ce_id: int, base_address: int, n_words: int, stride_bytes: int = 8
    ) -> Generator:
        """Process: stream *n_words* pipelined requests, wait for all.

        Models a CE vector access: one request is issued per CE cycle
        (the CEs are pipelined vector processors); the process completes
        when every response has returned.  Returns the elapsed time in
        nanoseconds.
        """
        if n_words <= 0:
            raise ValueError(f"n_words must be positive, got {n_words}")
        sim = self.sim
        start = sim.now
        plan = self.fastpath.plan(ce_id, base_address, n_words, stride_bytes)
        if plan is not None:
            # Batched transaction: one event per hop stage instead of
            # ~10 per element.  Stats are committed at the milestone
            # matching the phase they describe.
            self.stats.requests += n_words
            for when, commit in plan.milestones:
                delay = when - sim.now
                if delay > 0:
                    yield delay
                commit()
            return sim.now - start
        # Exact per-packet path (faults or saturation): one process per
        # word, queueing through the real network/bank resources.  The
        # scalar fast path is deliberately bypassed so a degraded or
        # saturated stream contends packet by packet.
        issue_ns = max(1, int(round(self.config.cycle_ns / self.config.vector_issue_rate)))
        completions = []
        for i in range(n_words):
            done = sim.event()
            self.stats.requests += 1
            sim.process(
                self._request_process(ce_id, base_address + i * stride_bytes, done),
                name="gm-request",
            )
            completions.append(done)
            if i != n_words - 1:
                yield sim.timeout(issue_ns)
        yield sim.all_of(completions)
        return sim.now - start

    @property
    def min_round_trip_ns(self) -> int:
        """Uncontended request round trip in nanoseconds."""
        return self.config.cycles_to_ns(self.config.min_memory_round_trip_cycles)
