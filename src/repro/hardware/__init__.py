"""Hardware model of the Cedar shared-memory multiprocessor.

Implements the machine described in Section 2 of the paper: clusters of
pipelined vector CEs with a concurrency control bus, a 32-module
interleaved global memory, and two-stage shuffle-exchange forward and
return networks, plus an analytic contention model used by
application-scale simulations.
"""

from repro.hardware.cache import (
    CacheConfig,
    ClusterCacheModel,
    SetAssociativeCache,
    StreamingMissModel,
)
from repro.hardware.cluster import CE, Cluster, ConcurrencyControlBus
from repro.hardware.config import PAPER_PROCESSOR_COUNTS, CedarConfig, paper_configuration
from repro.hardware.contention import ContentionEstimate, ContentionModel, LoadTracker
from repro.hardware.machine import CedarMachine
from repro.hardware.memory import GlobalMemorySystem, MemoryStats
from repro.hardware.network import DeltaNetwork, NetworkStats, Packet

__all__ = [
    "CacheConfig",
    "CE",
    "CedarConfig",
    "ClusterCacheModel",
    "CedarMachine",
    "Cluster",
    "ConcurrencyControlBus",
    "ContentionEstimate",
    "ContentionModel",
    "DeltaNetwork",
    "GlobalMemorySystem",
    "LoadTracker",
    "MemoryStats",
    "NetworkStats",
    "PAPER_PROCESSOR_COUNTS",
    "Packet",
    "SetAssociativeCache",
    "StreamingMissModel",
    "paper_configuration",
]
