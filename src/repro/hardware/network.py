"""Packet-level model of Cedar's multistage shuffle-exchange network.

Cedar connects 32 CEs to 32 global-memory modules through *two*
unidirectional two-stage networks built from 8x8 crossbar switches --
one for the CE -> memory direction and one for memory -> CE
(Section 2 of the paper).  This module implements a generic buffered
*delta* network with digit-based routing: destination digit ``k``
selects the output port at stage ``k``, so every input/output pair has
a unique path, and packets heading for the same output port queue in a
bounded buffer (store-and-forward with backpressure, which is what
produces tree saturation under hot-spot traffic, cf. Pfister & Norton).

The packet-level model is used for network microbenchmarks and to
validate the analytic contention model in
:mod:`repro.hardware.contention`; application-scale simulations use the
analytic model for speed.
"""

from __future__ import annotations

import math
from collections.abc import Generator
from dataclasses import dataclass, field

from repro.sim import Gate, Resource, Simulator, Store

__all__ = ["Packet", "DeltaNetwork", "NetworkStats"]


@dataclass
class Packet:
    """A request or response travelling through one network.

    Attributes
    ----------
    source, dest:
        Input and output endpoint indices of the network being
        traversed.
    inject_ns, deliver_ns:
        Simulated times of injection and delivery (filled in by the
        network).
    payload:
        Arbitrary caller data carried along (e.g. the memory address).
    """

    source: int
    dest: int
    payload: object = None
    inject_ns: int = -1
    deliver_ns: int = -1

    @property
    def latency_ns(self) -> int:
        """Delivery latency in nanoseconds (valid once delivered)."""
        if self.deliver_ns < 0:
            raise ValueError("packet has not been delivered")
        return self.deliver_ns - self.inject_ns


@dataclass
class NetworkStats:
    """Aggregate traffic statistics for one :class:`DeltaNetwork`."""

    packets_injected: int = 0
    packets_delivered: int = 0
    total_latency_ns: int = 0
    #: Per-(stage, port-key) count of packets forwarded.
    port_traffic: dict = field(default_factory=dict)
    #: Per-(stage, switch, port) high-water mark of buffered packets.
    queue_high_water: dict = field(default_factory=dict)

    @property
    def mean_latency_ns(self) -> float:
        """Mean packet delivery latency in nanoseconds."""
        if self.packets_delivered == 0:
            return 0.0
        return self.total_latency_ns / self.packets_delivered


class _OutputPort:
    """One crossbar output port: a bounded buffer plus a serial link."""

    __slots__ = ("buffer", "link")

    def __init__(self, sim: Simulator, queue_depth: int) -> None:
        self.buffer = Store(sim, capacity=queue_depth)
        self.link = Resource(sim, capacity=1)


class DeltaNetwork:
    """A buffered, digit-routed multistage interconnection network.

    Parameters
    ----------
    sim:
        Owning simulator.
    n_inputs, n_outputs:
        Endpoint counts.
    radix:
        Crossbar switch size (8 for Cedar).
    link_cycles:
        CE cycles to forward one packet through one switch hop.
    queue_depth:
        Output-port buffer depth in packets.
    cycle_ns:
        CE cycle time in nanoseconds.

    Notes
    -----
    With 32 endpoints and radix 8 the network has two stages: four
    fully-used 8x8 switches feeding eight partially-populated switches,
    matching Cedar's two-stage organisation.  The per-stage fanouts are
    computed so that the product covers ``n_outputs``; routing digit
    ``k`` of the destination selects the port at stage ``k``.
    """

    def __init__(
        self,
        sim: Simulator,
        n_inputs: int,
        n_outputs: int,
        radix: int = 8,
        link_cycles: int = 2,
        queue_depth: int = 4,
        cycle_ns: int = 170,
    ) -> None:
        if n_inputs <= 0 or n_outputs <= 0:
            raise ValueError("endpoint counts must be positive")
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        self.sim = sim
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.radix = radix
        self.link_cycles = link_cycles
        self.queue_depth = queue_depth
        self.cycle_ns = cycle_ns
        self.stats = NetworkStats()
        self._fanouts = self._compute_fanouts(n_outputs, radix)
        # suffix_products[k] = product of fanouts after stage k.
        self._suffix = [1] * (len(self._fanouts) + 1)
        for k in range(len(self._fanouts) - 1, -1, -1):
            self._suffix[k] = self._suffix[k + 1] * self._fanouts[k]
        self._ports: dict[tuple[int, int, int], _OutputPort] = {}
        # Degradation state (repro.faults): extra per-hop latency,
        # per-hop penalties, and stalled output ports.
        #: Extra nanoseconds added to every hop (switch degradation).
        self.extra_hop_ns = 0
        #: Extra nanoseconds added to specific (stage, switch, port) hops.
        self.hop_penalty_ns: dict[tuple[int, int, int], int] = {}
        self._stall_gates: dict[tuple[int, int, int], Gate] = {}
        #: Packets that had to wait at a stalled output port.
        self.stalled_packets = 0

    # -- degradation (fault injection) ----------------------------------

    def degrade_hop(self, stage: int, switch: int, port: int, extra_ns: int) -> None:
        """Add *extra_ns* to one hop's forwarding time (0 restores it)."""
        if extra_ns < 0:
            raise ValueError(f"extra_ns must be >= 0, got {extra_ns}")
        hop = (stage, switch, port)
        if extra_ns == 0:
            self.hop_penalty_ns.pop(hop, None)
        else:
            self.hop_penalty_ns[hop] = extra_ns

    def stall_port(self, stage: int, switch: int, port: int) -> None:
        """Stall one output port: packets queue at it until released."""
        hop = (stage, switch, port)
        gate = self._stall_gates.get(hop)
        if gate is None:
            gate = Gate(self.sim, open_=True)
            self._stall_gates[hop] = gate
        gate.close()

    def release_port(self, stage: int, switch: int, port: int) -> None:
        """Release a previously stalled output port."""
        gate = self._stall_gates.get((stage, switch, port))
        if gate is not None:
            gate.open()

    # -- topology -------------------------------------------------------

    @staticmethod
    def _compute_fanouts(n_outputs: int, radix: int) -> list[int]:
        """Per-stage output fanouts whose product covers ``n_outputs``."""
        stages = max(1, math.ceil(math.log(n_outputs, radix))) if n_outputs > 1 else 1
        fanouts = [radix] * (stages - 1)
        last = math.ceil(n_outputs / radix ** (stages - 1))
        fanouts.append(last)
        return fanouts

    @property
    def n_stages(self) -> int:
        """Number of switch stages."""
        return len(self._fanouts)

    def route(self, source: int, dest: int) -> list[tuple[int, int, int]]:
        """Unique path of (stage, switch, port) hops from *source* to *dest*."""
        if not 0 <= source < self.n_inputs:
            raise ValueError(f"source {source} out of range")
        if not 0 <= dest < self.n_outputs:
            raise ValueError(f"dest {dest} out of range")
        hops = []
        for stage in range(self.n_stages):
            if stage == 0:
                switch = source // self.radix
            else:
                # Stage-k switch identity is the port-prefix taken so far.
                switch = dest // self._suffix[stage]
            port = (dest // self._suffix[stage + 1]) % self._fanouts[stage]
            hops.append((stage, switch, port))
        return hops

    def _port(self, hop: tuple[int, int, int]) -> _OutputPort:
        port = self._ports.get(hop)
        if port is None:
            port = _OutputPort(self.sim, self.queue_depth)
            self._ports[hop] = port
        return port

    # -- traversal -------------------------------------------------------

    def traverse(self, packet: Packet) -> Generator:
        """Simulation process moving *packet* from input to output.

        Yields until the packet has been delivered; the caller decides
        what delivery means (e.g. handing the request to a memory
        module).  Store-and-forward: the packet holds its current
        buffer slot until it has obtained a slot in the next stage, so
        a full downstream buffer backpressures upstream ports.
        """
        sim = self.sim
        packet.inject_ns = sim.now
        self.stats.packets_injected += 1
        link_ns = self.link_cycles * self.cycle_ns
        previous_buffer: Store | None = None
        for hop in self.route(packet.source, packet.dest):
            port = self._port(hop)
            stall = self._stall_gates.get(hop)
            if stall is not None and not stall.is_open:
                # The output port is stalled (fault injection): hold the
                # packet here, backpressuring upstream, until released.
                self.stalled_packets += 1
                yield stall.wait()
            # Wait for buffer space at this hop (backpressure point).
            yield port.buffer.put(packet)
            depth = len(port.buffer)
            water = self.stats.queue_high_water
            if depth > water.get(hop, 0):
                water[hop] = depth
            if previous_buffer is not None:
                # The slot at the previous hop is now free.
                previous_buffer.get()
            # Serialise transmission through the port's link.
            req = port.link.request()
            yield req
            hop_ns = link_ns + self.extra_hop_ns + self.hop_penalty_ns.get(hop, 0)
            yield sim.timeout(hop_ns)
            port.link.release(req)
            traffic = self.stats.port_traffic
            traffic[hop] = traffic.get(hop, 0) + 1
            previous_buffer = port.buffer
        if previous_buffer is not None:
            previous_buffer.get()
        packet.deliver_ns = sim.now
        self.stats.packets_delivered += 1
        self.stats.total_latency_ns += packet.latency_ns
        return packet

    def min_latency_ns(self) -> int:
        """Uncontended traversal latency in nanoseconds."""
        return self.n_stages * self.link_cycles * self.cycle_ns
