"""Batched vector transactions for the packet-level memory system.

The per-packet path in :mod:`repro.hardware.memory` spawns one process
per word of a vector access: every element allocates events, takes
heap pushes and generator resumes through the Global Interface, two
switch stages, a bank, and two return stages.  The paper's Cedar
pipelines 32-word vector fetches through the shuffle-exchange network
precisely so that per-element bookkeeping has no physical analogue
(Section 3), so the software overhead is pure simulation tax.

:class:`VectorTransactionEngine` removes that tax for the common case.
A whole vector access is *planned* arithmetically: the pipelined
occupancy of every touched switch output port and memory bank is
computed hop by hop with plain integer arithmetic (FIFO single-server
bookings, exactly the store-and-forward semantics of
:meth:`DeltaNetwork.traverse`), and the transaction then advances
simulated time with **one event per hop stage per transaction** instead
of roughly ten events per element.  Bookings persist on the engine, so
overlapping batched transactions queue behind each other at shared
ports and banks and contention still emerges from concurrency.

The engine refuses to plan -- and the caller falls back to the exact
per-packet path -- whenever the arithmetic could diverge from the
packet-level machine:

* **Faults**: any degraded bank (service multiplier, offline), any
  switch hop penalty, stalled port, or global extra-hop latency, or a
  sticky :meth:`disable` from an armed fault campaign.  Fault
  campaigns therefore route through the unchanged per-packet code and
  behave bit-identically to the pre-fast-path tree.
* **Saturation**: a booking that would wait longer than
  ``SATURATION_CYCLES`` at one centre, or a switch output buffer that
  would overflow ``queue_depth`` (where the real network would
  backpressure and the closed-form timing stops being exact).

With no faults and no saturation the plan reproduces the per-packet
path's completion time and per-bank busy time exactly; this is pinned
down by the Hypothesis property test in
``tests/hardware/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.memory import GlobalMemorySystem

__all__ = ["FastPathStats", "TransactionPlan", "VectorTransactionEngine"]


@dataclass
class FastPathStats:
    """Batched/exact split of the memory traffic (observable as
    ``kernel.fastpath.*`` metrics)."""

    batched_transactions: int = 0
    exact_transactions: int = 0
    batched_words: int = 0
    exact_words: int = 0
    #: Transactions refused because a fault degraded a touched resource
    #: (or the engine was sticky-disabled by an armed campaign).
    fallback_fault: int = 0
    #: Transactions refused because a centre was saturated or a switch
    #: buffer would have overflowed.
    fallback_saturation: int = 0

    @property
    def batched_fraction(self) -> float:
        """Fraction of words served by the batched path."""
        total = self.batched_words + self.exact_words
        if total == 0:
            return 0.0
        return self.batched_words / total


class TransactionPlan:
    """An accepted batched transaction: milestones plus stat commits.

    ``milestones`` is a monotone list of ``(when_ns, commit)`` pairs --
    one per hop stage plus the bank phase and the final completion.
    The caller sleeps to each ``when_ns`` and runs ``commit`` to apply
    that stage's statistics, so observers see counters advance at the
    same phase of the transaction as on the per-packet path.
    """

    __slots__ = ("milestones", "elapsed_ns", "response")

    def __init__(
        self,
        milestones: list[tuple[int, Callable[[], None]]],
        elapsed_ns: int,
        response: object = None,
    ) -> None:
        self.milestones = milestones
        self.elapsed_ns = elapsed_ns
        self.response = response


def _trim(window: list[int], now: int) -> None:
    """Drop buffer-slot bookings already released by *now* (sorted list)."""
    drop = bisect_right(window, now)
    if drop:
        del window[:drop]


class VectorTransactionEngine:
    """Plans batched vector transactions against persistent bookings."""

    #: A booking that would wait longer than this (in CE cycles) at a
    #: single centre is considered saturated: the transaction is routed
    #: through the exact per-packet path so that heavy contention keeps
    #: emerging from real queueing rather than closed-form bookings.
    SATURATION_CYCLES = 128

    def __init__(self, memory: "GlobalMemorySystem") -> None:
        self.memory = memory
        self.sim = memory.sim
        self.config = memory.config
        self.stats = FastPathStats()
        #: Sticky machine-level switch; cleared only by :meth:`enable`.
        #: Starts from the unified ``CEDAR_REPRO_FASTPATH`` kill switch
        #: (see :mod:`repro.sim.policy`), so ``=off`` routes memory
        #: traffic through the exact per-packet path too.
        from repro.sim.policy import fastpath_policy

        self.enabled = fastpath_policy()
        n_modules = self.config.n_memory_modules
        # Persistent bookings: absolute ns each link/bank frees up.
        self._link_free: dict[tuple, int] = {}
        self._bank_free = [0] * n_modules
        # Buffer-slot windows (sorted release times) per output port,
        # for the queue-overflow check; and in-service windows per bank
        # for the queue high-water stat.
        self._port_windows: dict[tuple, list[int]] = {}
        self._bank_windows: list[list[int]] = [[] for _ in range(n_modules)]
        # Route cache: (net-id, source, dest) -> hop list.  Routing is
        # pure topology, so the cache never invalidates.
        self._routes: dict[tuple, list] = {}

    # -- fault gating ----------------------------------------------------

    def disable(self) -> None:
        """Sticky disable (armed fault campaign): everything goes exact."""
        self.enabled = False

    def enable(self) -> None:
        """Re-enable batching (tests / after a campaign is torn down)."""
        self.enabled = True

    @property
    def mode(self) -> str:
        """``"batched"`` when the engine may plan, else ``"exact"``."""
        return "batched" if self.enabled else "exact"

    def _machine_degraded(self) -> bool:
        """Any fault touching the memory system forces the exact path."""
        memory = self.memory
        if any(f != 1.0 for f in memory.bank_service_multiplier):
            return True
        if any(memory._offline):
            return True
        for net in (memory.forward, memory.backward):
            if net.extra_hop_ns or net.hop_penalty_ns:
                return True
            for gate in net._stall_gates.values():
                if not gate.is_open:
                    return True
        return False

    def _route(self, direction: int, net, source: int, dest: int) -> list:
        key = (direction, source, dest)
        route = self._routes.get(key)
        if route is None:
            route = net.route(source, dest)
            self._routes[key] = route
        return route

    # -- planning --------------------------------------------------------

    def plan(
        self, ce_id: int, base_address: int, n_words: int, stride_bytes: int
    ) -> TransactionPlan | None:
        """Plan one batched transaction, or ``None`` to fall back.

        On success the persistent port/bank bookings have been advanced
        (later transactions queue behind this one) and the returned
        plan carries the milestone schedule and stat commits.  On
        ``None`` nothing was committed and the caller must run the
        exact per-packet path.
        """
        stats = self.stats
        if not self.enabled or self._machine_degraded():
            stats.exact_transactions += 1
            stats.exact_words += n_words
            stats.fallback_fault += 1
            return None
        plan = self._try_plan(ce_id, base_address, n_words, stride_bytes)
        if plan is None:
            stats.exact_transactions += 1
            stats.exact_words += n_words
            stats.fallback_saturation += 1
            return None
        stats.batched_transactions += 1
        stats.batched_words += n_words
        return plan

    def _try_plan(
        self, ce_id: int, base_address: int, n_words: int, stride_bytes: int
    ) -> TransactionPlan | None:
        sim = self.sim
        config = self.config
        memory = self.memory
        now = sim.now
        cycle_ns = config.cycle_ns
        gi_ns = config.gi_cycles * cycle_ns
        service_ns = config.memory_service_cycles * cycle_ns
        issue_ns = max(1, int(round(cycle_ns / config.vector_issue_rate)))
        saturation_ns = self.SATURATION_CYCLES * cycle_ns
        fwd = memory.forward
        bwd = memory.backward
        hop_ns = fwd.link_cycles * fwd.cycle_ns
        queue_depth = fwd.queue_depth
        # The two networks can be differently sized (CE count != module
        # count), so each direction has its own stage count.
        fwd_stages = fwd.n_stages
        bwd_stages = bwd.n_stages

        # Local overlays; persistent state is only written on accept.
        link_free = self._link_free
        free_local: dict[tuple, int] = {}
        windows_local: dict[tuple, list[int]] = {}
        hw_local: dict[tuple, int] = {}
        traffic_local: dict[tuple, int] = {}
        # Per-stage maximum link-end times (the milestone schedule).
        fwd_stage_end = [now] * fwd_stages
        bwd_stage_end = [now] * bwd_stages

        def book_hop(key: tuple, arrive: int) -> int | None:
            """FIFO link booking + buffer-overflow check at one port.

            Returns the link end time, or ``None`` when this
            transaction's *own* packets would overflow the output
            buffer (the real network would backpressure, so the
            closed-form timing stops being exact) or the wait behind
            earlier bookings saturates.  Pressure from *other*
            transactions' bookings does not refuse the plan -- it
            simply serialises through ``link_free``, which is how
            contention between concurrent batched streams emerges.
            """
            local = windows_local.get(key)
            if local is not None:
                own = len(local) - bisect_right(local, arrive)
                if own >= queue_depth:
                    return None  # self-backpressure: timing no longer exact
            else:
                own = 0
                local = windows_local[key] = []
            persistent = self._port_windows.get(key)
            occupancy = own
            if persistent:
                _trim(persistent, now)
                occupancy += len(persistent) - bisect_right(persistent, arrive)
            start = free_local.get(key)
            if start is None:
                start = link_free.get(key, 0)
                # A long wait behind *earlier transactions'* bookings
                # means heavy cross-traffic: refuse and measure it
                # packet by packet.  The transaction's own
                # serialisation through the port is exactly modelled
                # (only the bounded buffer, checked above, breaks the
                # closed form) and never refuses.
                if start - arrive > saturation_ns:
                    return None
            if start < arrive:
                start = arrive
            end = start + hop_ns
            free_local[key] = end
            local.append(end)
            # The real buffer is bounded; cap the recorded depth.
            depth = min(occupancy + 1, queue_depth)
            if depth > hw_local.get(key, 0):
                hw_local[key] = depth
            traffic_local[key] = traffic_local.get(key, 0) + 1
            return end

        # -- forward: issue order is arrival order at every shared hop --
        modules = [0] * n_words
        fwd_deliver = [0] * n_words
        fwd_latency = 0
        for i in range(n_words):
            module_id = config.module_for_address(base_address + i * stride_bytes)
            modules[i] = module_id
            inject = now + i * issue_ns + gi_ns
            t = inject
            for stage, hop in enumerate(self._route(0, fwd, ce_id, module_id)):
                end = book_hop((0, hop), t)
                if end is None:
                    return None
                if end > fwd_stage_end[stage]:
                    fwd_stage_end[stage] = end
                t = end
            fwd_deliver[i] = t
            fwd_latency += t - inject

        # -- banks: per-module arrivals are in issue order ---------------
        bank_free = self._bank_free
        bank_free_local: dict[int, int] = {}
        bank_windows_local: dict[int, list[int]] = {}
        bank_busy_local: dict[int, int] = {}
        bank_req_local: dict[int, int] = {}
        bank_hw_local: dict[int, int] = {}
        svc_end = [0] * n_words
        bank_done = now
        for i in range(n_words):
            module_id = modules[i]
            arrive = fwd_deliver[i]
            persistent = self._bank_windows[module_id]
            occupancy = 0
            if persistent:
                _trim(persistent, now)
                occupancy = len(persistent) - bisect_right(persistent, arrive)
            local = bank_windows_local.get(module_id)
            if local is not None:
                occupancy += len(local) - bisect_right(local, arrive)
            else:
                local = bank_windows_local[module_id] = []
            start = bank_free_local.get(module_id)
            if start is None:
                start = bank_free[module_id]
                # As at the ports: only waits behind other
                # transactions refuse the plan.  A bank's FIFO queue
                # is unbounded in the exact model, so queueing behind
                # this transaction's own earlier words is exact no
                # matter how deep it runs (bank-colliding strides).
                if start - arrive > saturation_ns:
                    return None
            if start < arrive:
                start = arrive
            end = start + service_ns
            bank_free_local[module_id] = end
            local.append(end)
            svc_end[i] = end
            if end > bank_done:
                bank_done = end
            depth = occupancy + 1
            if depth > bank_hw_local.get(module_id, 0):
                bank_hw_local[module_id] = depth
            bank_busy_local[module_id] = bank_busy_local.get(module_id, 0) + service_ns
            bank_req_local[module_id] = bank_req_local.get(module_id, 0) + 1

        # -- backward: stage-by-stage, FIFO in arrival order -------------
        bwd_routes = [self._route(1, bwd, modules[i], ce_id) for i in range(n_words)]
        arrival = list(svc_end)
        order = sorted(range(n_words), key=lambda i: (arrival[i], i))
        for stage in range(bwd_stages):
            stage_max = now
            for i in order:
                end = book_hop((1, bwd_routes[i][stage]), arrival[i])
                if end is None:
                    return None
                arrival[i] = end
                if end > stage_max:
                    stage_max = end
            bwd_stage_end[stage] = stage_max
            order.sort(key=lambda i: (arrival[i], i))
        bwd_latency = sum(arrival[i] - svc_end[i] for i in range(n_words))
        complete = max(arrival) + gi_ns
        round_trip = sum(
            arrival[i] + gi_ns - (now + i * issue_ns) for i in range(n_words)
        )

        # -- accept: advance the persistent bookings ---------------------
        for key, end in free_local.items():
            link_free[key] = end
        for key, ends in windows_local.items():
            window = self._port_windows.get(key)
            if window is None:
                self._port_windows[key] = ends
            else:
                window.extend(ends)
                window.sort()
        for module_id, end in bank_free_local.items():
            bank_free[module_id] = end
        for module_id, ends in bank_windows_local.items():
            window = self._bank_windows[module_id]
            window.extend(ends)
            window.sort()

        # -- milestone schedule + stat commits ---------------------------
        def commit_net(net, direction: int, stage: int):
            water = net.stats.queue_high_water
            traffic = net.stats.port_traffic

            def commit() -> None:
                for (d, hop), count in traffic_local.items():
                    if d == direction and hop[0] == stage:
                        traffic[hop] = traffic.get(hop, 0) + count
                for (d, hop), depth in hw_local.items():
                    if d == direction and hop[0] == stage:
                        if depth > water.get(hop, 0):
                            water[hop] = depth

            return commit

        def commit_fwd_done() -> None:
            fwd.stats.packets_injected += n_words
            fwd.stats.packets_delivered += n_words
            fwd.stats.total_latency_ns += fwd_latency

        def commit_banks() -> None:
            busy = memory.bank_busy_ns
            requests = memory.bank_requests
            water = memory.bank_queue_high_water
            for module_id, ns in bank_busy_local.items():
                busy[module_id] += ns
            for module_id, count in bank_req_local.items():
                requests[module_id] += count
            for module_id, depth in bank_hw_local.items():
                if depth > water[module_id]:
                    water[module_id] = depth

        def commit_bwd_done() -> None:
            bwd.stats.packets_injected += n_words
            bwd.stats.packets_delivered += n_words
            bwd.stats.total_latency_ns += bwd_latency

        def commit_complete() -> None:
            memory.stats.completions += n_words
            memory.stats.total_round_trip_ns += round_trip

        milestones: list[tuple[int, Callable[[], None]]] = []
        for stage in range(fwd_stages):
            milestones.append((fwd_stage_end[stage], commit_net(fwd, 0, stage)))
        milestones.append((fwd_stage_end[fwd_stages - 1], commit_fwd_done))
        milestones.append((bank_done, commit_banks))
        for stage in range(bwd_stages):
            milestones.append((bwd_stage_end[stage], commit_net(bwd, 1, stage)))
        milestones.append((bwd_stage_end[bwd_stages - 1], commit_bwd_done))
        milestones.append((complete, commit_complete))
        # For scalar requests the caller rebuilds the response Packet:
        # (module, network inject time, network deliver time).
        response = (modules[0], svc_end[0], arrival[0]) if n_words == 1 else None
        return TransactionPlan(milestones, complete - now, response)
