"""Analytic model of global-memory and network contention.

The paper's contention overhead arises because more than one processor
issues (mostly vector) requests to the shared global memory through the
shared two-stage network (Section 7).  The packet-level simulator in
:mod:`repro.hardware.network` reproduces this directly but is too slow
for full-application runs, so application-scale simulations use this
closed-form open-queueing-network model instead.  The model is
validated against the packet-level simulator by
``tests/hardware/test_contention_validation.py`` and the ablation bench
``benchmarks/ablations/test_ablation_contention_models.py``.

Model
-----
``k`` CEs each offer ``rate`` requests per CE cycle, addressed
uniformly over the 32 interleaved modules (vector accesses with unit
or odd stride spread across banks).  Three queueing centres lie on the
forward path -- a stage-0 switch port, a stage-1 switch port, and a
memory bank -- and two more on the return path.  Each centre is
approximated as M/D/1; if any centre is saturated the per-CE throughput
is throttled to the bottleneck capacity.  A hot-spot variant
concentrates a fraction of the traffic on a single bank, reproducing
the Pfister/Norton tree-saturation throughput collapse used in the
clustering discussion of Section 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.config import CedarConfig

__all__ = ["ContentionModel", "ContentionEstimate", "LoadTracker"]


@dataclass(frozen=True)
class ContentionEstimate:
    """Result of one analytic contention evaluation."""

    #: Number of actively-requesting CEs the estimate assumes.
    requesters: int
    #: Offered per-CE request rate (requests per CE cycle).
    offered_rate: float
    #: Achieved per-CE request rate after bottleneck throttling.
    achieved_rate: float
    #: Mean request round trip in CE cycles, including queueing.
    round_trip_cycles: float
    #: Highest utilisation over all queueing centres (1.0 == saturated).
    bottleneck_utilisation: float

    @property
    def throttled(self) -> bool:
        """Whether some centre saturated and throughput was reduced."""
        return self.achieved_rate < self.offered_rate - 1e-12


class ContentionModel:
    """Closed-form contention estimates for a :class:`CedarConfig`."""

    #: Utilisation cap used to keep M/D/1 waiting times finite.
    MAX_UTILISATION = 0.98

    def __init__(self, config: CedarConfig) -> None:
        self.config = config
        self._stage0_switches = max(1, math.ceil(config.n_processors / config.switch_radix))
        # Degraded-machine state (repro.faults): identity values model a
        # healthy machine and keep every formula below unchanged.
        self._bank_service_factor = 1.0
        self._worst_bank_factor = 1.0
        self._offline_modules = 0
        self._link_penalty_cycles = 0.0
        # Memo tables for the two hot entry points.  Both are pure
        # functions of their arguments and the degradation state, so the
        # tables are simply dropped whenever the state changes.  Loop
        # shapes recur heavily (a handful of (n_words, load) pairs per
        # phase), which makes these near-perfect caches on the
        # application fast path.
        self._vector_memo: dict[tuple, float] = {}
        self._scalar_memo: dict[tuple, float] = {}

    # -- degradation (fault injection) ------------------------------------

    def set_degradation(
        self,
        bank_service_factor: float = 1.0,
        worst_bank_factor: float = 1.0,
        offline_modules: int = 0,
        link_penalty_cycles: float = 0.0,
    ) -> None:
        """Degrade the modelled memory system (``repro.faults``).

        Parameters
        ----------
        bank_service_factor:
            Mean multiplier on bank service time over the *online*
            banks (>= 1 models one or more slowed banks).
        worst_bank_factor:
            Multiplier of the single slowest bank.  Interleaved vector
            streams sweep every bank, so the slowest bank is its own
            queueing centre: when it saturates it throttles the whole
            stream, which a mean factor alone would dilute away.
        offline_modules:
            Banks taken offline; their traffic is remapped over the
            survivors, raising per-bank arrival rates.
        link_penalty_cycles:
            Extra CE cycles added to every switch-hop service time.
        """
        if bank_service_factor <= 0.0:
            raise ValueError(
                f"bank_service_factor must be > 0, got {bank_service_factor}"
            )
        if worst_bank_factor < bank_service_factor:
            raise ValueError(
                f"worst_bank_factor ({worst_bank_factor}) cannot be below the "
                f"mean bank_service_factor ({bank_service_factor})"
            )
        if not 0 <= offline_modules < self.config.n_memory_modules:
            raise ValueError(
                f"offline_modules must leave at least one bank online, "
                f"got {offline_modules} of {self.config.n_memory_modules}"
            )
        if link_penalty_cycles < 0.0:
            raise ValueError(
                f"link_penalty_cycles must be >= 0, got {link_penalty_cycles}"
            )
        self._bank_service_factor = bank_service_factor
        self._worst_bank_factor = worst_bank_factor
        self._offline_modules = offline_modules
        self._link_penalty_cycles = link_penalty_cycles
        self._vector_memo.clear()
        self._scalar_memo.clear()

    @property
    def degraded(self) -> bool:
        """Whether any degradation is currently applied."""
        return (
            self._bank_service_factor != 1.0
            or self._worst_bank_factor != 1.0
            or self._offline_modules != 0
            or self._link_penalty_cycles != 0.0
        )

    def _online_modules(self) -> int:
        return self.config.n_memory_modules - self._offline_modules

    def _base_round_trip_cycles(self) -> float:
        """Uncontended round trip including degradation penalties.

        A slowed bank or a degraded link lengthens even a lone request:
        the forward and return networks each add the per-hop penalty at
        every stage, and the bank's service stretch adds directly.
        """
        base = float(self.config.min_memory_round_trip_cycles)
        if self._link_penalty_cycles > 0.0:
            base += 2 * self.config._network_stages() * self._link_penalty_cycles
        if self._bank_service_factor != 1.0:
            base += (self._bank_service_factor - 1.0) * self.config.memory_service_cycles
        return base

    # -- queueing helpers -------------------------------------------------

    @staticmethod
    def _md1_wait(utilisation: float, service: float) -> float:
        """M/D/1 mean waiting time for given utilisation and service time."""
        if utilisation <= 0.0:
            return 0.0
        rho = min(utilisation, ContentionModel.MAX_UTILISATION)
        return rho * service / (2.0 * (1.0 - rho))

    def _centres(
        self,
        requesters: int,
        rate: float,
        hot_fraction: float = 0.0,
        cluster_requesters: int | None = None,
    ):
        """Yield (name, arrival_rate, service_cycles, visit_prob) centres.

        Arrival rates are per-centre request rates in requests/cycle for
        *one* representative centre on the path of a tagged request;
        ``visit_prob`` is the probability the tagged request visits that
        centre (1.0 for everything on the common path, ``1/modules`` for
        the slowest degraded bank).  ``cluster_requesters`` is the
        number of streaming CEs sharing the tagged CE's own cluster
        (vector phases are synchronised within a cluster); when unknown,
        active CEs are assumed spread evenly over the clusters.
        """
        config = self.config
        k = requesters
        total = k * rate
        if cluster_requesters is not None:
            per_switch = max(1, min(cluster_requesters, config.ces_per_cluster))
        else:
            per_switch = min(k, math.ceil(k / self._stage0_switches))
        link = float(config.link_cycles) + self._link_penalty_cycles
        service = float(config.memory_service_cycles) * self._bank_service_factor
        modules = self._online_modules()
        uniform = 1.0 - hot_fraction
        # Shared cluster interface/cache channel on the way out.
        channel_service = 1.0 / config.cluster_channel_words_per_cycle
        yield ("cluster-channel", per_switch * rate, channel_service, 1.0)
        # Forward stage 0: per-switch traffic spread over radix ports.
        yield ("fwd-stage0", per_switch * rate / config.switch_radix, link, 1.0)
        # Forward stage 1: all traffic spread over the online module links.
        yield ("fwd-stage1", total / modules, link, 1.0)
        # Memory bank seen by a uniform request.
        bank_uniform = total * uniform / modules
        bank_hot = total * hot_fraction + bank_uniform
        if hot_fraction > 0.0:
            yield ("bank-hot", bank_hot, service, 1.0)
        else:
            yield ("bank", bank_uniform, service, 1.0)
        # The slowest degraded bank: interleaved streams sweep every
        # bank, so its saturation gates the whole stream even though a
        # tagged request only visits it 1/modules of the time.
        if self._worst_bank_factor > self._bank_service_factor:
            slow_service = float(config.memory_service_cycles) * self._worst_bank_factor
            yield ("bank-slowest", bank_uniform, slow_service, 1.0 / modules)
        # Return path mirrors the forward path.
        yield ("bwd-stage0", total / modules, link, 1.0)
        yield ("bwd-stage1", per_switch * rate / config.switch_radix, link, 1.0)

    # -- public API --------------------------------------------------------

    def estimate(
        self,
        requesters: int,
        rate: float,
        hot_fraction: float = 0.0,
        cluster_requesters: int | None = None,
    ) -> ContentionEstimate:
        """Estimate round trip and achieved throughput.

        Parameters
        ----------
        requesters:
            Number of CEs actively issuing requests machine-wide.
        rate:
            Offered requests per CE cycle (0 < rate <= 1).
        hot_fraction:
            Fraction of the traffic addressed to a single hot module
            (0 for uniform vector traffic).
        cluster_requesters:
            Streaming CEs sharing the tagged CE's cluster (defaults to
            an even spread of *requesters* over the clusters).
        """
        if requesters < 0:
            raise ValueError(f"requesters must be >= 0, got {requesters}")
        if rate < 0.0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        if requesters == 0 or rate == 0.0:
            return ContentionEstimate(
                requesters=requesters,
                offered_rate=rate,
                achieved_rate=rate,
                round_trip_cycles=self._base_round_trip_cycles(),
                bottleneck_utilisation=0.0,
            )
        # Throughput throttling: scale the offered rate down until no
        # centre exceeds the utilisation cap.
        scale = 1.0
        for _, arrival, service, _visit in self._centres(
            requesters, rate, hot_fraction, cluster_requesters
        ):
            utilisation = arrival * service
            if utilisation > self.MAX_UTILISATION:
                scale = min(scale, self.MAX_UTILISATION / utilisation)
        achieved = rate * scale
        worst = 0.0
        wait = 0.0
        for _, arrival, service, visit in self._centres(
            requesters, achieved, hot_fraction, cluster_requesters
        ):
            utilisation = arrival * service
            worst = max(worst, utilisation)
            wait += visit * self._md1_wait(utilisation, service)
        round_trip = self._base_round_trip_cycles() + wait
        return ContentionEstimate(
            requesters=requesters,
            offered_rate=rate,
            achieved_rate=achieved,
            round_trip_cycles=round_trip,
            bottleneck_utilisation=worst,
        )

    def stream_rate(
        self, requesters: int, rate: float, cluster_requesters: int | None = None
    ) -> float:
        """Self-consistent achieved per-CE stream rate.

        Two mechanisms limit the offered rate: open-network saturation
        (some queueing centre at capacity) and the closed-loop window
        constraint -- a CE's Global Interface keeps at most
        ``vector_window`` requests in flight, so the achieved rate
        cannot exceed ``window / round_trip``.  The fixed point is
        found by a few damped iterations.
        """
        window = float(self.config.vector_window)
        achieved = self.estimate(requesters, rate, cluster_requesters=cluster_requesters).achieved_rate
        for _ in range(20):
            est = self.estimate(requesters, achieved, cluster_requesters=cluster_requesters)
            limited = min(rate, est.achieved_rate, window / est.round_trip_cycles)
            if abs(limited - achieved) < 1e-9:
                achieved = limited
                break
            achieved = 0.5 * (achieved + limited)
        return max(achieved, 1e-9)

    def vector_time_cycles(
        self,
        n_words: int,
        requesters: int,
        rate: float,
        cluster_requesters: int | None = None,
    ) -> float:
        """Time in CE cycles for one CE to stream ``n_words`` requests.

        The CE pipelines requests at the achieved (window- and
        saturation-limited) rate; the last response arrives one round
        trip after the last issue.
        """
        if n_words <= 0:
            raise ValueError(f"n_words must be positive, got {n_words}")
        key = (n_words, requesters, rate, cluster_requesters)
        cached = self._vector_memo.get(key)
        if cached is not None:
            return cached
        achieved = self.stream_rate(requesters, rate, cluster_requesters)
        est = self.estimate(requesters, achieved, cluster_requesters=cluster_requesters)
        issue_time = (n_words - 1) / achieved
        result = issue_time + est.round_trip_cycles
        self._vector_memo[key] = result
        return result

    def slowdown(self, n_words: int, requesters: int, rate: float) -> float:
        """Stretch factor of a vector stream vs. the single-CE case."""
        alone = self.vector_time_cycles(n_words, 1, rate)
        loaded = self.vector_time_cycles(n_words, requesters, rate)
        return loaded / alone

    def scalar_round_trip_cycles(self, background_k: int, background_rate: float) -> float:
        """Round trip of one scalar request under background streams.

        Used for synchronisation traffic -- lock test&set, barrier-flag
        reads -- issued while ``background_k`` CEs stream vector
        requests at ``background_rate``.  The probe queues behind the
        background traffic at every centre.  Utilisation is capped a
        little below the stream cap because the bounded switch buffers
        of the real network limit how much queue a single scalar probe
        can encounter.
        """
        if background_k <= 0 or background_rate <= 0.0:
            return self._base_round_trip_cycles()
        key = (background_k, background_rate)
        cached = self._scalar_memo.get(key)
        if cached is not None:
            return cached
        achieved = self.stream_rate(background_k, background_rate)
        wait = 0.0
        for _, arrival, service, visit in self._centres(background_k, achieved):
            utilisation = min(arrival * service, 0.95)
            wait += visit * self._md1_wait(utilisation, service)
        result = self._base_round_trip_cycles() + wait
        self._scalar_memo[key] = result
        return result

    def hot_spot_bandwidth(
        self,
        requesters: int,
        rate: float,
        hot_fraction: float,
        combining: bool = False,
    ) -> float:
        """Aggregate delivered requests/cycle under hot-spot traffic.

        Reproduces the Pfister/Norton result that a small hot-spot
        fraction collapses the *total* network bandwidth: the hot bank
        saturates first and everything queued behind it slows down.

        With ``combining=True`` the switches merge requests addressed
        to the hot location (hardware message combining, the remedy
        Pfister/Norton propose and the paper's Section 6 cites): each
        switch stage can merge up to ``radix`` hot requests into one,
        so the hot traffic reaching the bank shrinks by up to
        ``radix ** stages`` and the bandwidth collapse disappears.
        """
        if combining and hot_fraction > 0.0:
            stages = max(1, self.config._network_stages())
            merge_factor = min(requesters, self.config.switch_radix**stages)
            hot_fraction = hot_fraction / merge_factor
        est = self.estimate(requesters, rate, hot_fraction=hot_fraction)
        return est.achieved_rate * requesters


class LoadTracker:
    """Tracks how many CEs are actively streaming global-memory traffic.

    The application-scale simulation registers a CE here for the
    duration of each memory burst; the current count feeds the analytic
    model so that contention *emerges* from concurrency.  The tracker
    also accumulates a time-weighted average for reporting.

    Live counters (:attr:`active` and friends) change mid-timestep as
    same-instant enters and exits interleave, so their value seen by a
    same-instant reader depends on event-queue tie order -- the DES
    analog of an unsynchronized read (see ``repro.analyze.race``).
    Pricing therefore reads the *settled* view: the state as of the end
    of the previous timestep, committed lazily on the first mutation of
    a new timestep, which every same-instant reader observes
    identically.  High-water marks are likewise taken over settled
    (end-of-timestep) states.
    """

    def __init__(self, sim, n_clusters: int = 4) -> None:
        self._sim = sim
        self._active = 0
        self._rate_sum = 0.0
        self._last_change_ns = 0
        self._weighted_sum = 0.0
        self._per_cluster = [0] * n_clusters
        #: Settled (start-of-current-timestep) copies of the counters,
        #: valid while ``now == _mutation_tick``; otherwise the live
        #: counters *are* settled.
        self._settled_active = 0
        self._settled_rate_sum = 0.0
        self._settled_per_cluster = [0] * n_clusters
        self._mutation_tick = -1
        #: Most CEs streaming simultaneously at any settled instant.
        self.high_water = 0
        #: Per-cluster streaming-CE high-water marks (settled).
        self.cluster_high_water = [0] * n_clusters

    @property
    def active(self) -> int:
        """Number of CEs currently streaming (live, mid-timestep)."""
        return self._active

    def active_in_cluster(self, cluster_id: int) -> int:
        """Number of streaming CEs in one cluster (live, mid-timestep)."""
        return self._per_cluster[cluster_id]

    @property
    def settled_active(self) -> int:
        """Streaming-CE count as of the start of the current timestep."""
        if self._sim.now == self._mutation_tick:
            return self._settled_active
        return self._active

    def settled_in_cluster(self, cluster_id: int) -> int:
        """Cluster streaming-CE count as of the start of the timestep."""
        if self._sim.now == self._mutation_tick:
            return self._settled_per_cluster[cluster_id]
        return self._per_cluster[cluster_id]

    @property
    def mean_rate(self) -> float:
        """Mean offered rate of the currently streaming CEs (live)."""
        if self._active == 0:
            return 0.0
        return self._rate_sum / self._active

    @property
    def settled_mean_rate(self) -> float:
        """Mean offered rate as of the start of the current timestep."""
        if self._sim.now == self._mutation_tick:
            if self._settled_active == 0:
                return 0.0
            return self._settled_rate_sum / self._settled_active
        return self.mean_rate

    @property
    def busiest_cluster_count(self) -> int:
        """Streaming-CE count of the busiest cluster."""
        return max(self._per_cluster, default=0)

    def _accumulate(self) -> None:
        now = self._sim.now
        self._weighted_sum += self._active * (now - self._last_change_ns)
        self._last_change_ns = now

    def _settle(self) -> None:
        """Commit the previous timestep's end state before a mutation.

        Runs once per mutated timestep; the snapshot it takes is what
        :attr:`settled_active` serves for the rest of the tick, and is
        the granularity at which high-water marks are recorded (purely
        intra-timestep spikes -- zero-duration overlap -- don't count).
        """
        now = self._sim.now
        if now == self._mutation_tick:
            return
        self._mutation_tick = now
        active = self._active
        self._settled_active = active
        self._settled_rate_sum = self._rate_sum
        per_cluster = self._per_cluster
        self._settled_per_cluster[:] = per_cluster
        if active > self.high_water:
            self.high_water = active
        cluster_high = self.cluster_high_water
        for cluster_id, count in enumerate(per_cluster):
            if count > cluster_high[cluster_id]:
                cluster_high[cluster_id] = count

    def enter(self, rate: float = 0.5, cluster_id: int = 0) -> None:
        """Register one more streaming CE offering *rate* req/cycle."""
        self._settle()
        self._accumulate()
        self._active += 1
        self._rate_sum += rate
        self._per_cluster[cluster_id] += 1

    def exit(self, rate: float = 0.5, cluster_id: int = 0) -> None:
        """Deregister a streaming CE (pass the enter arguments back)."""
        if self._active <= 0:
            raise ValueError("LoadTracker.exit() without matching enter()")
        if self._per_cluster[cluster_id] <= 0:
            raise ValueError(f"no streaming CEs registered in cluster {cluster_id}")
        self._settle()
        self._accumulate()
        self._active -= 1
        self._rate_sum = max(0.0, self._rate_sum - rate)
        self._per_cluster[cluster_id] -= 1

    def time_weighted_mean(self) -> float:
        """Average number of streaming CEs so far."""
        now = self._sim.now
        total = self._weighted_sum + self._active * (now - self._last_change_ns)
        if now == 0:
            return 0.0
        return total / now
