"""Machine configuration for the modelled Cedar multiprocessor.

The numbers follow the description in Section 2 of the paper and the
companion Cedar papers (Kuck et al. ISCA'93, Konicek et al. ICPP'91):

* 4 clusters, each a modified Alliant FX/8 with 8 computational
  elements (CEs) and a cluster concurrency-control bus;
* a 64 MB global memory of 32 independent modules, double-word (8 byte)
  interleaved, each module busy for 4 processor clock cycles per
  request;
* two unidirectional two-stage shuffle-exchange networks built from
  8x8 crossbar switches (one CE->memory, one memory->CE).

All Cedar configurations measured in the paper share the *same* network
and global memory; only the number of active processors changes
(Section 3.2).  The paper's five configurations are exposed through
:func:`paper_configuration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["CedarConfig", "paper_configuration", "PAPER_PROCESSOR_COUNTS"]

#: Processor counts of the five configurations measured in the paper.
PAPER_PROCESSOR_COUNTS = (1, 4, 8, 16, 32)


@dataclass(frozen=True)
class CedarConfig:
    """Static description of a Cedar machine configuration.

    Times are expressed in CE clock cycles unless noted otherwise; the
    CE cycle time of the modelled Alliant FX/8 hardware is 170 ns.
    """

    #: Number of clusters (modified Alliant FX/8s).
    n_clusters: int = 4
    #: Computational elements per cluster.
    ces_per_cluster: int = 8
    #: Independent, 8-byte-interleaved global memory modules.
    n_memory_modules: int = 32
    #: CE clock cycle in nanoseconds.
    cycle_ns: int = 170
    #: Cycles a global memory module is busy per request (Section 7).
    memory_service_cycles: int = 4
    #: Radix of the crossbar switches in the shuffle-exchange network.
    switch_radix: int = 8
    #: Cycles to traverse one switch/link hop.
    link_cycles: int = 1
    #: Aggregate words/cycle a cluster's CEs can move to/from global
    #: memory through the shared cluster interface and cache board --
    #: the bottleneck that makes even single-cluster vector traffic
    #: contend (cf. the Cedar performance study, Kuck et al. 1993).
    cluster_channel_words_per_cycle: float = 2.2
    #: Cycles spent in the Global Interface each way.
    gi_cycles: int = 2
    #: Depth of each switch output-port buffer (packets).
    switch_queue_depth: int = 4
    #: Global memory size in bytes (64 MB).
    global_memory_bytes: int = 64 * 1024 * 1024
    #: Cluster local memory size in bytes (64 MB per cluster).
    cluster_memory_bytes: int = 64 * 1024 * 1024
    #: Page size used by the Xylem virtual-memory model.
    page_bytes: int = 4096
    #: Words a CE can issue per cycle when streaming vector accesses.
    vector_issue_rate: float = 1.0
    #: Outstanding global-memory requests a CE's Global Interface can
    #: keep in flight; a longer (contended) round trip therefore lowers
    #: the achievable stream rate to window / round_trip.
    vector_window: int = 16
    #: Model the cluster shared-data-cache and TLB stalls the paper
    #: excludes from its characterization (Section 3.2).  Off by
    #: default to match the paper's accounting; see
    #: examples/excluded_overheads.py.
    model_cluster_cache: bool = False

    def __post_init__(self) -> None:
        if self.n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {self.n_clusters}")
        if self.ces_per_cluster <= 0:
            raise ValueError(f"ces_per_cluster must be positive, got {self.ces_per_cluster}")
        if self.n_memory_modules <= 0:
            raise ValueError(f"n_memory_modules must be positive, got {self.n_memory_modules}")
        if self.switch_radix < 2:
            raise ValueError(f"switch_radix must be >= 2, got {self.switch_radix}")
        if self.cycle_ns <= 0:
            raise ValueError(f"cycle_ns must be positive, got {self.cycle_ns}")

    @property
    def n_processors(self) -> int:
        """Total number of CEs in the configuration."""
        return self.n_clusters * self.ces_per_cluster

    @property
    def interleave_bytes(self) -> int:
        """Interleaving granularity of the global memory (double word)."""
        return 8

    def cycles_to_ns(self, cycles: float) -> int:
        """Convert CE cycles to integer nanoseconds of simulated time."""
        return int(round(cycles * self.cycle_ns))

    def ns_to_cycles(self, ns: float) -> float:
        """Convert nanoseconds of simulated time to CE cycles."""
        return ns / self.cycle_ns

    def seconds_to_ns(self, seconds: float) -> int:
        """Convert seconds to integer nanoseconds of simulated time."""
        return int(round(seconds * 1e9))

    def module_for_address(self, address: int) -> int:
        """Global memory module serving *address* (8-byte interleaved)."""
        return (address // self.interleave_bytes) % self.n_memory_modules

    @property
    def min_memory_round_trip_cycles(self) -> int:
        """Uncontended CE -> memory -> CE round trip, in cycles.

        GI out + two forward hops + module service + two return hops +
        GI in.  This is the same for every configuration, which is what
        lets the paper isolate the contention factor (Section 3.2).
        """
        hops = 2 * self._network_stages() * self.link_cycles
        return 2 * self.gi_cycles + hops + self.memory_service_cycles

    def _network_stages(self) -> int:
        endpoints = max(self.n_clusters * self.ces_per_cluster, self.n_memory_modules)
        stages = 1
        reach = self.switch_radix
        while reach < endpoints:
            reach *= self.switch_radix
            stages += 1
        return stages

    def with_processors(self, n_processors: int) -> "CedarConfig":
        """Derive the paper's configuration with *n_processors* CEs.

        Configurations up to one full cluster keep a single cluster
        with fewer CEs; beyond that, whole 8-CE clusters are added
        (Table 1 footnote: the 4-processor configuration uses CEs from
        a single cluster).
        """
        if n_processors <= 0:
            raise ValueError(f"n_processors must be positive, got {n_processors}")
        full = CedarConfig.__dataclass_fields__["ces_per_cluster"].default
        if n_processors <= self.ces_per_cluster:
            return replace(self, n_clusters=1, ces_per_cluster=n_processors)
        if n_processors % self.ces_per_cluster != 0:
            raise ValueError(
                f"{n_processors} processors is not a whole number of "
                f"{self.ces_per_cluster}-CE clusters"
            )
        del full
        return replace(self, n_clusters=n_processors // self.ces_per_cluster)


def paper_configuration(n_processors: int) -> CedarConfig:
    """Return one of the five machine configurations used in the paper.

    ``1``, ``4`` and ``8`` processors use a single cluster; ``16`` uses
    two clusters and ``32`` the full four-cluster Cedar.  The network
    and global memory are identical across configurations.
    """
    if n_processors not in PAPER_PROCESSOR_COUNTS:
        raise ValueError(
            f"paper configurations are {PAPER_PROCESSOR_COUNTS}, got {n_processors}"
        )
    return CedarConfig().with_processors(n_processors)
