"""Cluster and computational-element (CE) identities and cluster buses.

Each Cedar cluster is a modified Alliant FX/8: eight pipelined vector
CEs, 64 MB of cluster memory, a shared data cache, and a concurrency
control (CC) bus that provides fast intra-cluster parallel-loop
dispatch and synchronisation (Section 2).  The CC bus is what makes the
inner CDOALL distribution effectively free compared with the
global-memory test&set used by XDOALL (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import CedarConfig
from repro.sim import Simulator

__all__ = ["CE", "Cluster", "ConcurrencyControlBus"]


@dataclass(frozen=True)
class CE:
    """A computational element: a pipelined vector processor."""

    #: Global CE index (0 .. n_processors-1).
    ce_id: int
    #: Owning cluster index.
    cluster_id: int
    #: Index within the cluster (0 .. ces_per_cluster-1).
    local_id: int


class ConcurrencyControlBus:
    """The intra-cluster concurrency control bus.

    Supports single-cycle-scale loop dispatch and join of the CEs in
    one cluster without touching the global network.  The paper treats
    CDOALL synchronisation cost as negligible and excludes it from the
    characterization; we model a small constant cost so it exists but
    stays negligible.
    """

    #: CE cycles for an intra-cluster dispatch or join operation.
    DISPATCH_CYCLES = 4
    SYNC_CYCLES = 8

    def __init__(self, sim: Simulator, config: CedarConfig, cluster_id: int) -> None:
        self.sim = sim
        self.config = config
        self.cluster_id = cluster_id
        self.dispatches = 0
        self.synchronisations = 0

    def dispatch_ns(self) -> int:
        """Cost (ns) of dispatching a cluster loop over the bus."""
        self.dispatches += 1
        return self.config.cycles_to_ns(self.DISPATCH_CYCLES)

    def synchronise_ns(self) -> int:
        """Cost (ns) of an intra-cluster barrier over the bus."""
        self.synchronisations += 1
        return self.config.cycles_to_ns(self.SYNC_CYCLES)


class Cluster:
    """One Cedar cluster: CEs plus the cluster CC bus."""

    def __init__(self, sim: Simulator, config: CedarConfig, cluster_id: int) -> None:
        if not 0 <= cluster_id < config.n_clusters:
            raise ValueError(f"cluster_id {cluster_id} out of range")
        self.sim = sim
        self.config = config
        self.cluster_id = cluster_id
        self.ccbus = ConcurrencyControlBus(sim, config, cluster_id)
        self.ces = [
            CE(
                ce_id=cluster_id * config.ces_per_cluster + local,
                cluster_id=cluster_id,
                local_id=local,
            )
            for local in range(config.ces_per_cluster)
        ]

    @property
    def n_ces(self) -> int:
        """Number of CEs in this cluster."""
        return len(self.ces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {self.cluster_id} with {self.n_ces} CEs>"
