"""Cluster shared-data-cache and TLB models (the paper's exclusions).

Section 3.2: "The use of a shared coherent cache in Cedar circumvents
the false sharing and cache coherency problems.  However, there would
still be capacity and conflict cache misses.  The overhead due to these
cache misses and the other overheads determined by the underlying
hardware -- the overhead due to TLB misses ... -- are not characterized
in this study."

This module models what the paper excluded, so the exclusion can be
quantified (``examples/excluded_overheads.py``):

* :class:`SetAssociativeCache` -- an exact set-associative LRU cache,
  used for microbenchmarks and to validate the analytic estimator;
* :class:`StreamingMissModel` -- a closed-form miss-rate estimate for
  the loop-sweep access patterns of the modelled applications;
* :class:`ClusterCacheModel` -- per-cluster stall-time estimates that
  application runs can optionally enable
  (``CedarConfig.model_cluster_cache``).

The Alliant FX/8's shared data cache is modelled with its published
organisation: 512 KB, 4-way interleaved banks, 32-byte lines.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = [
    "CacheConfig",
    "SetAssociativeCache",
    "StreamingMissModel",
    "ClusterCacheModel",
]


@dataclass(frozen=True)
class CacheConfig:
    """Organisation of a cluster's shared data cache and TLB."""

    #: Total capacity in bytes (Alliant FX/8: 512 KB shared cache).
    capacity_bytes: int = 512 * 1024
    #: Cache line size in bytes.
    line_bytes: int = 32
    #: Set associativity.
    associativity: int = 4
    #: CE cycles to refill a line from cluster memory.
    miss_penalty_cycles: int = 12
    #: TLB entries per CE.
    tlb_entries: int = 64
    #: Page size covered by one TLB entry.
    tlb_page_bytes: int = 4096
    #: CE cycles to service a TLB miss (table walk).
    tlb_miss_penalty_cycles: int = 20

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("capacity and line size must be positive")
        if self.capacity_bytes % self.line_bytes != 0:
            raise ValueError("capacity must be a whole number of lines")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        n_lines = self.capacity_bytes // self.line_bytes
        if n_lines % self.associativity != 0:
            raise ValueError("line count must divide evenly into sets")

    @property
    def n_lines(self) -> int:
        """Total cache lines."""
        return self.capacity_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_lines // self.associativity


class SetAssociativeCache:
    """Exact set-associative cache with true-LRU replacement.

    Used at microbenchmark scale and to validate
    :class:`StreamingMissModel`; not intended for full-application runs.
    """

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.config.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on a hit."""
        line = address // self.config.line_bytes
        index = line % self.config.n_sets
        ways = self._sets[index]
        if line in ways:
            ways.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        ways[line] = None
        if len(ways) > self.config.associativity:
            ways.popitem(last=False)
        return False

    def access_range(self, base: int, n_bytes: int, stride: int = 8) -> int:
        """Access a strided range; returns the number of misses."""
        before = self.misses
        for offset in range(0, max(stride, n_bytes), stride):
            self.access(base + offset)
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed so far."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0


class StreamingMissModel:
    """Closed-form miss estimates for loop-sweep access patterns.

    The modelled applications sweep arrays repeatedly (time-stepping
    codes): each loop touches a working set of ``ws_bytes`` per cluster
    with unit-stride vector accesses, revisiting it every step.
    """

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()

    def sweep_miss_rate(self, ws_bytes: int) -> float:
        """Per-*line* miss probability of a cyclic sweep.

        A working set that fits in the cache only cold-misses (treated
        as ~0 for steady state); one that exceeds it is evicted before
        reuse -- with true LRU a cyclic sweep larger than the cache
        misses on (approximately) every line.  A smooth ramp between
        1x and 2x capacity avoids a modelling cliff at exactly-fits.
        """
        if ws_bytes <= 0:
            return 0.0
        capacity = self.config.capacity_bytes
        if ws_bytes <= capacity:
            return 0.0
        if ws_bytes >= 2 * capacity:
            return 1.0
        return (ws_bytes - capacity) / capacity

    def sweep_stall_cycles(self, bytes_accessed: int, ws_bytes: int) -> float:
        """Expected refill stall cycles for one sweep of a loop chunk."""
        lines = bytes_accessed / self.config.line_bytes
        return (
            lines
            * self.sweep_miss_rate(ws_bytes)
            * self.config.miss_penalty_cycles
        )

    def tlb_stall_cycles(self, bytes_accessed: int, ws_bytes: int) -> float:
        """Expected TLB-walk stall cycles for one sweep."""
        reach = self.config.tlb_entries * self.config.tlb_page_bytes
        if ws_bytes <= reach:
            return 0.0
        pages = bytes_accessed / self.config.tlb_page_bytes
        return pages * self.config.tlb_miss_penalty_cycles


class ClusterCacheModel:
    """Per-cluster stall accounting built on the streaming model."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self.model = StreamingMissModel(self.config)
        self.stall_cycles_total = 0.0

    def chunk_stall_cycles(self, bytes_accessed: int, ws_bytes: int) -> float:
        """Cache + TLB stall cycles for one CE chunk, and record them."""
        stall = self.model.sweep_stall_cycles(bytes_accessed, ws_bytes)
        stall += self.model.tlb_stall_cycles(bytes_accessed, ws_bytes)
        self.stall_cycles_total += stall
        return stall
