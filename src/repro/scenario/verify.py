"""End-to-end scenario verification: the property the fuzzer enforces.

One :func:`verify_scenario` call takes a validated document through the
full gauntlet:

1. **Compile** -- the document lowers onto an ``AppModel`` (guaranteed
   by the schema contract; a failure here is a compiler bug).
2. **Determinism** -- two independent runs at the same ``(P, scale,
   seed)`` must publish byte-identical
   :func:`~repro.analyze.race.fingerprint_result` payloads *and*
   byte-identical schedule hashes.
3. **Race sanitizer** -- the tie-break perturbation campaign
   (:func:`~repro.analyze.race.race_model`) must find the compiled
   model hazard-free under every perturbation seed.
4. **Cache/parallel byte-identity** (optional) -- the scenario runs
   again through the pooled executor + result cache and the snapshot
   must equal the serial snapshot byte-for-byte.

The CI ``scenario-fuzz`` job maps this over hundreds of generated
scenarios; the Hypothesis suite applies it to adversarially-shrunk
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scenario.compiler import CompiledScenario, compile_scenario
from repro.scenario.schema import ScenarioDoc

__all__ = ["ScenarioVerification", "verify_scenario"]


@dataclass
class ScenarioVerification:
    """Outcome of one scenario's verification gauntlet."""

    name: str
    digest: str
    n_processors: int
    scale: float
    seed: int
    ct_ns: int = 0
    #: Fingerprint digest both runs agreed on.
    fingerprint: str = ""
    #: Schedule hash both runs agreed on.
    schedule_hash: str = ""
    #: Baseline same-(time, priority) tie-breaks the race campaign
    #: perturbed (how much ambiguity the check actually exercised).
    tie_breaks: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def format(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"scenario {self.name} [{self.digest[:12]}] "
            f"P={self.n_processors} scale={self.scale} seed={self.seed} "
            f"-> {verdict}",
        ]
        if self.passed:
            schedule = self.schedule_hash.rpartition(":")[2]
            lines.append(
                f"  deterministic (fingerprint {self.fingerprint[:12]}, "
                f"schedule {schedule[:12]}), hazard-free "
                f"({self.tie_breaks} tie-breaks perturbed)"
            )
        lines += [f"  {failure}" for failure in self.failures]
        return "\n".join(lines)


def _serial_fingerprints(
    compiled: CompiledScenario,
    n_processors: int,
    scale: float,
    seed: int,
) -> tuple[str, str, str, int]:
    """One serial run: (payload, digest, schedule hash, ct_ns)."""
    from repro.analyze.race import fingerprint_result
    from repro.analyze.sanitize import DeterminismSink
    from repro.obs.instrument import Observability

    sink = DeterminismSink(order_capacity=0)
    result = compiled.run(
        n_processors,
        scale,
        seed,
        obs=Observability(extra_sinks=[sink]),
    )
    fingerprint = fingerprint_result(result)
    return fingerprint.payload, fingerprint.digest, sink.schedule_hash, result.ct_ns


def verify_scenario(
    doc: ScenarioDoc,
    n_processors: int | None = None,
    scale: float | None = None,
    seed: int | None = None,
    race_seeds: tuple[int, ...] = (1,),
    parallel_jobs: int = 0,
    cache_dir: str | None = None,
) -> ScenarioVerification:
    """Run the full verification gauntlet on one scenario document.

    *race_seeds* sizes the perturbation campaign (empty disables it).
    *parallel_jobs* > 0 additionally runs the scenario through the
    pooled executor + result cache (rooted at *cache_dir*, which the
    caller should point at a throwaway directory) and asserts the
    snapshot equals the serial path byte-for-byte.
    """
    compiled = compile_scenario(doc)
    P = doc.defaults.n_processors if n_processors is None else n_processors
    sc = doc.defaults.scale if scale is None else scale
    sd = doc.defaults.seed if seed is None else seed
    verification = ScenarioVerification(
        name=doc.name, digest=compiled.digest, n_processors=P, scale=sc, seed=sd
    )

    payload_a, digest_a, hash_a, ct_a = _serial_fingerprints(compiled, P, sc, sd)
    payload_b, digest_b, hash_b, _ = _serial_fingerprints(compiled, P, sc, sd)
    verification.ct_ns = ct_a
    verification.fingerprint = digest_a
    verification.schedule_hash = hash_a
    if digest_a != digest_b:
        from repro.analyze.race import ResultFingerprint

        diff = ResultFingerprint(payload_a, digest_a).diff(
            ResultFingerprint(payload_b, digest_b)
        )
        verification.failures.append(
            "two same-seed runs published different results: " + "; ".join(diff)
        )
    if hash_a != hash_b:
        verification.failures.append(
            f"two same-seed runs produced different schedules: "
            f"{hash_a[:16]} != {hash_b[:16]}"
        )

    if race_seeds:
        from repro.analyze.race import race_model

        report = race_model(
            compiled.builder,
            name=doc.name,
            n_processors=P,
            scale=sc,
            seeds=race_seeds,
            os_seed=sd,
            config=compiled.config(P),
            pre_run_hook=compiled.pre_run_hook(),
        )
        verification.tie_breaks = report.tie_breaks
        if not report.hazard_free:
            for divergence in report.divergences:
                verification.failures.append(
                    "race sanitizer: " + divergence.format().replace("\n", "; ")
                )

    if parallel_jobs > 0:
        _check_parallel(verification, doc, P, sc, sd, parallel_jobs, cache_dir)
    return verification


def _check_parallel(
    verification: ScenarioVerification,
    doc: ScenarioDoc,
    n_processors: int,
    scale: float,
    seed: int,
    jobs: int,
    cache_dir: str | None,
) -> None:
    """Pooled executor + cache must reproduce the serial run.

    Byte-identity is asserted on what a run *publishes* -- the
    :func:`~repro.analyze.race.fingerprint_result` payload (every table
    and breakdown) and the domain-tagged schedule hash.  The snapshot's
    ``wall_s`` is host wall-clock and legitimately differs run to run.
    """
    from repro.analyze.race import fingerprint_result
    from repro.core.runner import RunResult
    from repro.parallel.cache import ResultCache
    from repro.parallel.executor import CellSpec, execute_cells, run_cell
    from repro.scenario.schema import canonical_scenario_json

    def published(snapshot: RunResult) -> tuple[str, str | None]:
        return fingerprint_result(snapshot).digest, snapshot.schedule_hash

    spec = CellSpec(
        app=doc.name,
        n_processors=n_processors,
        scale=scale,
        seed=seed,
        scenario=canonical_scenario_json(doc),
    )
    serial = published(run_cell(spec))
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results, failures = execute_cells([spec], jobs=jobs, cache=cache)
    if failures or spec not in results:
        verification.failures.append(
            "pooled executor failed the cell: "
            + "; ".join(f"{f.error_type}: {f.message}" for f in failures)
        )
        return
    if published(results[spec]) != serial:
        verification.failures.append(
            "pooled executor published different results than the serial run"
        )
    elif cache is not None:
        cached, _ = execute_cells([spec], jobs=jobs, cache=cache)
        if published(cached[spec]) != serial:
            verification.failures.append(
                "cache round-trip published different results than the serial run"
            )
