"""Lowering validated scenario documents onto the ``AppModel`` API.

The compiler is deliberately a *transliteration*: every scenario field
maps one-to-one onto an :class:`~repro.apps.base.AppModel` /
:class:`~repro.apps.base.LoopShape` parameter, so a compiled scenario
flows through every downstream layer -- ``run_application``, sweeps,
golden tables, cache keys, telemetry, durable campaigns -- exactly as a
hand-coded model does.  The differential suite
(``tests/golden/test_scenario_differential.py``) holds that equivalence
byte-for-byte against the exported built-in apps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.apps.base import AppModel, LoopShape
from repro.hardware.config import CedarConfig
from repro.runtime.loops import LoopConstruct
from repro.scenario.schema import (
    ScenarioDoc,
    ScenarioError,
    parse_scenario,
    scenario_digest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runner import PreRunHook, RunResult
    from repro.obs.instrument import Observability

__all__ = ["CompiledScenario", "compile_scenario"]


class CompiledScenario:
    """A scenario lowered onto the existing application-model stack.

    Bundles the validated document with the :class:`AppModel` it
    compiles to, plus the pieces the document adds *around* the model:
    the (possibly overridden) machine configuration and the optional
    background-traffic hook.  :meth:`run` wires all three into
    :func:`~repro.core.runner.run_application`.
    """

    def __init__(self, doc: ScenarioDoc, model: AppModel) -> None:
        self.doc = doc
        self.model = model

    @property
    def digest(self) -> str:
        """The canonical-document digest (cache-key ingredient)."""
        return scenario_digest(self.doc)

    def builder(self) -> AppModel:
        """A fresh :class:`AppModel` for this scenario.

        Matches the signature of the hand-coded app builders
        (``flo52`` etc.), so a compiled scenario drops into every API
        that takes a builder -- notably the race sanitizer's
        :func:`~repro.analyze.race.race_model`.
        """
        return compile_scenario(self.doc).model

    def config(self, n_processors: int | None = None) -> CedarConfig:
        """The machine configuration for a run at *n_processors*.

        Applies the document's topology overrides, then sizes the
        machine with
        :meth:`~repro.hardware.config.CedarConfig.with_processors` --
        identical to what ``--app`` runs do on the stock topology.
        """
        P = self.doc.defaults.n_processors if n_processors is None else n_processors
        try:
            return CedarConfig(**self.doc.machine_overrides).with_processors(P)
        except ValueError as exc:
            raise ScenarioError("defaults.n_processors", str(exc)) from exc

    def pre_run_hook(self) -> "PreRunHook | None":
        """The background-traffic hook, or ``None`` without traffic."""
        background = self.doc.background
        if background is None:
            return None
        from repro.xylem.scheduler import BackgroundWorkload

        def hook(sim: Any, machine: Any, kernel: Any, runtime: Any) -> None:
            BackgroundWorkload(
                kernel,
                share=background.share,
                quantum_ns=background.quantum_ns,
                coscheduled=background.coscheduled,
                seed=background.seed,
            ).start()

        return hook

    def run(
        self,
        n_processors: int | None = None,
        scale: float | None = None,
        seed: int | None = None,
        *,
        obs: "Observability | None" = None,
        statfx_interval_ns: int = 200_000,
        max_events: int | None = None,
        max_sim_time: int | None = None,
        tie_break_seed: int | None = None,
        pre_run_hook: "PreRunHook | None" = None,
    ) -> "RunResult":
        """Run the compiled scenario (defaults from the document).

        *pre_run_hook*, when given, runs **after** the scenario's own
        background-traffic hook -- the seam the verification harness
        uses to stack fault injection on top of scenario traffic.
        """
        from repro.core.runner import run_application
        from repro.xylem.params import XylemParams

        P = self.doc.defaults.n_processors if n_processors is None else n_processors
        own_hook = self.pre_run_hook()
        if own_hook is None or pre_run_hook is None:
            hook = pre_run_hook if own_hook is None else own_hook
        else:
            first, second = own_hook, pre_run_hook

            def hook(sim: Any, machine: Any, kernel: Any, runtime: Any) -> None:
                first(sim, machine, kernel, runtime)
                second(sim, machine, kernel, runtime)

        return run_application(
            self.model,
            P,
            scale=self.doc.defaults.scale if scale is None else scale,
            config=self.config(P),
            os_params=XylemParams(
                seed=self.doc.defaults.seed if seed is None else seed
            ),
            statfx_interval_ns=statfx_interval_ns,
            obs=obs,
            pre_run_hook=hook,
            max_events=max_events,
            max_sim_time=max_sim_time,
            tie_break_seed=tie_break_seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledScenario {self.doc.name!r}: {self.model!r}>"


def compile_scenario(doc: ScenarioDoc | Mapping[str, Any]) -> CompiledScenario:
    """Lower a scenario document to a runnable :class:`CompiledScenario`.

    Accepts either a parsed :class:`ScenarioDoc` or a raw mapping
    (which is validated first).  By the parse-guarantees contract a
    validated document always compiles; a failure to do so escaping as
    anything but :class:`ScenarioError` is a schema/compiler bug, so
    stray ``ValueError`` from the model constructors is re-raised as
    :class:`ScenarioError` to keep the contract airtight.
    """
    if not isinstance(doc, ScenarioDoc):
        doc = parse_scenario(doc)
    shapes = [
        LoopShape(
            construct=LoopConstruct(loop.construct),
            n_outer=loop.n_outer,
            n_inner=loop.n_inner,
            iter_time_ns=loop.iter_time_ns,
            mem_fraction=loop.mem_fraction,
            mem_rate=loop.mem_rate,
            iters_per_page=loop.iters_per_page,
            fresh_pages_each_step=loop.fresh_pages_each_step,
            work_skew=loop.work_skew,
            cluster_ws_bytes=loop.cluster_ws_bytes,
            label=loop.label,
        )
        for loop in doc.loops
    ]
    try:
        model = AppModel(
            name=doc.name,
            n_steps=doc.n_steps,
            serial_per_step_ns=doc.serial.per_step_ns,
            loops_per_step=shapes,
            serial_pages_per_step=doc.serial.pages,
            serial_syscalls_per_step=doc.serial.syscalls,
            init_serial_ns=doc.init.serial_ns,
            init_pages=doc.init.pages,
            serial_mem_fraction=doc.serial.mem_fraction,
            serial_mem_rate=doc.serial.mem_rate,
        )
    except ValueError as exc:
        raise ScenarioError("$", f"scenario failed to compile: {exc}") from exc
    return CompiledScenario(doc, model)
